#!/usr/bin/env python
"""Kernel perf-regression gate for CI.

Reads a pytest-benchmark ``--benchmark-json`` file produced by the kernel
benchmark suites (``benchmarks/bench_kernels.py``,
``benchmarks/bench_l3_gridding.py``, ``benchmarks/bench_pyramid.py``,
``benchmarks/bench_router.py``, ``benchmarks/bench_ingest.py`` and
``benchmarks/bench_zero_copy.py``), pairs
each ``*_reference`` benchmark
with its ``*_vectorized`` counterpart, and computes the vectorized speedup
as the ratio of the per-round *minimum* times (the least noisy statistic on
shared CI runners).  The speedups — not the absolute times — are compared
against the committed baselines in
``benchmarks/results/kernel_baselines.json``, so the gate is independent of
how fast the CI machine happens to be.

The router benchmarks additionally feed a serving-tier **latency gate**:
per kernel backend, the cold-start run (fresh caches, full decode) is
ratioed against the hot run (pre-warmed LRU), and the ratio is held above
``LATENCY_RATIO_FLOORS`` and within ``LATENCY_TOLERANCE`` of its committed
baseline — with one generous absolute ceiling on the hot-path time
(``HOT_LATENCY_CEILING_S``) as the backstop for cache-path logic
regressions that scale both numbers together.

The ingest benchmarks feed the **live-ingest gate** the same way: per
kernel backend, one incremental ingest (online mosaic merge + dirty-tile
pyramid rebuild) is ratioed against the full rebuild it replaces, and the
ratio is held above ``INGEST_RATIO_FLOOR`` (>= 3x, an acceptance
criterion) and within ``INGEST_TOLERANCE`` of its committed baseline.

The zero-copy benchmarks (``benchmarks/bench_zero_copy.py``) feed two more
ratio gates: the pickled/shm fan-out time ratio must stay above
``ZERO_COPY_FANOUT_FLOOR`` (>= 2x — the shared-memory executor transport),
and per kernel backend the npz/raw cold single-tile decode ratio must stay
above ``ZERO_COPY_DECODE_FLOOR`` (>= 3x — the memory-mapped product
layout).  ``--emit-json PATH`` additionally writes every section measured
in this run to one committed JSON snapshot (``BENCH_zero_copy.json``).

The telemetry benchmarks (``benchmarks/bench_obs.py``) feed the **obs
overhead gate**: per instrumented hot path (warm router serving, one small
campaign run), the obs-enabled time is ratioed against the same work under
the null no-op twins, and the ratio is held under ``OBS_OVERHEAD_CEILING``
(1.05 — telemetry may cost at most 5 % of either path).

The check fails when a kernel's measured speedup

* regresses by more than ``--tolerance`` (default 25 %) relative to its
  committed baseline — for kernels whose baseline speedup is large enough
  for a ratio to be stable (>= 2x); near-parity kernels (the LSTM pairs)
  instead only fail below ``NEAR_PARITY_FLOOR``, because run-to-run BLAS
  and scheduling noise on a ~1x ratio easily exceeds any tight tolerance —
  or
* falls below the kernel's hard floor (the acceptance criterion: >= 3x for
  the windowed sea-surface, confidence-binning, Level-3 gridding and
  pyramid-reduction paths).

Usage::

    python -m pytest benchmarks/bench_kernels.py benchmarks/bench_l3_gridding.py \\
        --benchmark-json=bench.json
    python benchmarks/check_regression.py bench.json
    python benchmarks/check_regression.py bench.json --update   # refresh baselines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "results" / "kernel_baselines.json"

#: Hard speedup floors per kernel (acceptance criteria); pairs without an
#: entry only have to stay within tolerance of their committed baseline.
SPEEDUP_FLOORS = {
    "sea_surface_nasa": 3.0,
    "confidence_binning": 3.0,
    "l3_gridding": 3.0,
    "pyramid_reduce": 3.0,
}

#: Baselines below this speedup are treated as near-parity: the relative
#: tolerance check is replaced by an absolute floor, because noise on a ~1x
#: ratio dwarfs any tight percentage.
NEAR_PARITY_BASELINE = 2.0
NEAR_PARITY_FLOOR = 0.5

REFERENCE_SUFFIX = "_reference"
VECTORIZED_SUFFIX = "_vectorized"

#: Serving-tier latency gate (``benchmarks/bench_router.py``): per kernel
#: backend, the cold (fresh caches, full decode + pyramid build) run must
#: stay at least this many times slower than the hot (pre-warmed LRU) run.
#: A collapsing ratio means cache-path work leaked into the request path —
#: the regression absolute times cannot see, because both runs slow down
#: together on a slow runner.
LATENCY_RATIO_FLOORS = {"router_latency": 3.0}
#: Generous absolute ceiling on the hot-path minimum (seconds): the warmed
#: router serves a whole request batch from memory, so even the slowest CI
#: runner finishing above this is a logic regression, not machine noise.
HOT_LATENCY_CEILING_S = 0.25
#: Latency ratios are noisier than kernel speedups (the hot path is tens of
#: milliseconds, scheduler-sensitive), so the vs-baseline tolerance is wider.
LATENCY_TOLERANCE = 0.5

COLD_PREFIX = "router_cold_"
HOT_PREFIX = "router_hot_"

#: Live-ingest gate (``benchmarks/bench_ingest.py``): per kernel backend,
#: one incremental ingest (online merge + dirty-tile rebuild) must stay at
#: least this many times cheaper than the full rebuild (batch mosaic +
#: from-scratch pyramid) it replaces.  The products are byte-identical by
#: contract, so a collapsing ratio means dirty-cell accounting regressed
#: into full-grid work.
INGEST_RATIO_FLOOR = 3.0
INGEST_TOLERANCE = 0.5

INGEST_INCREMENTAL_PREFIX = "ingest_incremental_"
INGEST_FULL_PREFIX = "ingest_full_"

#: Zero-copy gates (``benchmarks/bench_zero_copy.py``).  The fan-out gate
#: holds the pickled/shm time ratio of one ~48 MB struct-of-arrays
#: map-reduce above an acceptance floor: shipping descriptors through
#: shared memory must stay at least 2x faster than pickling the arrays
#: through the executor pipe.  The decode gate holds the npz/raw cold
#: single-tile ratio per kernel backend above 3x: a memory-mapped window
#: read must beat inflating the archive and building the full pyramid.
ZERO_COPY_FANOUT_FLOOR = 2.0
ZERO_COPY_DECODE_FLOOR = 3.0
ZERO_COPY_TOLERANCE = 0.5

ZERO_COPY_FANOUT_SHM = "zero_copy_fanout_shm"
ZERO_COPY_FANOUT_PICKLED = "zero_copy_fanout_pickled"
ZERO_COPY_DECODE_NPZ_PREFIX = "zero_copy_decode_npz_"
ZERO_COPY_DECODE_RAW_PREFIX = "zero_copy_decode_raw_"

#: Telemetry overhead gate (``benchmarks/bench_obs.py``): the same hot path
#: — warm router serving and one small campaign — timed with obs enabled
#: and with the null twins, ratioed enabled/disabled.  Spans and counters
#: may cost at most 5 % of either path; anything above that means an
#: allocation or a lock leaked into the per-request instrumentation.
OBS_OVERHEAD_CEILING = 1.05

OBS_ENABLED_PREFIX = "obs_enabled_"
OBS_DISABLED_PREFIX = "obs_disabled_"


def load_minima(benchmark_json: Path) -> dict[str, float]:
    """Per-benchmark minimum round times, keyed by bare benchmark name."""
    data = json.loads(benchmark_json.read_text())
    minima: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        if name.startswith("test_"):
            name = name[len("test_") :]
        # The per-round minimum is the least noisy statistic on shared CI
        # runners; ratios of minima are what the baselines store.
        minima[name] = float(bench["stats"]["min"])
    return minima


def load_speedups(minima: dict[str, float]) -> dict[str, dict[str, float]]:
    """Pair reference/vectorized benchmarks into per-kernel speedups."""
    speedups: dict[str, dict[str, float]] = {}
    for name, ref_min in sorted(minima.items()):
        if not name.endswith(REFERENCE_SUFFIX):
            continue
        kernel = name[: -len(REFERENCE_SUFFIX)]
        vec_min = minima.get(kernel + VECTORIZED_SUFFIX)
        if vec_min is None or vec_min <= 0:
            continue
        speedups[kernel] = {
            "reference_s": ref_min,
            "vectorized_s": vec_min,
            "speedup": ref_min / vec_min,
        }
    return speedups


def load_latencies(minima: dict[str, float]) -> dict[str, dict[str, float]]:
    """Pair the router's cold/hot runs into per-backend latency ratios."""
    latencies: dict[str, dict[str, float]] = {}
    for name, cold_s in sorted(minima.items()):
        if not name.startswith(COLD_PREFIX):
            continue
        backend = name[len(COLD_PREFIX) :]
        hot_s = minima.get(HOT_PREFIX + backend)
        if hot_s is None or hot_s <= 0:
            continue
        latencies[f"router_latency_{backend}"] = {
            "cold_s": cold_s,
            "hot_s": hot_s,
            "ratio": cold_s / hot_s,
        }
    return latencies


def load_ingest(minima: dict[str, float]) -> dict[str, dict[str, float]]:
    """Pair the incremental/full ingest runs into per-backend speedups."""
    speedups: dict[str, dict[str, float]] = {}
    for name, full_s in sorted(minima.items()):
        if not name.startswith(INGEST_FULL_PREFIX):
            continue
        backend = name[len(INGEST_FULL_PREFIX) :]
        incremental_s = minima.get(INGEST_INCREMENTAL_PREFIX + backend)
        if incremental_s is None or incremental_s <= 0:
            continue
        speedups[f"ingest_speedup_{backend}"] = {
            "full_s": full_s,
            "incremental_s": incremental_s,
            "ratio": full_s / incremental_s,
        }
    return speedups


def load_zero_copy(minima: dict[str, float]) -> dict[str, dict[str, float]]:
    """Pair the zero-copy runs into fan-out and per-backend decode ratios."""
    zero_copy: dict[str, dict[str, float]] = {}
    pickled_s = minima.get(ZERO_COPY_FANOUT_PICKLED)
    shm_s = minima.get(ZERO_COPY_FANOUT_SHM)
    if pickled_s is not None and shm_s is not None and shm_s > 0:
        zero_copy["zero_copy_fanout"] = {
            "pickled_s": pickled_s,
            "shm_s": shm_s,
            "ratio": pickled_s / shm_s,
        }
    for name, npz_s in sorted(minima.items()):
        if not name.startswith(ZERO_COPY_DECODE_NPZ_PREFIX):
            continue
        backend = name[len(ZERO_COPY_DECODE_NPZ_PREFIX) :]
        raw_s = minima.get(ZERO_COPY_DECODE_RAW_PREFIX + backend)
        if raw_s is None or raw_s <= 0:
            continue
        zero_copy[f"zero_copy_decode_{backend}"] = {
            "npz_s": npz_s,
            "raw_s": raw_s,
            "ratio": npz_s / raw_s,
        }
    return zero_copy


def load_obs(minima: dict[str, float]) -> dict[str, dict[str, float]]:
    """Pair the enabled/disabled telemetry runs into per-path overheads."""
    overheads: dict[str, dict[str, float]] = {}
    for name, enabled_s in sorted(minima.items()):
        if not name.startswith(OBS_ENABLED_PREFIX):
            continue
        path = name[len(OBS_ENABLED_PREFIX) :]
        disabled_s = minima.get(OBS_DISABLED_PREFIX + path)
        if disabled_s is None or disabled_s <= 0:
            continue
        overheads[f"obs_overhead_{path}"] = {
            "enabled_s": enabled_s,
            "disabled_s": disabled_s,
            "ratio": enabled_s / disabled_s,
        }
    return overheads


def check_obs(overheads: dict[str, dict[str, float]]) -> list[str]:
    failures: list[str] = []
    for name, row in overheads.items():
        measured = row["ratio"]
        if measured > OBS_OVERHEAD_CEILING:
            failures.append(
                f"{name}: telemetry costs {(measured - 1.0):.1%} of the hot "
                f"path (ceiling {OBS_OVERHEAD_CEILING - 1.0:.0%})"
            )
    return failures


def check_zero_copy(
    zero_copy: dict[str, dict[str, float]],
    baselines: dict[str, dict[str, float]],
) -> list[str]:
    failures: list[str] = []
    for name, row in zero_copy.items():
        measured = row["ratio"]
        if name == "zero_copy_fanout":
            floor, label = ZERO_COPY_FANOUT_FLOOR, "shm fan-out only"
        else:
            floor, label = ZERO_COPY_DECODE_FLOOR, "raw mmap decode only"
        if measured < floor:
            failures.append(
                f"{name}: {label} {measured:.2f}x faster "
                f"(floor {floor:.1f}x)"
            )
        base = baselines.get(name, {}).get("ratio")
        if base is not None and measured < base * (1.0 - ZERO_COPY_TOLERANCE):
            failures.append(
                f"{name}: ratio {measured:.2f}x regressed more than "
                f"{ZERO_COPY_TOLERANCE:.0%} from baseline {base:.2f}x"
            )
    return failures


def check_ingest(
    ingest: dict[str, dict[str, float]],
    baselines: dict[str, dict[str, float]],
) -> list[str]:
    failures: list[str] = []
    for name, row in ingest.items():
        measured = row["ratio"]
        if measured < INGEST_RATIO_FLOOR:
            failures.append(
                f"{name}: incremental ingest only {measured:.2f}x faster than a "
                f"full rebuild (floor {INGEST_RATIO_FLOOR:.1f}x)"
            )
        base = baselines.get(name, {}).get("ratio")
        if base is not None and measured < base * (1.0 - INGEST_TOLERANCE):
            failures.append(
                f"{name}: incremental/full ratio {measured:.2f}x regressed more "
                f"than {INGEST_TOLERANCE:.0%} from baseline {base:.2f}x"
            )
    return failures


def check_latencies(
    latencies: dict[str, dict[str, float]],
    baselines: dict[str, dict[str, float]],
) -> list[str]:
    failures: list[str] = []
    for name, row in latencies.items():
        measured = row["ratio"]
        floor = LATENCY_RATIO_FLOORS.get(name.rsplit("_", 1)[0])
        if floor is not None and measured < floor:
            failures.append(
                f"{name}: cold/hot ratio {measured:.2f}x below the "
                f"{floor:.1f}x acceptance floor"
            )
        if row["hot_s"] > HOT_LATENCY_CEILING_S:
            failures.append(
                f"{name}: hot-path latency {row['hot_s'] * 1e3:.1f}ms above the "
                f"{HOT_LATENCY_CEILING_S * 1e3:.0f}ms ceiling"
            )
        base = baselines.get(name, {}).get("ratio")
        if base is not None and measured < base * (1.0 - LATENCY_TOLERANCE):
            failures.append(
                f"{name}: cold/hot ratio {measured:.2f}x regressed more than "
                f"{LATENCY_TOLERANCE:.0%} from baseline {base:.2f}x"
            )
    return failures


def check(
    speedups: dict[str, dict[str, float]],
    baselines: dict[str, dict[str, float]],
    tolerance: float,
    also_present: set[str] = frozenset(),
) -> list[str]:
    failures: list[str] = []
    for kernel, row in speedups.items():
        measured = row["speedup"]
        floor = SPEEDUP_FLOORS.get(kernel)
        if floor is not None and measured < floor:
            failures.append(
                f"{kernel}: speedup {measured:.2f}x below the {floor:.1f}x acceptance floor"
            )
        base = baselines.get(kernel, {}).get("speedup")
        if base is None:
            continue
        if base < NEAR_PARITY_BASELINE:
            if measured < NEAR_PARITY_FLOOR:
                failures.append(
                    f"{kernel}: near-parity speedup {measured:.2f}x fell below "
                    f"the {NEAR_PARITY_FLOOR:.1f}x noise floor"
                )
        elif measured < base * (1.0 - tolerance):
            failures.append(
                f"{kernel}: speedup {measured:.2f}x regressed more than "
                f"{tolerance:.0%} from baseline {base:.2f}x"
            )
    missing = sorted(set(baselines) - set(speedups) - set(also_present))
    for kernel in missing:
        failures.append(f"{kernel}: present in baselines but not in this run")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark_json", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline file from this run instead of checking",
    )
    parser.add_argument(
        "--emit-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write every section measured in this run to PATH "
        "(the committed BENCH_zero_copy.json snapshot)",
    )
    args = parser.parse_args(argv)

    minima = load_minima(args.benchmark_json)
    speedups = load_speedups(minima)
    latencies = load_latencies(minima)
    ingest = load_ingest(minima)
    zero_copy = load_zero_copy(minima)
    obs = load_obs(minima)
    if not speedups and not latencies and not ingest and not zero_copy and not obs:
        print("no reference/vectorized benchmark pairs found", file=sys.stderr)
        return 2

    baselines = {}
    if args.baseline.exists() and not args.update:
        baselines = json.loads(args.baseline.read_text())

    # Margins are printed in the pass case too, so CI logs show each
    # kernel's headroom trend long before a failure trips the gate.
    if speedups:
        width = max(len(k) for k in speedups)
        print(
            f"{'kernel':<{width}}  {'reference':>11}  {'vectorized':>11}  "
            f"{'speedup':>8}  {'vs floor':>9}  {'vs baseline':>11}"
        )
        for kernel, row in speedups.items():
            measured = row["speedup"]
            floor = SPEEDUP_FLOORS.get(kernel)
            floor_margin = f"{measured / floor:8.2f}x" if floor else f"{'-':>9}"
            base = baselines.get(kernel, {}).get("speedup")
            base_margin = f"{100.0 * (measured - base) / base:+10.1f}%" if base else f"{'-':>11}"
            print(
                f"{kernel:<{width}}  {row['reference_s'] * 1e3:9.2f}ms  "
                f"{row['vectorized_s'] * 1e3:9.2f}ms  {measured:7.2f}x  "
                f"{floor_margin}  {base_margin}"
            )

    if latencies:
        width = max(len(k) for k in latencies)
        print(
            f"\n{'latency':<{width}}  {'cold':>11}  {'hot':>11}  "
            f"{'ratio':>8}  {'vs floor':>9}  {'vs baseline':>11}"
        )
        for name, row in latencies.items():
            measured = row["ratio"]
            floor = LATENCY_RATIO_FLOORS.get(name.rsplit("_", 1)[0])
            floor_margin = f"{measured / floor:8.2f}x" if floor else f"{'-':>9}"
            base = baselines.get(name, {}).get("ratio")
            base_margin = f"{100.0 * (measured - base) / base:+10.1f}%" if base else f"{'-':>11}"
            print(
                f"{name:<{width}}  {row['cold_s'] * 1e3:9.2f}ms  "
                f"{row['hot_s'] * 1e3:9.2f}ms  {measured:7.2f}x  "
                f"{floor_margin}  {base_margin}"
            )

    if ingest:
        width = max(len(k) for k in ingest)
        print(
            f"\n{'ingest':<{width}}  {'full':>11}  {'incremental':>11}  "
            f"{'ratio':>8}  {'vs floor':>9}  {'vs baseline':>11}"
        )
        for name, row in ingest.items():
            measured = row["ratio"]
            floor_margin = f"{measured / INGEST_RATIO_FLOOR:8.2f}x"
            base = baselines.get(name, {}).get("ratio")
            base_margin = f"{100.0 * (measured - base) / base:+10.1f}%" if base else f"{'-':>11}"
            print(
                f"{name:<{width}}  {row['full_s'] * 1e3:9.2f}ms  "
                f"{row['incremental_s'] * 1e3:9.2f}ms  {measured:7.2f}x  "
                f"{floor_margin}  {base_margin}"
            )

    if zero_copy:
        width = max(len(k) for k in zero_copy)
        print(
            f"\n{'zero-copy':<{width}}  {'copied':>11}  {'zero-copy':>11}  "
            f"{'ratio':>8}  {'vs floor':>9}  {'vs baseline':>11}"
        )
        for name, row in zero_copy.items():
            measured = row["ratio"]
            if name == "zero_copy_fanout":
                slow_s, fast_s = row["pickled_s"], row["shm_s"]
                floor = ZERO_COPY_FANOUT_FLOOR
            else:
                slow_s, fast_s = row["npz_s"], row["raw_s"]
                floor = ZERO_COPY_DECODE_FLOOR
            base = baselines.get(name, {}).get("ratio")
            base_margin = f"{100.0 * (measured - base) / base:+10.1f}%" if base else f"{'-':>11}"
            print(
                f"{name:<{width}}  {slow_s * 1e3:9.2f}ms  "
                f"{fast_s * 1e3:9.2f}ms  {measured:7.2f}x  "
                f"{measured / floor:8.2f}x  {base_margin}"
            )

    if obs:
        width = max(len(k) for k in obs)
        print(
            f"\n{'telemetry':<{width}}  {'disabled':>11}  {'enabled':>11}  "
            f"{'ratio':>8}  {'vs ceiling':>10}"
        )
        for name, row in obs.items():
            measured = row["ratio"]
            print(
                f"{name:<{width}}  {row['disabled_s'] * 1e3:9.2f}ms  "
                f"{row['enabled_s'] * 1e3:9.2f}ms  {measured:7.3f}x  "
                f"{OBS_OVERHEAD_CEILING - measured:+9.3f}x"
            )

    if args.emit_json is not None:
        snapshot = {
            "source": str(args.benchmark_json),
            "kernels": speedups,
            "latencies": latencies,
            "ingest": ingest,
            "zero_copy": zero_copy,
            "obs": obs,
        }
        args.emit_json.parent.mkdir(parents=True, exist_ok=True)
        args.emit_json.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"measured snapshot written to {args.emit_json}")

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        merged = {**speedups, **latencies, **ingest, **zero_copy, **obs}
        args.baseline.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        print(f"baselines written to {args.baseline}")
        return 0

    failures = check(
        speedups,
        baselines,
        args.tolerance,
        also_present=set(latencies) | set(ingest) | set(zero_copy) | set(obs),
    )
    failures += check_latencies(latencies, baselines)
    failures += check_ingest(ingest, baselines)
    failures += check_zero_copy(zero_copy, baselines)
    failures += check_obs(obs)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "kernel speedups, serving latencies, ingest, zero-copy and telemetry "
        "ratios within tolerance of committed baselines"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
