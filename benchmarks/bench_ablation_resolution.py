"""Ablation: along-track resolution (2 m windows vs 150-photon aggregation).

The paper's core argument is that 2 m resampling yields a far denser, more
faithful product than the operational 150-photon aggregation.  This ablation
sweeps the window length and the aggregation count and reports segment
density and the freeboard error against the simulator's ground truth.
"""

import numpy as np
from conftest import write_result

from repro.evaluation.report import format_table
from repro.freeboard.freeboard import compute_freeboard
from repro.resampling.photon_agg import aggregate_photons
from repro.resampling.window import resample_fixed_window


def test_ablation_resolution(benchmark, pipeline_outputs):
    beam_name = sorted(pipeline_outputs.classified)[0]
    beam = pipeline_outputs.data.granule.beam(beam_name)
    scene = pipeline_outputs.data.scene

    def freeboard_error_for_window(window_m):
        segments = resample_fixed_window(beam, window_length_m=window_m)
        result = compute_freeboard(segments, segments.truth_class)
        truth = scene.freeboard(segments.x_m, segments.y_m)
        ice = result.ice_mask()
        rmse = float(np.sqrt(np.nanmean((result.freeboard_m[ice] - truth[ice]) ** 2)))
        extent_km = (segments.center_along_track_m[-1] - segments.center_along_track_m[0]) / 1000.0
        return {"points_per_km": segments.n_segments / extent_km, "rmse_m": rmse}

    # Benchmark the paper's 2 m configuration.
    benchmark(freeboard_error_for_window, 2.0)

    rows = []
    for window in (2.0, 10.0, 50.0, 200.0):
        stats = freeboard_error_for_window(window)
        rows.append(
            {
                "resampling": f"{window:g} m fixed window",
                "points/km": round(stats["points_per_km"], 1),
                "freeboard RMSE vs truth (m)": round(stats["rmse_m"], 3),
            }
        )
    for count in (50, 150):
        agg = aggregate_photons(beam, photons_per_segment=count)
        rows.append(
            {
                "resampling": f"{count}-photon aggregation",
                "points/km": round(
                    agg.n_segments
                    / ((agg.center_along_track_m[-1] - agg.center_along_track_m[0]) / 1000.0),
                    1,
                ),
                "freeboard RMSE vs truth (m)": float("nan"),
            }
        )

    text = format_table(rows, "Ablation: along-track resolution sweep")
    write_result("ablation_resolution", text)
    print("\n" + text)

    # 2 m windows are two orders of magnitude denser than 150-photon segments.
    assert rows[0]["points/km"] > 50 * rows[-1]["points/km"] / 150 * 1.0
