"""Benchmark: multi-granule campaign throughput and simulated cluster scaling.

Two parts, mirroring the structure of the Table II / Table V benchmarks:

1. a small granule fleet is run through the :class:`CampaignRunner` with an
   increasing number of worker processes — this measures the real end-to-end
   campaign wall time on this machine (curation and retrieval fan out, the
   pooled training stays serial, so the measured curve bends per Amdahl);
2. the campaign's serial-equivalent stage times are routed through the
   calibrated :class:`ClusterCostModel` to predict the Dataproc-style
   executor/core grid of the paper.
"""

import time

from conftest import write_result

from repro.campaign import CampaignConfig, CampaignRunner
from repro.distributed.speedup import SpeedupTable
from repro.evaluation.report import format_table
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

_BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=8_000.0,
        height_m=8_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
)

_GRID = {"season": ("winter", "freeze_up"), "cloud_fraction": (0.15, 0.4)}


def _campaign_config(n_workers: int, use_shm: bool = True) -> CampaignConfig:
    return CampaignConfig(
        base=_BASE, grid=_GRID, seed=17, n_workers=n_workers, use_shm=use_shm
    )


def test_campaign_scaling(benchmark):
    """Time a 4-granule campaign and regenerate its scaling report."""
    result = benchmark.pedantic(
        lambda: CampaignRunner(_campaign_config(1)).run(), rounds=1, iterations=1
    )
    assert result.n_granules == 4

    sweep = SpeedupTable("campaign workers")
    for n_workers in (1, 2, 4):
        start = time.perf_counter()
        with CampaignRunner(_campaign_config(n_workers)) as runner:
            parallel = runner.run()
        elapsed = time.perf_counter() - start
        assert parallel.metrics.n_segments == result.metrics.n_segments
        sweep.add(f"{n_workers} workers", n_workers, max(elapsed, 1e-6))

    # Whole-campaign zero-copy delta: the same 4-worker fleet with the
    # process fan-out's shared-memory transport on vs off (pickled arrays).
    # Both runs produce identical science by contract; only wall time moves.
    shm_rows = []
    for label, use_shm in (("shm fan-out", True), ("pickled fan-out", False)):
        start = time.perf_counter()
        with CampaignRunner(_campaign_config(4, use_shm=use_shm)) as runner:
            delta_run = runner.run()
        elapsed = time.perf_counter() - start
        assert delta_run.metrics.n_segments == result.metrics.n_segments
        shm_rows.append({"transport": label, "wall_s": round(max(elapsed, 1e-6), 3)})

    text = "\n\n".join(
        [
            format_table(
                [row.as_dict() for row in result.scaling],
                "Campaign scaling on the simulated Dataproc cluster (cost model)",
            ),
            format_table(sweep.rows(), "Measured campaign wall time (this machine)"),
            format_table(
                shm_rows, "Campaign wall time, 4 workers: shm vs pickled fan-out"
            ),
            result.summary(),
        ]
    )
    write_result("campaign_scaling", text)
