"""Ablation: ring versus tree all-reduce for gradient averaging.

Horovod's choice of the ring algorithm (Patarasuk & Yuan) is motivated by
bandwidth optimality.  This ablation times both collectives on the LSTM's
gradient set and reports the modelled communication volume per rank.
"""

import numpy as np
from conftest import write_result

from repro.distributed.allreduce import ring_allreduce, tree_allreduce
from repro.evaluation.report import format_table
from repro.ml.models import build_lstm_classifier
from repro.utils.random import spawn_rngs


def _gradient_buffers(n_ranks=8):
    model = build_lstm_classifier(rng=0)
    n_params = model.n_parameters
    rngs = spawn_rngs(1, n_ranks)
    return [rng.normal(size=n_params) for rng in rngs], n_params


def test_ablation_ring_vs_tree_allreduce(benchmark):
    buffers, n_params = _gradient_buffers(8)

    # Verify both collectives agree before timing.
    ring_out = ring_allreduce(buffers)
    tree_out = tree_allreduce(buffers)
    np.testing.assert_allclose(ring_out[0], tree_out[0], atol=1e-9)

    benchmark(ring_allreduce, buffers)

    n = len(buffers)
    bytes_per_rank_ring = 2 * (n - 1) / n * n_params * 4
    bytes_per_rank_tree = np.log2(n) * n_params * 4
    rows = [
        {
            "algorithm": "ring all-reduce",
            "modelled bytes moved per rank": int(bytes_per_rank_ring),
            "relative bandwidth cost": 1.0,
        },
        {
            "algorithm": "tree reduce + broadcast",
            "modelled bytes moved per rank": int(bytes_per_rank_tree),
            "relative bandwidth cost": round(bytes_per_rank_tree / bytes_per_rank_ring, 2),
        },
    ]
    text = format_table(rows, f"Ablation: all-reduce algorithm (8 ranks, {n_params} parameters)")
    write_result("ablation_allreduce", text)
    print("\n" + text)

    # The ring moves less data per rank than the tree for 8 ranks.
    assert bytes_per_rank_ring < bytes_per_rank_tree
