"""Benchmark / regeneration of Figs. 8-9: local sea-surface comparison.

Regenerates (a) the local sea surface from the four estimation methods over
the classified 2 m segments and (b) the comparison of the NASA-method ATL03
sea surface with the emulated ATL07 sea surface, and times the NASA-method
estimation — the stage the freeboard computation depends on.
"""

from conftest import write_result

from repro.evaluation.figures import figure8_9_sea_surface_comparison
from repro.evaluation.report import format_table
from repro.freeboard.sea_surface import estimate_sea_surface


def test_fig8_9_sea_surface_comparison(benchmark, pipeline_outputs):
    beam_name = sorted(pipeline_outputs.classified)[0]
    track = pipeline_outputs.classified[beam_name]
    seg = track.segments

    # Benchmark the NASA-method sea-surface estimation over the whole track.
    benchmark(
        estimate_sea_surface,
        seg.center_along_track_m,
        seg.height_mean_m,
        seg.height_error_m(),
        track.labels,
        "nasa",
    )

    fig = figure8_9_sea_surface_comparison(pipeline_outputs, beam_name)
    rows = [
        {
            "method": method,
            "windows": len(fig["methods"][method]["centers_m"]),
            "mean height (m)": round(
                sum(fig["methods"][method]["heights_m"]) / max(len(fig["methods"][method]["heights_m"]), 1), 3
            ),
            "smoothness RMS (m)": round(fig["smoothness_m"][method], 4),
        }
        for method in fig["methods"]
    ]
    text = format_table(rows, f"Figs. 8-9: local sea surface methods along track {fig['beam']}")
    text += (
        "\n\nMean |ATL03 (NASA method) - ATL07| sea-surface difference: "
        f"{fig['mean_abs_difference_vs_atl07_m']:.3f} m "
        "(paper reports 'a little over 0.1 m')"
    )
    write_result("fig8_9_sea_surface", text)
    print("\n" + text)

    # Shape assertions: every method produces windows, and the ATL03/ATL07
    # difference is decimetre-scale on this lead-rich track.
    assert all(len(fig["methods"][m]["centers_m"]) >= 3 for m in fig["methods"])
    assert fig["mean_abs_difference_vs_atl07_m"] < 0.4
