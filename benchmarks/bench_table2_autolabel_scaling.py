"""Benchmark / regeneration of Table II: scaled IS2 auto-labeling.

Two parts:

1. the *real* map-reduce auto-labeling job is executed and timed with the
   in-process engine over the (executors x cores) slot counts of the paper's
   grid — this verifies correctness and gives measured per-slot timings on
   this machine;
2. the calibrated cluster cost model regenerates the paper's Table II shape
   (load/map/reduce seconds and the 9.0x / 16.25x speedups) anchored on the
   paper's single-slot baselines.
"""

import numpy as np
from conftest import write_result

from repro.distributed.mapreduce import MapReduceEngine
from repro.distributed.speedup import SpeedupTable
from repro.evaluation.report import format_table
from repro.evaluation.tables import regenerate_table2
from repro.labeling.autolabel import auto_label_segments
from repro.labeling.parallel import parallel_autolabel


def _first_beam_segments(data):
    name = sorted(data.segments)[0]
    return data.segments[name]


def test_table2_autolabel_mapreduce(benchmark, experiment_data):
    """Time the map-reduce auto-labeling job (16 partitions, the 4x4 grid point)."""
    segments = _first_beam_segments(experiment_data)
    engine = MapReduceEngine(n_partitions=16, executor="serial")

    result, _ = benchmark(
        parallel_autolabel, segments, experiment_data.image, experiment_data.segmentation, engine
    )

    # Correctness: identical to the serial reference.
    serial = auto_label_segments(segments, experiment_data.image, experiment_data.segmentation)
    np.testing.assert_array_equal(result.labels, serial.labels)

    # Measured slot sweep on this machine (single CPU: times are flat; the
    # cost model below supplies the multi-node extrapolation).
    sweep = SpeedupTable("autolabel partitions")
    for executors, cores in ((1, 1), (1, 2), (1, 4), (2, 2), (2, 4), (4, 4)):
        slots = executors * cores
        engine = MapReduceEngine(n_partitions=slots, executor="serial")
        _, mr = parallel_autolabel(
            segments, experiment_data.image, experiment_data.segmentation, engine
        )
        sweep.add(f"{executors}x{cores}", slots, max(mr.total_seconds, 1e-6))

    rows = regenerate_table2()
    text = "\n\n".join(
        [
            format_table(rows, "Table II: PySpark-style IS2 auto-labeling scalability (modelled)"),
            format_table(sweep.rows(), "Measured in-process map-reduce sweep (single CPU)"),
        ]
    )
    write_result("table2_autolabel_scaling", text)
    print("\n" + text)

    # Shape assertions matching the paper.
    assert rows[-1]["Speedup Load"] > 8.0
    assert rows[-1]["Speedup Reduce"] > 14.0
