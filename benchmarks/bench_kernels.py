"""Reference-vs-vectorized timings for the ``repro.kernels`` hot paths.

Three kernel pairs are timed on deterministic, ATL03-representative inputs:

* **windowed sea-surface estimation** — a 400 km track whose open-water
  candidates cluster into discrete leads (contiguous 2 m segments), the way
  sea ice actually fractures; 10 km windows sliding by 5 km, NASA method;
* **confidence binning** — 400 k photons in along-track order at ~4
  photons/m over 100 km (20 m bins, ±15 m telemetry band);
* **LSTM forward/backward** — a pooled campaign minibatch of 8 k sequences
  of five 2 m segments with six features, 16 units.

Each pair is asserted equivalent (1e-10) before it is timed, so a benchmark
run doubles as an integration check.  ``benchmarks/check_regression.py``
turns the emitted ``--benchmark-json`` file into per-kernel speedups and
compares them against the committed baselines in
``benchmarks/results/kernel_baselines.json`` (machine-independent: ratios,
not absolute times).

Run:  python -m pytest benchmarks/bench_kernels.py --benchmark-json=bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.kernels import confidence as kconf
from repro.kernels import lstm as klstm
from repro.kernels import sea_surface as ksea

ROUNDS = dict(rounds=7, iterations=1, warmup_rounds=2)


def assert_equivalent(ref, vec, atol=1e-10):
    for r, v in zip(ref, vec):
        assert np.allclose(r, v, atol=atol, rtol=0.0, equal_nan=True)


# ---------------------------------------------------------------------------
# Windowed sea-surface estimation (NASA method, clustered leads)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sea_surface_scene():
    rng = np.random.default_rng(7)
    track_m = 400_000.0
    alongs = []
    pos = rng.uniform(0.0, 1_200.0)
    while pos < track_m:
        width = rng.uniform(20.0, 250.0)
        n = max(int(width / 2.0), 1)
        alongs.append(pos + np.arange(n) * 2.0 + rng.normal(0.0, 0.2, n))
        pos += width + rng.exponential(1_200.0)
    along = np.sort(np.concatenate(alongs))
    height = rng.normal(0.05, 0.03, along.size)
    error = np.clip(rng.uniform(0.02, 0.1, along.size), 0.02, None)
    step, length = 5_000.0, 10_000.0
    start = float(along.min())
    n_windows = max(int(np.ceil((float(along.max()) - start) / step)), 1)
    starts = start + np.arange(n_windows) * step
    stops = starts + length
    centers = 0.5 * (starts + stops)
    args = (along, height, error, starts, stops, centers, "nasa", 3)
    assert_equivalent(
        ksea.window_estimates_reference(*args), ksea.window_estimates_vectorized(*args)
    )
    return args


def test_sea_surface_nasa_reference(benchmark, sea_surface_scene):
    benchmark.pedantic(ksea.window_estimates_reference, args=sea_surface_scene, **ROUNDS)


def test_sea_surface_nasa_vectorized(benchmark, sea_surface_scene):
    benchmark.pedantic(ksea.window_estimates_vectorized, args=sea_surface_scene, **ROUNDS)


# ---------------------------------------------------------------------------
# ATL03 confidence binning
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def photon_cloud():
    rng = np.random.default_rng(11)
    n = 400_000
    track_m = 100_000.0
    along = np.sort(rng.uniform(0.0, track_m, n))
    surface = rng.random(n) < 0.75
    height = np.where(
        surface, rng.normal(0.0, 0.2, n), rng.uniform(-15.0, 15.0, n)
    )
    n_bins = int(np.ceil((float(along.max()) - float(along.min())) / 20.0))
    bin_edges = float(along.min()) + np.arange(n_bins + 1) * 20.0
    args = (along, height, bin_edges, 0.25)
    ref = kconf.modal_height_per_bin_reference(*args)
    vec = kconf.modal_height_per_bin_vectorized(*args)
    assert_equivalent((ref,), (vec,))
    return args


def test_confidence_binning_reference(benchmark, photon_cloud):
    benchmark.pedantic(kconf.modal_height_per_bin_reference, args=photon_cloud, **ROUNDS)


def test_confidence_binning_vectorized(benchmark, photon_cloud):
    benchmark.pedantic(kconf.modal_height_per_bin_vectorized, args=photon_cloud, **ROUNDS)


# ---------------------------------------------------------------------------
# LSTM forward / backward over a pooled minibatch
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def lstm_batch():
    rng = np.random.default_rng(3)
    batch, T, n_in, units = 8_000, 5, 6, 16
    x = rng.normal(size=(batch, T, n_in))
    W = rng.normal(size=(n_in, 4 * units)) * 0.3
    U = rng.normal(size=(units, 4 * units)) * 0.3
    b = rng.normal(size=4 * units) * 0.1
    dh_seq = rng.normal(size=(batch, T, units))
    fwd_args = (x, W, U, b, "elu")
    ref = klstm.lstm_forward_reference(*fwd_args)
    vec = klstm.lstm_forward_vectorized(*fwd_args)
    assert_equivalent(ref, vec)
    bwd_args = (dh_seq, x, *ref, W, U, "elu")
    assert_equivalent(
        klstm.lstm_backward_reference(*bwd_args),
        klstm.lstm_backward_vectorized(*bwd_args),
    )
    return fwd_args, bwd_args


def test_lstm_forward_reference(benchmark, lstm_batch):
    benchmark.pedantic(klstm.lstm_forward_reference, args=lstm_batch[0], **ROUNDS)


def test_lstm_forward_vectorized(benchmark, lstm_batch):
    benchmark.pedantic(klstm.lstm_forward_vectorized, args=lstm_batch[0], **ROUNDS)


def test_lstm_backward_reference(benchmark, lstm_batch):
    benchmark.pedantic(klstm.lstm_backward_reference, args=lstm_batch[1], **ROUNDS)


def test_lstm_backward_vectorized(benchmark, lstm_batch):
    benchmark.pedantic(klstm.lstm_backward_vectorized, args=lstm_batch[1], **ROUNDS)
