"""Benchmark / regeneration of Table III: LSTM vs MLP classification accuracy.

Trains both classifiers on the auto-labelled 2 m segments of the benchmark
scene (80/20 split, focal loss, Adam lr=0.003) and reports accuracy,
precision, recall and F1 — the same rows as the paper's Table III.  The
benchmark clock times LSTM inference over the full track (the deployed
workload); training happens once in the shared fixture path.
"""

from conftest import write_result

from repro.classification.pipeline import train_classifier
from repro.evaluation.report import format_table
from repro.resampling.features import feature_matrix, sequence_windows


def test_table3_model_accuracy(benchmark, experiment_data):
    segments, labels = experiment_data.combined_segments_and_labels()

    mlp = train_classifier(segments, labels, kind="mlp", epochs=5, rng=0)
    lstm = train_classifier(segments, labels, kind="lstm", epochs=5, rng=0)

    rows = [mlp.report.as_row("MLP"), lstm.report.as_row("LSTM")]
    text = format_table(rows, "Table III: sea-ice classification accuracy (simulated Ross Sea data)")
    write_result("table3_model_accuracy", text)
    print("\n" + text)

    # Benchmark the LSTM inference pass over every 2 m segment of the track.
    X, _ = feature_matrix(segments, normalize=True, stats=lstm.feature_stats)
    sequences = sequence_windows(X, lstm.sequence_length)
    predictions = benchmark(lstm.model.predict, sequences)
    assert predictions.shape[0] == segments.n_segments

    # Shape assertions following the paper: both models above 80 %, and the
    # LSTM at least as accurate as the MLP (the paper reports 96.56 vs 91.80).
    assert mlp.report.accuracy > 0.80
    assert lstm.report.accuracy > 0.85
    assert lstm.report.accuracy >= mlp.report.accuracy - 0.02
