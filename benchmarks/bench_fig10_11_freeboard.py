"""Benchmark / regeneration of Figs. 10-11: freeboard comparison ATL03 vs ATL07/ATL10.

Regenerates the along-track freeboard series, the freeboard distributions and
the point-density comparison, and times the full 2 m freeboard computation.
"""

import numpy as np
from conftest import write_result

from repro.evaluation.figures import figure10_11_freeboard_comparison
from repro.evaluation.report import format_table
from repro.freeboard.freeboard import compute_freeboard


def test_fig10_11_freeboard_comparison(benchmark, pipeline_outputs):
    beam_name = sorted(pipeline_outputs.classified)[0]
    track = pipeline_outputs.classified[beam_name]

    # Benchmark the end-to-end freeboard computation for the classified track.
    benchmark(compute_freeboard, track.segments, track.labels)

    fig = figure10_11_freeboard_comparison(pipeline_outputs, beam_name)
    comparison = fig["comparison"]
    rows = [
        {
            "product": "ATL03 2 m freeboard (this work)",
            "mean freeboard (m)": comparison["atl03_mean_freeboard_m"],
            "mode freeboard (m)": comparison["atl03_mode_freeboard_m"],
            "points/km": comparison["atl03_points_per_km"],
        },
        {
            "product": "ATL10 (150-photon baseline)",
            "mean freeboard (m)": comparison["baseline_mean_freeboard_m"],
            "mode freeboard (m)": comparison["baseline_mode_freeboard_m"],
            "points/km": comparison["baseline_points_per_km"],
        },
    ]
    text = format_table(rows, f"Figs. 10-11: freeboard comparison along track {fig['beam']}")
    text += (
        f"\n\nPoint-density ratio: {comparison['density_ratio']}x"
        f"\nSea-surface |difference| vs ATL07: {comparison['sea_surface_mean_abs_difference_m']} m"
        f"\nATL07 mean segment length: {fig['atl07_mean_segment_length_m']:.1f} m"
    )
    write_result("fig10_11_freeboard", text)
    print("\n" + text)

    # Shape assertions: far denser product, physically plausible freeboards,
    # distribution mass concentrated below ~1 m.
    assert comparison["density_ratio"] > 8.0
    assert 0.0 < comparison["atl03_mean_freeboard_m"] < 1.2
    assert 0.0 < comparison["baseline_mean_freeboard_m"] < 1.2
    atl03_dist = np.array(fig["atl03_distribution"])
    bins = np.array(fig["distribution_bins_m"])
    assert atl03_dist[bins < 1.0].sum() > 0.8
