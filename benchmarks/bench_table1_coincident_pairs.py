"""Benchmark / regeneration of Table I: IS2-S2 coincident pairs.

Regenerates the eight Ross Sea pairs (acquisition times, time differences and
drift shifts) and benchmarks the temporal matcher that produces them from the
two acquisition catalogues.
"""

from conftest import write_result

from repro.evaluation.report import format_table
from repro.evaluation.tables import regenerate_table1
from repro.labeling.pairs import TABLE_I_PAIRS, find_coincident_pairs


def test_table1_coincident_pair_matching(benchmark):
    """Time the IS2/S2 temporal matching and regenerate Table I."""
    is2_times = [p.is2_time for p in TABLE_I_PAIRS]
    s2_times = [p.s2_time for p in TABLE_I_PAIRS]

    matches = benchmark(find_coincident_pairs, is2_times, s2_times, 80.0)

    assert len(matches) == 8
    rows = regenerate_table1()
    text = format_table(rows, "Table I: IS2 ATL03 / S2 coincident pairs (Ross Sea, Nov 2019)")
    write_result("table1_coincident_pairs", text)
    print("\n" + text)
