"""Telemetry overhead benchmarks: the same work with obs on and off.

Four enabled/disabled pairs, mirroring the hot paths the instrumentation
rides on:

* **query**: a pre-warmed router serving a request batch from the shard LRU
  caches — the serving steady state, where every request crosses the
  ``router.request`` -> ``engine.query_batch`` span pair and a dozen
  counters.  This is the path with the least real work per span, so it is
  the most overhead-sensitive.
* **campaign**: one small end-to-end campaign run — curation, pooled
  training, retrieval, aggregation — where spans and stage counters wrap
  seconds of numeric work and the overhead must disappear in the noise.
* **logging**: a fully cache-hot campaign re-run — every stage is a cache
  hit, and every hit emits a structured ``campaign.cache_hit`` record
  through the dedup ring *and* a JSON-lines file sink, so the enabled run
  pays serialization + write per record on top of the span/counter cost.
* **propagation**: a process-pool map-reduce job — the enabled run pickles
  each task wrapped with the driver's trace context, installs a worker-side
  tracer, ships spans + metric deltas back and grafts them into the
  driver's tree; the disabled run submits the bare tasks.

``benchmarks/check_regression.py`` pairs each ``obs_enabled_*`` benchmark
with its ``obs_disabled_*`` twin and holds the enabled/disabled time ratio
under ``OBS_OVERHEAD_CEILING`` (1.05: telemetry may cost at most 5 % of
any hot path).

Run:  python -m pytest benchmarks/bench_obs.py --benchmark-json=obs-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import RouterConfig, ServeConfig
from repro.distributed.mapreduce import MapReduceEngine
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.obs.core import Obs
from repro.serve.catalog import ProductCatalog
from repro.serve.clock import VirtualClock
from repro.serve.query import TileRequest
from repro.serve.router import RequestRouter
from repro.serve.shard import ShardedCatalog
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

SERVE = ServeConfig(tile_size=64, tile_cache_size=512)
CONFIG = RouterConfig(n_shards=2, max_queue_depth=64)

GRID_NX, GRID_NY = 512, 384


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-bench")
    rng = np.random.default_rng(11)
    grid = GridDefinition(
        x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=GRID_NX, ny=GRID_NY
    )
    occupancy = rng.random(grid.shape) < 0.4
    n_seg = np.where(occupancy, rng.integers(1, 40, grid.shape), 0).astype(np.int64)
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(
                occupancy, rng.normal(0.3, 0.15, grid.shape), np.nan
            ),
        },
        metadata={"kind": "mosaic", "granule_ids": ["bench"], "fingerprint": "fp-obs"},
    )
    write_level3(product, root / "mosaic")
    catalog = ProductCatalog()
    catalog.scan(root)
    return catalog


def make_requests() -> list[TileRequest]:
    requests = []
    for i, zoom in ((0, 0), (1, 0), (2, 1), (3, 1), (4, 2)):
        x0, y0 = i * 8_000.0, (i % 3) * 8_000.0
        requests.append(
            TileRequest(
                bbox=(x0, y0, x0 + 12_800.0, y0 + 9_600.0),
                variable="freeboard_mean",
                zoom=zoom,
            )
        )
    return requests


def _bench_query(benchmark, archive, obs: Obs) -> None:
    router = RequestRouter(
        ShardedCatalog.from_catalog(archive, CONFIG.n_shards),
        serve=SERVE,
        config=CONFIG,
        obs=obs,
    )
    requests = make_requests()
    warmed = router.serve(requests)
    assert all(r.response.n_tiles > 0 for r in warmed)

    def serve_many() -> None:
        # 10 warm batches per round: enough spans/counter increments that
        # per-call overhead, not timer resolution, is what gets measured.
        for _ in range(10):
            router.serve(requests)

    benchmark.pedantic(serve_many, **ROUNDS)


def test_obs_enabled_query(benchmark, archive):
    _bench_query(benchmark, archive, Obs(clock=VirtualClock()))


def test_obs_disabled_query(benchmark, archive):
    _bench_query(benchmark, archive, Obs.disabled())


_BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=6,
    ),
    epochs=1,
    model_kind="mlp",
)

_GRID = {"season": ("winter", "freeze_up")}


def _bench_campaign(benchmark, obs: Obs) -> None:
    config = CampaignConfig(base=_BASE, grid=_GRID, seed=23, n_workers=1)

    def run_campaign():
        with CampaignRunner(config, obs=obs) as runner:
            return runner.run()

    result = benchmark.pedantic(run_campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert result.n_granules == 2


def test_obs_enabled_campaign(benchmark):
    _bench_campaign(benchmark, Obs())


def test_obs_disabled_campaign(benchmark):
    _bench_campaign(benchmark, Obs.disabled())


# -- logging: cache-hot campaign, one structured record per stage hit ---------


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A campaign cache populated once, shared by both logging runs."""
    cache_dir = tmp_path_factory.mktemp("obs-bench-cache")
    config = CampaignConfig(
        base=_BASE, grid=_GRID, seed=23, n_workers=1, cache_dir=str(cache_dir)
    )
    with CampaignRunner(config, obs=Obs.disabled()) as runner:
        runner.run()
    return cache_dir


def _bench_logging(benchmark, warm_cache, obs: Obs) -> None:
    config = CampaignConfig(
        base=_BASE, grid=_GRID, seed=23, n_workers=1, cache_dir=str(warm_cache)
    )

    def run_cached():
        # 10 cache-hot runs per round: each is only a few ms, so batching
        # keeps timer jitter out of the minima the gate compares.
        for _ in range(10):
            with CampaignRunner(config, obs=obs) as runner:
                result = runner.run()
        return result

    result = benchmark.pedantic(run_cached, **ROUNDS)
    assert result.n_granules == 2


def test_obs_enabled_logging(benchmark, warm_cache, tmp_path):
    obs = Obs()
    obs.log.attach_sink(tmp_path / "events.jsonl")
    try:
        _bench_logging(benchmark, warm_cache, obs)
        assert obs.log.n_records > 0
    finally:
        obs.log.close()


def test_obs_disabled_logging(benchmark, warm_cache):
    _bench_logging(benchmark, warm_cache, Obs.disabled())


# -- propagation: trace context across a process pool -------------------------


def _load_matrices() -> list[np.ndarray]:
    # Sized so per-task numeric work dominates the fixed per-task costs
    # (context pickle, telemetry ship-back) the pair is meant to bound.
    rng = np.random.default_rng(7)
    return [rng.normal(size=(224, 224)) for _ in range(12)]


def _eig_partition(matrices) -> float:
    total = 0.0
    for m in matrices:
        total += float(np.abs(np.linalg.eigvals(m @ m.T)).sum())
    return total


def _sum_partials(partials) -> float:
    return float(sum(partials))


def _bench_propagation(benchmark, obs: Obs) -> None:
    with MapReduceEngine(n_partitions=4, executor="process", obs=obs) as engine:
        # Warm the persistent pool outside the measured region so both runs
        # pay worker startup once, not per round.
        engine.run(_load_matrices, _eig_partition, _sum_partials)

        def run_job():
            return engine.run(_load_matrices, _eig_partition, _sum_partials)

        result = benchmark.pedantic(run_job, **ROUNDS)
        assert result.value > 0.0


def test_obs_enabled_propagation(benchmark):
    obs = Obs()
    _bench_propagation(benchmark, obs)
    # The enabled run must actually graft worker subtrees into the driver.
    assert obs.tracer.spans("mapreduce.task")


def test_obs_disabled_propagation(benchmark):
    _bench_propagation(benchmark, Obs.disabled())
