"""Telemetry overhead benchmarks: the same work with obs on and off.

Two enabled/disabled pairs, mirroring the two hot paths the instrumentation
rides on:

* **query**: a pre-warmed router serving a request batch from the shard LRU
  caches — the serving steady state, where every request crosses the
  ``router.request`` -> ``engine.query_batch`` span pair and a dozen
  counters.  This is the path with the least real work per span, so it is
  the most overhead-sensitive.
* **campaign**: one small end-to-end campaign run — curation, pooled
  training, retrieval, aggregation — where spans and stage counters wrap
  seconds of numeric work and the overhead must disappear in the noise.

``benchmarks/check_regression.py`` pairs each ``obs_enabled_*`` benchmark
with its ``obs_disabled_*`` twin and holds the enabled/disabled time ratio
under ``OBS_OVERHEAD_CEILING`` (1.05: telemetry may cost at most 5 % of
either hot path).

Run:  python -m pytest benchmarks/bench_obs.py --benchmark-json=obs-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import RouterConfig, ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.obs.core import Obs
from repro.serve.catalog import ProductCatalog
from repro.serve.clock import VirtualClock
from repro.serve.query import TileRequest
from repro.serve.router import RequestRouter
from repro.serve.shard import ShardedCatalog
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

SERVE = ServeConfig(tile_size=64, tile_cache_size=512)
CONFIG = RouterConfig(n_shards=2, max_queue_depth=64)

GRID_NX, GRID_NY = 512, 384


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-bench")
    rng = np.random.default_rng(11)
    grid = GridDefinition(
        x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=GRID_NX, ny=GRID_NY
    )
    occupancy = rng.random(grid.shape) < 0.4
    n_seg = np.where(occupancy, rng.integers(1, 40, grid.shape), 0).astype(np.int64)
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(
                occupancy, rng.normal(0.3, 0.15, grid.shape), np.nan
            ),
        },
        metadata={"kind": "mosaic", "granule_ids": ["bench"], "fingerprint": "fp-obs"},
    )
    write_level3(product, root / "mosaic")
    catalog = ProductCatalog()
    catalog.scan(root)
    return catalog


def make_requests() -> list[TileRequest]:
    requests = []
    for i, zoom in ((0, 0), (1, 0), (2, 1), (3, 1), (4, 2)):
        x0, y0 = i * 8_000.0, (i % 3) * 8_000.0
        requests.append(
            TileRequest(
                bbox=(x0, y0, x0 + 12_800.0, y0 + 9_600.0),
                variable="freeboard_mean",
                zoom=zoom,
            )
        )
    return requests


def _bench_query(benchmark, archive, obs: Obs) -> None:
    router = RequestRouter(
        ShardedCatalog.from_catalog(archive, CONFIG.n_shards),
        serve=SERVE,
        config=CONFIG,
        obs=obs,
    )
    requests = make_requests()
    warmed = router.serve(requests)
    assert all(r.response.n_tiles > 0 for r in warmed)

    def serve_many() -> None:
        # 10 warm batches per round: enough spans/counter increments that
        # per-call overhead, not timer resolution, is what gets measured.
        for _ in range(10):
            router.serve(requests)

    benchmark.pedantic(serve_many, **ROUNDS)


def test_obs_enabled_query(benchmark, archive):
    _bench_query(benchmark, archive, Obs(clock=VirtualClock()))


def test_obs_disabled_query(benchmark, archive):
    _bench_query(benchmark, archive, Obs.disabled())


_BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=6,
    ),
    epochs=1,
    model_kind="mlp",
)

_GRID = {"season": ("winter", "freeze_up")}


def _bench_campaign(benchmark, obs: Obs) -> None:
    config = CampaignConfig(base=_BASE, grid=_GRID, seed=23, n_workers=1)

    def run_campaign():
        with CampaignRunner(config, obs=obs) as runner:
            return runner.run()

    result = benchmark.pedantic(run_campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert result.n_granules == 2


def test_obs_enabled_campaign(benchmark):
    _bench_campaign(benchmark, Obs())


def test_obs_disabled_campaign(benchmark):
    _bench_campaign(benchmark, Obs.disabled())
