"""Reference-vs-vectorized timings for the Level-3 gridding kernels.

One campaign-scale binning job is timed end to end: a fleet's worth of
along-track segments (600 k points, clustered along simulated ground
tracks the way real orbits actually sample a polar grid, ~60 k occupied
cells) binned onto a 512 x 512 cell grid — per-cell
count/mean/median/std/MAD of freeboard plus the per-class segment counts,
i.e. exactly what :meth:`repro.l3.Level3Processor.grid_granule` runs per
granule.

The reference backend is the pure per-cell loop; the vectorized backend
does composite-key ``np.bincount`` sums and segmented ``np.lexsort``
medians.  The pair is asserted equivalent (1e-10) before timing, and
``benchmarks/check_regression.py`` holds the measured speedup against the
committed baseline (with a hard >= 3x acceptance floor for this kernel).

Run:  python -m pytest benchmarks/bench_l3_gridding.py --benchmark-json=l3-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.kernels import gridding as kgrid

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

N_POINTS = 600_000
GRID_N = 512  # 512 x 512 cells
N_TRACKS = 120
N_CLASSES = 3


def _run(stats_fn, counts_fn, args):
    idx, values, labels, n_cells = args
    stats_fn(idx, values, n_cells)
    counts_fn(idx, labels, n_cells, N_CLASSES)


def run_reference(args):
    _run(kgrid.cell_statistics_reference, kgrid.cell_class_counts_reference, args)


def run_vectorized(args):
    _run(kgrid.cell_statistics_vectorized, kgrid.cell_class_counts_vectorized, args)


@pytest.fixture(scope="module")
def campaign_segments():
    """~1 M segments clustered along simulated ground tracks over the grid."""
    rng = np.random.default_rng(19)
    n_cells = GRID_N * GRID_N
    # Tracks cross the grid as straight lines; segments sample them densely,
    # so occupied cells hold runs of consecutive segments (realistic order).
    tracks = N_TRACKS
    per_track = N_POINTS // tracks
    cols_list = []
    rows_list = []
    for _ in range(tracks):
        t = np.linspace(0.0, 1.0, per_track)
        x0, x1 = rng.uniform(0, GRID_N, 2)
        y0, y1 = rng.uniform(0, GRID_N, 2)
        cols_list.append(np.clip(x0 + (x1 - x0) * t + rng.normal(0, 0.3, per_track), 0, GRID_N - 1e-9))
        rows_list.append(np.clip(y0 + (y1 - y0) * t + rng.normal(0, 0.3, per_track), 0, GRID_N - 1e-9))
    idx = (
        np.floor(np.concatenate(rows_list)).astype(np.int64) * GRID_N
        + np.floor(np.concatenate(cols_list)).astype(np.int64)
    )
    values = rng.normal(0.3, 0.15, idx.size)
    labels = rng.integers(0, N_CLASSES, idx.size)
    args = (idx, values, labels, n_cells)

    ref_stats = kgrid.cell_statistics_reference(idx, values, n_cells)
    vec_stats = kgrid.cell_statistics_vectorized(idx, values, n_cells)
    for r, v in zip(ref_stats, vec_stats):
        assert np.allclose(r, v, atol=1e-10, rtol=0.0, equal_nan=True)
    np.testing.assert_array_equal(
        kgrid.cell_class_counts_reference(idx, labels, n_cells, N_CLASSES),
        kgrid.cell_class_counts_vectorized(idx, labels, n_cells, N_CLASSES),
    )
    return args


def test_l3_gridding_reference(benchmark, campaign_segments):
    benchmark.pedantic(run_reference, args=(campaign_segments,), **ROUNDS)


def test_l3_gridding_vectorized(benchmark, campaign_segments):
    benchmark.pedantic(run_vectorized, args=(campaign_segments,), **ROUNDS)
