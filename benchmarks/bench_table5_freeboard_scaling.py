"""Benchmark / regeneration of Table V: scaled freeboard computation.

Mirrors the Table II benchmark for the freeboard map-reduce job: the real
job is executed and verified against the serial reference, and the calibrated
cluster model regenerates the paper's 8.54x / 15.68x speedup table.
"""

import numpy as np
from conftest import write_result

from repro.distributed.mapreduce import MapReduceEngine
from repro.distributed.speedup import SpeedupTable
from repro.evaluation.report import format_table
from repro.evaluation.tables import regenerate_table5
from repro.freeboard.freeboard import compute_freeboard
from repro.freeboard.parallel import parallel_freeboard


def test_table5_freeboard_mapreduce(benchmark, pipeline_outputs):
    """Time the map-reduce freeboard job on the classified 2 m segments."""
    name = sorted(pipeline_outputs.classified)[0]
    track = pipeline_outputs.classified[name]
    engine = MapReduceEngine(n_partitions=16, executor="serial")

    result, _ = benchmark(parallel_freeboard, track.segments, track.labels, engine)

    serial = compute_freeboard(track.segments, track.labels)
    np.testing.assert_allclose(result.freeboard_m, serial.freeboard_m, atol=1e-12)

    sweep = SpeedupTable("freeboard partitions")
    for executors, cores in ((1, 1), (1, 4), (2, 4), (4, 4)):
        slots = executors * cores
        engine = MapReduceEngine(n_partitions=slots, executor="serial")
        _, mr = parallel_freeboard(track.segments, track.labels, engine)
        sweep.add(f"{executors}x{cores}", slots, max(mr.total_seconds, 1e-6))

    rows = regenerate_table5()
    text = "\n\n".join(
        [
            format_table(rows, "Table V: PySpark-style IS2 freeboard computation scalability (modelled)"),
            format_table(sweep.rows(), "Measured in-process map-reduce sweep (single CPU)"),
        ]
    )
    write_result("table5_freeboard_scaling", text)
    print("\n" + text)

    assert rows[-1]["Speedup Load"] > 7.5
    assert rows[-1]["Speedup Reduce"] > 14.0
