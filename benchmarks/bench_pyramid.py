"""Reference-vs-vectorized timings for the tile-pyramid reduction kernels.

One serving-scale pyramid build is timed end to end: a 512 x 512 mosaic
layer (freeboard values with realistic NaN holes, segment-count weights)
reduced through its full overview stack down to a single tile — the
count-weighted mean/weight reduction plus the coverage reduction at every
level, i.e. exactly what :func:`repro.serve.pyramid.build_pyramid` runs per
variable when the query engine decodes a product.

The reference backend loops over output cells; the vectorized backend
reduces the four strided child planes at once.  The pair is asserted
equivalent (bit-identical) before timing, and
``benchmarks/check_regression.py`` holds the measured speedup against the
committed baseline (with a hard >= 3x acceptance floor for this kernel).

Run:  python -m pytest benchmarks/bench_pyramid.py --benchmark-json=pyr-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.kernels import pyramid as kpyr

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

GRID_N = 512  # 512 x 512 base cells


def _build(reduce_mean, reduce_coverage, layers):
    values, weights, coverage = layers
    while max(values.shape) > 1:
        values, weights = reduce_mean(values, weights)
        coverage = reduce_coverage(coverage)


def run_reference(layers):
    _build(kpyr.reduce_mean_reference, kpyr.reduce_coverage_reference, layers)


def run_vectorized(layers):
    _build(kpyr.reduce_mean_vectorized, kpyr.reduce_coverage_vectorized, layers)


@pytest.fixture(scope="module")
def mosaic_layers():
    """A mosaic-like base level: clustered coverage, NaN holes, count weights."""
    rng = np.random.default_rng(23)
    # Coverage clusters along tracks: smooth a sparse mask so occupied cells
    # form connected swaths the way granule footprints actually overlap.
    occupancy = rng.random((GRID_N, GRID_N)) < 0.35
    weights = np.where(occupancy, rng.integers(1, 40, (GRID_N, GRID_N)), 0).astype(float)
    values = np.where(occupancy, rng.normal(0.3, 0.15, (GRID_N, GRID_N)), np.nan)
    # Sparse cells below the min_segments floor: positive count, NaN value.
    sparse = occupancy & (rng.random((GRID_N, GRID_N)) < 0.1)
    values[sparse] = np.nan
    coverage = occupancy.astype(float)

    ref_v, ref_w = kpyr.reduce_mean_reference(values, weights)
    vec_v, vec_w = kpyr.reduce_mean_vectorized(values, weights)
    assert np.array_equal(ref_v, vec_v, equal_nan=True)
    assert np.array_equal(ref_w, vec_w)
    np.testing.assert_array_equal(
        kpyr.reduce_coverage_reference(coverage),
        kpyr.reduce_coverage_vectorized(coverage),
    )
    return values, weights, coverage


def test_pyramid_reduce_reference(benchmark, mosaic_layers):
    benchmark.pedantic(run_reference, args=(mosaic_layers,), **ROUNDS)


def test_pyramid_reduce_vectorized(benchmark, mosaic_layers):
    benchmark.pedantic(run_vectorized, args=(mosaic_layers,), **ROUNDS)
