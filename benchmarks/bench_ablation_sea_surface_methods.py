"""Ablation: which local sea-surface method is best against ground truth?

The paper selects the NASA ATBD formulation because it gives the smoothest
surface (Fig. 8a/9a).  With a simulated scene the true sea level is known, so
this ablation also measures each method's absolute error and bias — the
quantitative version of that design choice.
"""

import numpy as np
from conftest import write_result

from repro.evaluation.report import format_table
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SEA_SURFACE_METHODS, estimate_sea_surface


def test_ablation_sea_surface_methods(benchmark, pipeline_outputs):
    beam_name = sorted(pipeline_outputs.classified)[0]
    track = pipeline_outputs.classified[beam_name]
    seg = track.segments
    scene = pipeline_outputs.data.scene
    truth_sea_level = scene.sea_level(seg.x_m, seg.y_m)

    def evaluate_all_methods():
        results = {}
        for method in SEA_SURFACE_METHODS:
            estimate = estimate_sea_surface(
                seg.center_along_track_m,
                seg.height_mean_m,
                seg.height_error_m(),
                track.labels,
                method=method,
            )
            estimate = interpolate_missing_windows(estimate)
            surface = sea_surface_at(estimate, seg.center_along_track_m)
            results[method] = {
                "bias_m": float(np.nanmean(surface - truth_sea_level)),
                "mae_m": float(np.nanmean(np.abs(surface - truth_sea_level))),
                "smoothness_m": estimate.smoothness(),
            }
        return results

    results = benchmark(evaluate_all_methods)

    rows = [
        {
            "method": method,
            "bias (m)": round(stats["bias_m"], 3),
            "MAE vs true sea level (m)": round(stats["mae_m"], 3),
            "smoothness RMS (m)": round(stats["smoothness_m"], 4),
        }
        for method, stats in results.items()
    ]
    text = format_table(rows, "Ablation: local sea-surface estimation method (truth-referenced)")
    write_result("ablation_sea_surface_methods", text)
    print("\n" + text)

    # The minimum-elevation method is biased low (inflating freeboard);
    # the averaging-based methods are closer to the truth.
    assert results["minimum"]["bias_m"] <= results["average"]["bias_m"] + 1e-9
    assert results["average"]["mae_m"] <= results["minimum"]["mae_m"] + 1e-9
