"""Benchmark / regeneration of Table IV: Horovod-style distributed training.

Three parts:

1. a *real* synchronous data-parallel training run over in-process ranks
   (2 simulated GPUs) verifying that replicas stay synchronised and learning
   happens — this is the correctness path;
2. the benchmark clock times one full data-parallel step (per-rank gradients
   + ring all-reduce + update), the unit of work Horovod repeats;
3. the DGX-A100-calibrated timing model regenerates the paper's Table IV
   (280.72 s on one GPU down to 38.72 s on eight, 7.25x).
"""

import numpy as np
from conftest import write_result

from repro.config import LSTMConfig, TrainingConfig
from repro.distributed.ddp import DistributedTrainer
from repro.evaluation.report import format_table
from repro.evaluation.tables import regenerate_table4
from repro.ml.dataset import Dataset
from repro.ml.models import build_lstm_classifier
from repro.resampling.features import feature_matrix, sequence_windows


def _sequence_dataset(experiment_data):
    segments, labels = experiment_data.combined_segments_and_labels()
    X, _ = feature_matrix(segments, normalize=True)
    sequences = sequence_windows(X, 5)
    valid = labels >= 0
    return Dataset(sequences[valid], labels[valid])


def test_table4_distributed_training(benchmark, experiment_data):
    data = _sequence_dataset(experiment_data)

    def builder(rng=None):
        return build_lstm_classifier(
            LSTMConfig(dense_units=(32, 16), dropout=0.0),
            TrainingConfig(),
            rng=rng,
        )

    # Real 2-rank synchronous data-parallel training (correctness path).
    trainer = DistributedTrainer(builder, n_gpus=2, seed=0)
    subset = data.subset(np.arange(min(len(data), 2048)))
    result = trainer.train(subset, epochs=1, batch_size=32)
    for a, b in zip(trainer.replicas[0].get_weights(), trainer.replicas[1].get_weights()):
        np.testing.assert_allclose(a, b, atol=1e-10)

    # Benchmark one synchronous data-parallel step (2 ranks, batch 32 each).
    from repro.distributed.allreduce import ring_allreduce_average

    replicas = trainer.replicas
    X0, y0 = subset.X[:32], subset.y[:32]
    X1, y1 = subset.X[32:64], subset.y[32:64]

    def one_step():
        grads = [
            replicas[0].compute_gradients(X0, y0)[1],
            replicas[1].compute_gradients(X1, y1)[1],
        ]
        averaged = ring_allreduce_average(grads)
        for rank, replica in enumerate(replicas):
            replica.apply_gradients(averaged[rank])
        return averaged

    benchmark(one_step)

    # Regenerate Table IV with the calibrated timing model.
    rows = regenerate_table4()
    fleet_rows = trainer.scaling_table(
        single_gpu_total_s=280.72, n_samples=3222, epochs=20, batch_size=32
    )
    text = "\n\n".join(
        [
            format_table(rows, "Table IV: distributed DL training on the simulated DGX A100 (modelled)"),
            format_table(
                [r.as_dict() for r in fleet_rows],
                "Same table derived from the trainer's own model builder",
            ),
        ]
    )
    write_result("table4_distributed_training", text)
    print("\n" + text)

    assert rows[-1]["Speedup"] > 6.5
    assert result.history.loss[-1] <= result.history.loss[0] + 1e-6
