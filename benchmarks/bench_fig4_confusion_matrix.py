"""Benchmark / regeneration of Fig. 4: the sea-ice classification confusion matrix."""

import numpy as np
from conftest import write_result

from repro.evaluation.figures import figure4_confusion_matrix
from repro.evaluation.report import format_table
from repro.ml.metrics import classification_report


def test_fig4_confusion_matrix(benchmark, pipeline_outputs):
    classifier = pipeline_outputs.classifier
    fig = figure4_confusion_matrix(classifier)

    # Benchmark the metric computation itself on the held-out predictions.
    cm = np.array(fig["confusion_counts"])
    y_true = np.repeat(np.arange(3), cm.sum(axis=1))
    y_pred = np.concatenate([np.repeat(np.arange(3), cm[i]) for i in range(3)])
    benchmark(classification_report, y_true, y_pred, 3)

    rows = [
        {
            "true class": name,
            "thick_ice": fig["confusion_normalized"][i][0],
            "thin_ice": fig["confusion_normalized"][i][1],
            "open_water": fig["confusion_normalized"][i][2],
            "per-class accuracy (%)": fig["per_class_accuracy_percent"][i],
        }
        for i, name in enumerate(fig["class_names"])
    ]
    text = format_table(rows, "Fig. 4: row-normalised confusion matrix (LSTM, held-out 20%)")
    text += f"\n\nOverall accuracy: {fig['overall_accuracy_percent']:.2f} %"
    write_result("fig4_confusion_matrix", text)
    print("\n" + text)

    # Shape: thick ice (the dominant class) is classified best, as in the paper.
    per_class = fig["per_class_accuracy_percent"]
    assert per_class[0] > 85.0
    assert fig["overall_accuracy_percent"] > 80.0
