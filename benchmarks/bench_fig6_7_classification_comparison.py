"""Benchmark / regeneration of Figs. 6-7: ATL03 vs ATL07 classification density.

The paper's Figs. 6 and 7 plot the per-segment surface classes of the 2 m
ATL03 product against the emulated ATL07 product for two tracks, showing the
ATL03 product is far denser.  This benchmark regenerates the density and
class-fraction comparison and times the full-track inference pass that
produces the ATL03 classification.
"""

from conftest import write_result

from repro.classification.pipeline import InferencePipeline
from repro.config import CLASS_NAMES
from repro.evaluation.figures import figure6_7_classification_comparison
from repro.evaluation.report import format_table


def test_fig6_7_classification_comparison(benchmark, pipeline_outputs):
    beam_name = sorted(pipeline_outputs.classified)[0]
    beam = pipeline_outputs.data.granule.beam(beam_name)
    pipeline = InferencePipeline(pipeline_outputs.classifier)

    # Benchmark: classify the whole beam (resample -> features -> LSTM).
    benchmark(pipeline.classify_beam, beam)

    comparison = figure6_7_classification_comparison(pipeline_outputs, beam_name)
    fractions = comparison.class_fractions()
    rows = [
        {
            "product": "ATL03 (2 m, this work)",
            "segments": comparison.atl03_labels.size,
            "points/km": round(comparison.atl03_points_per_km, 1),
            **{CLASS_NAMES[c]: round(fractions["atl03"].get(c, 0.0), 3) for c in range(3)},
        },
        {
            "product": "ATL07 (150-photon baseline)",
            "segments": comparison.atl07_labels.size,
            "points/km": round(comparison.atl07_points_per_km, 1),
            **{CLASS_NAMES[c]: round(fractions["atl07"].get(c, 0.0), 3) for c in range(3)},
        },
    ]
    text = format_table(rows, f"Figs. 6-7: classification comparison along track {comparison.track_name}")
    text += f"\n\nPoint-density ratio (ATL03 / ATL07): {comparison.density_ratio:.1f}x"
    write_result("fig6_7_classification_comparison", text)
    print("\n" + text)

    # The headline shape: the 2 m product is at least an order of magnitude denser.
    assert comparison.density_ratio > 8.0
