"""Live-ingest benchmarks: incremental merge + dirty-tile rebuild vs full rebuild.

Times what one newly arrived granule costs a serving campaign, per kernel
backend, in the two regimes the ingest tier exists to separate:

* **incremental**: fold the granule into the online
  :class:`~repro.l3.merge.MosaicAccumulator`, snapshot, and rebuild only
  the pyramid tiles overlapping its footprint with the
  :class:`~repro.serve.live.IncrementalPyramidBuilder` — the
  ``IngestService`` hot path;
* **full**: what serving had to do before this tier existed — re-run the
  batch :meth:`~repro.l3.processor.Level3Processor.mosaic` over the whole
  fleet and rebuild the entire pyramid from scratch.

Both paths produce byte-identical products (tested in
``tests/test_l3_merge.py`` / ``tests/test_ingest_service.py``), so the
ratio of their round minima is pure overhead saved.
``benchmarks/check_regression.py`` pairs the two into an
``ingest_speedup_<backend>`` entry and holds the ratio above a hard 3x
floor — if incremental ingest stops being several times cheaper than a
full rebuild, the dirty-cell accounting has regressed into full-grid work.

Run:  python -m pytest benchmarks/bench_ingest.py --benchmark-json=ingest-bench.json
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import kernels
from repro.config import ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.merge import MosaicAccumulator
from repro.l3.processor import Level3Processor
from repro.l3.product import Level3Grid
from repro.serve.live import IncrementalPyramidBuilder
from repro.serve.pyramid import build_pyramid

ROUNDS = dict(rounds=5, iterations=1, warmup_rounds=1)

SERVE = ServeConfig(tile_size=64)
GRID = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=768, ny=512)
N_FLEET = 6
#: Footprint of one arriving granule (cells) — a swath patch, not the scene.
PATCH = (slice(128, 160), slice(192, 224))


def _granule(granule_id: str, rng: np.random.Generator, footprint=None) -> Level3Grid:
    ny, nx = GRID.shape
    n_segments = rng.integers(1, 40, size=(ny, nx)).astype(np.int64)
    if footprint is None:
        n_segments[rng.random((ny, nx)) < 0.5] = 0
    else:
        mask = np.zeros((ny, nx), dtype=bool)
        mask[footprint] = True
        n_segments[~mask] = 0
    observed = n_segments > 0
    n_freeboard = np.where(observed, rng.integers(1, 10, size=(ny, nx)), 0).astype(
        np.int64
    )

    def masked() -> np.ndarray:
        return np.where(observed, rng.normal(0.3, 0.15, size=(ny, nx)), np.nan)

    thick = rng.random((ny, nx))
    thin = rng.random((ny, nx)) * (1.0 - thick)
    return Level3Grid(
        grid=GRID,
        variables={
            "n_segments": n_segments,
            "n_freeboard_segments": n_freeboard,
            "freeboard_mean": masked(),
            "freeboard_median": masked(),
            "thickness_mean": masked(),
            "class_fraction_thick_ice": np.where(observed, thick, np.nan),
            "class_fraction_thin_ice": np.where(observed, thin, np.nan),
            "class_fraction_open_water": np.where(observed, 1.0 - thick - thin, np.nan),
        },
        metadata={"granule_id": granule_id, "kind": "granule"},
    )


@pytest.fixture(scope="module")
def fleet():
    rng = np.random.default_rng(9)
    granules = [_granule(f"g{i:03d}", rng) for i in range(N_FLEET)]
    # One localized arrival per benchmark round (distinct ids: the
    # accumulator rejects re-ingesting a granule it already merged).
    arrivals = [_granule(f"new{i:03d}", rng, footprint=PATCH) for i in range(16)]
    return granules, arrivals


def _bench_incremental(benchmark, fleet, backend: str) -> None:
    granules, arrivals = fleet
    with kernels.use_backend(backend):
        accumulator = MosaicAccumulator(GRID)
        for granule in granules:
            accumulator.add(granule)
        seed = accumulator.snapshot()
        builder = IncrementalPyramidBuilder(
            build_pyramid(seed, serve=SERVE), serve=SERVE
        )
        queue = iter(arrivals)

        def ingest_one() -> None:
            granule = next(queue)
            dirty = accumulator.add(granule)
            builder.update(accumulator.snapshot(), dirty)

        benchmark.pedantic(ingest_one, **ROUNDS)


def _bench_full(benchmark, fleet, backend: str) -> None:
    granules, arrivals = fleet
    with kernels.use_backend(backend):
        processor = Level3Processor(GRID)
        fleet_plus_one = granules + [arrivals[0]]

        def rebuild_everything() -> None:
            build_pyramid(processor.mosaic(fleet_plus_one), serve=SERVE)

        benchmark.pedantic(rebuild_everything, **ROUNDS)


def test_ingest_incremental_reference(benchmark, fleet):
    _bench_incremental(benchmark, fleet, "reference")


def test_ingest_incremental_vectorized(benchmark, fleet):
    _bench_incremental(benchmark, fleet, "vectorized")


def test_ingest_full_reference(benchmark, fleet):
    _bench_full(benchmark, fleet, "reference")


def test_ingest_full_vectorized(benchmark, fleet):
    _bench_full(benchmark, fleet, "vectorized")
