"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable builds (``pip install -e .``) cannot build an editable
wheel.  This shim lets pip fall back to the legacy ``setup.py develop`` path
(``pip install -e . --no-use-pep517 --no-build-isolation``); all metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
