#!/usr/bin/env python
"""Auto-labeling workflow: from coincident S2 imagery to labelled IS2 segments.

Reproduces the paper's Section III.A data-curation stage in isolation:

* find the coincident IS2/S2 pair (Table I rule),
* segment the S2 scene with the thin-cloud/shadow-filtered color method,
* estimate the sea-ice drift and shift the image,
* transfer labels to the 2 m segments (serial and map-reduce parallel),
* apply the transition/cloud correction and report label quality against the
  simulator's ground truth.

Run:  python examples/autolabel_workflow.py
"""

import numpy as np

from repro.atl03.simulator import simulate_granule
from repro.distributed.mapreduce import MapReduceEngine
from repro.evaluation.report import format_table
from repro.labeling.alignment import apply_shift, estimate_drift
from repro.labeling.autolabel import auto_label_segments
from repro.labeling.manual import correct_labels
from repro.labeling.pairs import TABLE_I_PAIRS, find_coincident_pairs, table_i_rows
from repro.labeling.parallel import parallel_autolabel
from repro.resampling.window import resample_fixed_window
from repro.sentinel2.scene import render_scene
from repro.sentinel2.segmentation import segment_image
from repro.surface.scene import SceneConfig, generate_scene


def main() -> None:
    print(format_table(table_i_rows(), "Table I: the paper's coincident IS2/S2 pairs"))
    matches = find_coincident_pairs(
        [p.is2_time for p in TABLE_I_PAIRS], [p.s2_time for p in TABLE_I_PAIRS]
    )
    print(f"\nTemporal matcher reproduces {len(matches)}/8 pairs within the 80-minute window.")

    # --- Simulated data curation --------------------------------------------
    scene = generate_scene(SceneConfig(width_m=15_000.0, height_m=15_000.0, seed=4))
    granule = simulate_granule(scene, n_beams=1, rng=5)
    beam = granule.beam(granule.beam_names[0])
    segments = resample_fixed_window(beam)
    print(f"\nSimulated beam {beam.name}: {beam.n_photons} photons -> {segments.n_segments} 2 m segments")

    true_drift = (250.0, 180.0)
    image = render_scene(scene, drift_offset_m=true_drift, rng=6)
    segmentation = segment_image(image)
    print(f"S2 scene segmented: cloud fraction {segmentation.cloud_fraction:.1%}, "
          f"shadow fraction {segmentation.shadow_fraction:.1%}")

    drift = estimate_drift(image, segmentation.class_map, segments.x_m, segments.y_m, segments.height_mean_m)
    print(f"Injected drift {true_drift}, estimated correction ({drift.dx_m:.0f}, {drift.dy_m:.0f}) m "
          f"[{drift.direction or 'none'}]")
    aligned = apply_shift(image, drift)

    # --- Label transfer: serial and parallel --------------------------------
    serial = auto_label_segments(segments, aligned, segmentation)
    engine = MapReduceEngine(n_partitions=8, executor="serial")
    parallel, mr = parallel_autolabel(segments, aligned, segmentation, engine)
    assert np.array_equal(serial.labels, parallel.labels)
    print(f"\nMap-reduce auto-labeling over {mr.n_partitions} partitions: "
          f"load {mr.load_seconds * 1e3:.1f} ms, map {mr.map_seconds * 1e3:.1f} ms, "
          f"reduce {mr.reduce_seconds * 1e3:.1f} ms (identical to the serial result)")

    corrected, report = correct_labels(segments, serial)
    truth = segments.truth_class
    valid_auto = (serial.labels >= 0) & (truth >= 0)
    valid_corr = (corrected >= 0) & (truth >= 0)
    print("\nLabel quality against the simulator ground truth:")
    print(f"  auto-labels      : {(serial.labels[valid_auto] == truth[valid_auto]).mean():.1%}")
    print(f"  after correction : {(corrected[valid_corr] == truth[valid_corr]).mean():.1%} "
          f"({report.n_relabelled} relabelled, {report.n_dropped} dropped)")


if __name__ == "__main__":
    main()
