#!/usr/bin/env python
"""Freeboard retrieval: local sea surface methods and the 2 m freeboard product.

Reproduces the paper's Section III.D in isolation on a classified track:

* estimate the local sea surface with all four methods (minimum, average,
  nearest-minimum and the NASA ATBD weighted-lead equations) in 10 km
  sliding windows,
* interpolate windows without open water,
* compute the 2 m freeboard and compare it against the emulated ATL07/ATL10
  baselines and the simulator's ground truth.

Run:  python examples/freeboard_retrieval.py
"""

import numpy as np

from repro.atl03.simulator import simulate_granule
from repro.evaluation.report import format_table
from repro.freeboard.comparison import compare_freeboards
from repro.freeboard.freeboard import compute_freeboard
from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SEA_SURFACE_METHODS, estimate_sea_surface
from repro.products.atl07 import generate_atl07
from repro.products.atl10 import generate_atl10
from repro.resampling.window import resample_fixed_window
from repro.surface.scene import SceneConfig, generate_scene


def main() -> None:
    scene = generate_scene(
        SceneConfig(
            width_m=25_000.0, height_m=25_000.0,
            open_water_fraction=0.14, thin_ice_fraction=0.18, thick_ice_fraction=0.68,
            n_leads=16, seed=9,
        )
    )
    granule = simulate_granule(scene, n_beams=1, track_length_m=20_000.0, rng=10)
    beam = granule.beam(granule.beam_names[0])
    segments = resample_fixed_window(beam)
    labels = segments.truth_class  # use ground-truth classes to isolate the freeboard stage
    truth_sea_level = scene.sea_level(segments.x_m, segments.y_m)
    truth_freeboard = scene.freeboard(segments.x_m, segments.y_m)

    # --- Sea-surface method comparison (the paper's Figs. 8/9) ---------------
    rows = []
    for method in SEA_SURFACE_METHODS:
        estimate = interpolate_missing_windows(
            estimate_sea_surface(
                segments.center_along_track_m,
                segments.height_mean_m,
                segments.height_error_m(),
                labels,
                method=method,
            )
        )
        surface = sea_surface_at(estimate, segments.center_along_track_m)
        rows.append(
            {
                "method": method,
                "windows": estimate.n_windows,
                "bias vs true sea level (m)": round(float(np.nanmean(surface - truth_sea_level)), 3),
                "MAE (m)": round(float(np.nanmean(np.abs(surface - truth_sea_level))), 3),
                "smoothness RMS (m)": round(estimate.smoothness(), 4),
            }
        )
    print(format_table(rows, "Local sea-surface methods over 10 km sliding windows"))

    # --- Freeboard and baseline comparison (the paper's Figs. 10/11) ---------
    freeboard = compute_freeboard(segments, labels, method="nasa")
    atl07 = generate_atl07(beam)
    atl10 = generate_atl10(atl07)
    comparison = compare_freeboards(
        freeboard, atl10.along_track_m, atl10.freeboard_m, baseline_sea_surface_m=atl10.sea_surface_m
    )

    ice = freeboard.ice_mask()
    rmse = float(np.sqrt(np.nanmean((freeboard.freeboard_m[ice] - truth_freeboard[ice]) ** 2)))
    print(f"\n2 m freeboard product: {freeboard.n_segments} segments, "
          f"mean ice freeboard {freeboard.mean_freeboard_m():.3f} m, "
          f"RMSE vs truth {rmse:.3f} m")
    print(f"ATL10 baseline: {atl10.n_segments} segments, mean freeboard {atl10.mean_freeboard_m():.3f} m")
    print("\nComparison summary:")
    for key, value in comparison.as_dict().items():
        print(f"  {key:38s}: {value}")


if __name__ == "__main__":
    main()
