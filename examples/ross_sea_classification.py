#!/usr/bin/env python
"""Ross Sea classification: LSTM vs MLP vs decision tree on a multi-beam granule.

Reproduces the paper's model comparison (Table III / Fig. 4) plus the
operational decision-tree baseline, on a three-strong-beam simulated granule:

* auto-label the 2 m segments of every beam from a coincident S2 scene,
* train the LSTM and MLP classifiers on the combined labelled segments,
* fit the NASA-style decision tree on the same features,
* evaluate all three on the held-out data and on the full track against the
  simulator's ground truth.

Run:  python examples/ross_sea_classification.py
"""

import numpy as np

from repro.classification.decision_tree import DecisionTreeClassifier
from repro.classification.pipeline import InferencePipeline, train_classifier
from repro.config import CLASS_NAMES
from repro.evaluation.report import format_table
from repro.ml.metrics import classification_report
from repro.resampling.features import FEATURE_NAMES, extract_features
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig, prepare_experiment_data


def main() -> None:
    config = ExperimentConfig(
        scene=SceneConfig(
            width_m=18_000.0, height_m=18_000.0,
            open_water_fraction=0.12, thin_ice_fraction=0.20, thick_ice_fraction=0.68,
            seed=12,
        ),
        n_beams=3,
        epochs=5,
        seed=12,
    )
    print("Preparing data: 3 strong beams, S2 auto-labeling, drift correction...")
    data = prepare_experiment_data(config)
    segments, labels = data.combined_segments_and_labels()
    print(f"Labelled training segments: {int((labels >= 0).sum())} of {segments.n_segments}")

    # --- Train the deep models -----------------------------------------------
    rows = []
    classifiers = {}
    for kind, display in (("mlp", "MLP"), ("lstm", "LSTM")):
        clf = train_classifier(segments, labels, kind=kind, epochs=config.epochs, rng=config.seed)
        classifiers[kind] = clf
        rows.append(clf.report.as_row(display))

    # --- Decision-tree baseline on the same features --------------------------
    features = extract_features(segments)
    X_raw = np.column_stack([features[name] for name in FEATURE_NAMES])
    labelled = labels >= 0
    tree = DecisionTreeClassifier()
    tree_pred = tree.fit_predict(X_raw[labelled], labels[labelled])
    tree_report = classification_report(labels[labelled], tree_pred, n_classes=3)
    rows.insert(0, tree_report.as_row("Decision tree (ATL07-style)"))

    print()
    print(format_table(rows, "Table III equivalent: classifier comparison on auto-labelled data"))

    # --- Confusion matrix of the best model (Fig. 4) ---------------------------
    lstm = classifiers["lstm"]
    norm = lstm.report.normalized_confusion()
    cm_rows = [
        {"true class": CLASS_NAMES[i], **{CLASS_NAMES[j]: round(norm[i, j], 3) for j in range(3)}}
        for i in range(3)
    ]
    print()
    print(format_table(cm_rows, "Fig. 4 equivalent: LSTM row-normalised confusion matrix"))

    # --- Whole-granule inference against the simulator truth -------------------
    pipeline = InferencePipeline(lstm)
    print("\nWhole-track accuracy against the simulator ground truth:")
    for name, track in pipeline.classify_granule(data.granule).items():
        truth = track.segments.truth_class
        valid = truth >= 0
        accuracy = (track.labels[valid] == truth[valid]).mean()
        print(f"  beam {name}: {accuracy:.1%} over {track.n_segments} segments")


if __name__ == "__main__":
    main()
