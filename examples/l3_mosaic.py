#!/usr/bin/env python
"""Level-3 products: campaign -> gridded composite -> saved product -> reload.

Demonstrates the `repro.l3` subsystem end to end:

1. run a small two-granule campaign (cloud-fraction scenario grid);
2. grid every granule and mosaic the fleet with `CampaignRunner.to_l3` —
   per-cell freeboard/thickness statistics, class fractions, granule counts
   and coverage on the shared polar stereographic metre grid;
3. write the mosaic as a self-describing product (npz arrays + JSON
   metadata with the grid definition, content fingerprint and kernel
   backend), reload it, and verify the round trip is **byte-identical**;
4. regenerate the grid-map figure data from the *reloaded* product;
5. change only the grid resolution and re-run warm — the campaign itself is
   pure cache; only the `grid_granule`/`mosaic_campaign` stages re-execute.

Run:  python examples/l3_mosaic.py

This example is also the CI smoke test for the Level-3 layer (both kernel
backends), so it uses a small scene and the fast MLP classifier.
"""

import shutil
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import L3GridConfig
from repro.evaluation import figure_l3_grid_map, format_table, l3_coverage_table
from repro.l3 import read_level3, write_level3
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=1_000.0),
)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-l3-"))
    try:
        config = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=str(workdir / "cache"),
        )

        # 1-2. Campaign and Level-3 products.
        runner = CampaignRunner(config)
        l3 = runner.to_l3(runner.run())
        print(f"\n{l3.summary()}")

        # 3. Self-describing product file, reloaded bit-identically.
        npz_path, json_path = write_level3(l3.mosaic, workdir / "ross_sea_mosaic")
        reloaded = read_level3(workdir / "ross_sea_mosaic")
        for name, array in l3.mosaic.variables.items():
            assert reloaded.variables[name].tobytes() == array.tobytes(), name
        assert reloaded.grid == l3.mosaic.grid
        print(f"\nwrote {npz_path.name} + {json_path.name}; reload is byte-identical")
        print(f"  fingerprint    : {reloaded.metadata['fingerprint']}")
        print(f"  kernel backend : {reloaded.metadata['kernel_backend']}")

        # 4. Grid-map figure data from the reloaded product.
        series = figure_l3_grid_map(reloaded)
        print(
            f"  grid map       : {series['shape'][0]}x{series['shape'][1]} cells at "
            f"{series['cell_size_m']:.0f} m, coverage {series['coverage_percent']:.1f}%"
        )

        # 5. Grid-resolution-only change: the campaign is pure cache; only
        #    the Level-3 stages re-run.
        finer = CampaignConfig(
            base=replace(BASE, l3=L3GridConfig(cell_size_m=500.0)),
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=str(workdir / "cache"),
        )
        finer_runner = CampaignRunner(finer)
        result = finer_runner.run()
        assert result.stage_misses == (), result.stage_misses
        finer_l3 = finer_runner.to_l3(result)
        missed = sorted({key.rsplit("-", 1)[0] for key in finer_l3.stage_misses})
        assert missed == ["grid_granule", "mosaic_campaign"], missed
        print(
            f"\nafter a 1000 m -> 500 m resolution change, only {missed} re-ran "
            f"({finer_l3.mosaic.grid.shape[0]}x{finer_l3.mosaic.grid.shape[1]} cells now)"
        )
        print(
            format_table(
                l3_coverage_table([finer_l3.mosaic]), title="Finer mosaic coverage"
            )
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
