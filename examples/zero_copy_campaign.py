#!/usr/bin/env python
"""Zero-copy hot paths: shared-memory fan-out + memory-mapped products.

Demonstrates the two zero-copy tiers of this PR end to end:

1. the same small campaign fleet runs through the process executor twice —
   once with the shared-memory task transport (``use_shm=True``, the
   default: arrays are published once into ``/dev/shm`` segments and
   workers attach read-only views) and once with the legacy pickled
   payloads — and the science is **bit-for-bit identical** either way,
   only the wall time moves;
2. the campaign's Level-3 products are served twice — from the classic
   ``npz`` archives and from the ``raw`` flat-blob layout, where the query
   engine memory-maps the blob and a cold zoom-0 tile touches only its own
   window of pages instead of inflating the whole archive — and every
   served tile is byte-identical between the two layouts;
3. after both stacks shut down, no ``repro_shm_*`` segment survives in
   ``/dev/shm`` (the store's unlink-on-close contract).

Run:  python examples/zero_copy_campaign.py

This example is also the CI smoke test for the zero-copy tier (both
kernel backends), so it uses a small scene and the fast MLP classifier.
"""

import shutil
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import L3GridConfig, ServeConfig
from repro.distributed.shm import SHM_PREFIX
from repro.serve import TileRequest
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=250.0),
    serve=ServeConfig(tile_size=8),
)

GRID = {"cloud_fraction": (0.1, 0.35)}


def _shm_segments() -> set[str]:
    dev_shm = Path("/dev/shm")
    if not dev_shm.is_dir():
        return set()
    return {p.name for p in dev_shm.glob(f"{SHM_PREFIX}*")}


def _campaign(use_shm: bool) -> CampaignConfig:
    return CampaignConfig(
        base=BASE,
        grid=GRID,
        seed=41,
        n_workers=2,
        executor="process",
        use_shm=use_shm,
    )


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    segments_before = _shm_segments()
    workdir = Path(tempfile.mkdtemp(prefix="repro-zero-copy-"))
    try:
        # 1. The same fleet, two transports.  use_shm is an execution knob:
        #    it is excluded from the campaign fingerprint, and the results
        #    must be bit-for-bit identical.
        results, walls = {}, {}
        for label, use_shm in (("shm", True), ("pickled", False)):
            start = time.perf_counter()
            with CampaignRunner(_campaign(use_shm)) as runner:
                results[label] = runner.run()
            walls[label] = time.perf_counter() - start
        shm_run, pickled_run = results["shm"], results["pickled"]
        assert shm_run.fingerprint == pickled_run.fingerprint
        for a, b in zip(shm_run.granules, pickled_run.granules):
            for beam in a.products.freeboard:
                np.testing.assert_array_equal(
                    a.products.freeboard[beam].freeboard_m,
                    b.products.freeboard[beam].freeboard_m,
                )
        np.testing.assert_array_equal(
            shm_run.metrics.confusion, pickled_run.metrics.confusion
        )
        print(
            f"\n{shm_run.n_granules}-granule fleet, 2 process workers: "
            f"shm fan-out {walls['shm']:.2f}s vs pickled {walls['pickled']:.2f}s "
            f"— products bit-identical"
        )

        # 2. Serve the same products from both on-disk layouts.  The raw
        #    layout answers cold zoom-0 tiles from a memory-mapped window;
        #    npz inflates the archive and builds the pyramid.  Same bytes.
        responses = {}
        for layout in ("npz", "raw"):
            serve = replace(BASE.serve, product_format=layout)
            config = replace(_campaign(True), base=replace(BASE, serve=serve))
            with CampaignRunner(config) as runner:
                with runner.serve(str(workdir / f"products-{layout}")) as handle:
                    request = TileRequest(
                        bbox=handle.catalog.extent(),
                        variable="freeboard_mean",
                        zoom=0,
                    )
                    responses[layout] = handle.query(request)
        from_npz, from_raw = responses["npz"], responses["raw"]
        assert set(from_raw.tiles) == set(from_npz.tiles)
        for key in from_npz.tiles:
            assert from_raw.tiles[key].tobytes() == from_npz.tiles[key].tobytes()
            assert not from_raw.tiles[key].flags.writeable  # served read-only
        print(
            f"served {from_raw.n_tiles} tiles from the raw mmap layout, "
            f"byte-identical to the npz decode path"
        )

        # 3. Nothing leaked: every shared segment was unlinked on close.
        leaked = _shm_segments() - segments_before
        assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
        print("no shared-memory segments leaked")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
