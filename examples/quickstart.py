#!/usr/bin/env python
"""Quickstart: run the complete ATL03 sea-ice workflow on a small scene.

This walks the paper's Fig. 1 end to end on simulated data:

1. generate a Ross Sea ice scene and simulate an ATL03 granule over it,
2. render a coincident Sentinel-2 acquisition, segment it, correct drift and
   auto-label the 2 m segments,
3. train the LSTM classifier,
4. classify the track and retrieve the local sea surface and freeboard,
5. compare against the emulated ATL07/ATL10 baselines.

Run:  python examples/quickstart.py
"""

from repro.evaluation.figures import figure10_11_freeboard_comparison
from repro.evaluation.report import format_table
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig, run_end_to_end


def main() -> None:
    config = ExperimentConfig(
        scene=SceneConfig(
            width_m=15_000.0,
            height_m=15_000.0,
            open_water_fraction=0.12,
            thin_ice_fraction=0.18,
            thick_ice_fraction=0.70,
        ),
        epochs=5,
        seed=0,
    )
    print("Running the end-to-end workflow (scene -> ATL03 -> auto-label -> LSTM -> freeboard)...")
    outputs = run_end_to_end(config)

    drift = outputs.data.drift
    if drift is not None:
        print(f"\nEstimated S2 drift correction: {drift.distance_m:.0f} m {drift.direction or '(none)'}")

    print("\nClassifier evaluation (held-out 20 % of the auto-labelled segments):")
    print(format_table([outputs.classifier.report.as_row("LSTM")]))

    beam = sorted(outputs.freeboard)[0]
    freeboard = outputs.freeboard[beam]
    atl07 = outputs.atl07[beam]
    print(f"\nBeam {beam}:")
    print(f"  2 m segments classified : {freeboard.n_segments}")
    print(f"  mean ice freeboard      : {freeboard.mean_freeboard_m():.3f} m")
    print(f"  ATL07 baseline segments : {atl07.n_segments} (mean length {atl07.mean_segment_length_m():.1f} m)")

    comparison = figure10_11_freeboard_comparison(outputs, beam)["comparison"]
    print("\nATL03 (this work) vs ATL10 baseline:")
    for key, value in comparison.items():
        print(f"  {key:38s}: {value}")


if __name__ == "__main__":
    main()
