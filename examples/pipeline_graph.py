#!/usr/bin/env python
"""Stage-graph pipeline: composable stages, stage-granular caching, partial re-runs.

Demonstrates the `repro.pipeline` engine that powers both `run_end_to_end`
and the campaign runner:

1. print the Fig. 1 stage graph (stages, inputs, config slices);
2. run the full graph cold with a content-addressed stage cache;
3. re-run warm — every stage is a cache hit, nothing executes;
4. change *only* the sea-surface method and re-run — curation, training and
   classification are reused from cache; only the stages downstream of the
   sea surface (sea_surface -> freeboard -> atl07/atl10 -> metrics)
   recompute.  This partial recomputation is what makes parameter sweeps
   cheap: the dominant cost (curation + training) is paid once.

Run:  python examples/pipeline_graph.py

This example is also the CI smoke test for the pipeline layer, so it uses a
small scene and the fast MLP classifier.
"""

import shutil
import tempfile
import time
from dataclasses import replace

from repro.config import SeaSurfaceConfig
from repro.pipeline import GraphRunner, StageCache, default_graph
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

TARGETS = ("classifier", "freeboard", "atl07", "atl10", "granule_metrics")


def run_and_report(runner: GraphRunner, config: ExperimentConfig, label: str):
    start = time.perf_counter()
    result = runner.run(config, targets=TARGETS)
    elapsed = time.perf_counter() - start
    executed = ", ".join(result.executed_stages) or "(none — pure cache)"
    print(f"\n{label}: {elapsed:.2f}s")
    print(f"  stages executed : {executed}")
    print(f"  stage cache hits: {len(result.cache_hits)}")
    return result


def main() -> None:
    graph = default_graph()
    print("The Fig. 1 workflow as a stage graph (topological order):")
    for row in graph.describe():
        inputs = ", ".join(row["inputs"]) or "(source)"
        config = ", ".join(row["config"]) or "-"
        fan = "  [fan-out]" if row["fan_out"] else ""
        print(f"  {row['stage']:<12} <- {inputs:<44} config: {config}{fan}")

    config = ExperimentConfig(
        scene=SceneConfig(
            width_m=6_000.0,
            height_m=6_000.0,
            open_water_fraction=0.12,
            thin_ice_fraction=0.18,
            thick_ice_fraction=0.70,
            n_leads=8,
        ),
        epochs=2,
        model_kind="mlp",  # fast demo model; use "lstm" for the paper's classifier
        seed=7,
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-pipeline-")
    try:
        runner = GraphRunner(default_graph(), cache=StageCache(cache_dir))

        cold = run_and_report(runner, config, "Cold run (everything computes)")
        warm = run_and_report(runner, config, "Warm re-run (same config)")
        assert warm.executed_stages == ()

        changed = replace(config, sea_surface=SeaSurfaceConfig(method="average"))
        partial = run_and_report(
            runner, changed, "Sea-surface method changed (partial re-run)"
        )
        assert set(partial.executed_stages) == {
            "sea_surface", "freeboard", "atl07", "atl10", "metrics"
        }, partial.executed_stages

        beam = sorted(cold.value("freeboard"))[0]
        nasa = cold.value("freeboard")[beam].mean_freeboard_m()
        avg = partial.value("freeboard")[beam].mean_freeboard_m()
        print(
            f"\nMean freeboard ({beam}): nasa={nasa:.3f} m, average={avg:.3f} m — "
            "different sea-surface methods, one shared set of curated artifacts."
        )
        print("\nPartial re-run OK: curation, training and inference came from cache.")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
