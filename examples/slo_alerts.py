#!/usr/bin/env python
"""SLO burn-rate alerting: outage -> page -> shed -> recovery, no real time.

Drives the serve tier through a full alert lifecycle entirely on the
virtual clock:

1. declare an availability SLO (99.9% of requests admitted) over the
   counters the router already emits — no new instrumentation;
2. saturate a single-shard router with a 2x open-loop burst: admission
   control sheds the overflow immediately (the shed *is* the failure mode
   the SLO watches, and also what keeps the served requests fast);
3. the fast burn-rate window fires at the next evaluator tick — the
   ``HealthMonitor`` publishes the v2 dashboard carrying the firing alert,
   the overspent error budget and the ``router.shed`` events whose trace
   ids join back to the shedding ``router.request`` spans;
4. traffic returns to sustainable rates, the shed rate drops to zero, and
   the alert resolves with hysteresis once the burn falls below half the
   threshold.

Every timestamp is exact virtual time — the whole story, outage to
resolution, runs in milliseconds of wall clock.

Run:  python examples/slo_alerts.py

This example is also the CI smoke test for the SLO engine (both kernel
backends).
"""

import asyncio
import json
import shutil
import tempfile
from pathlib import Path

from repro import kernels
from repro.config import RouterConfig, ServeConfig, SloConfig
from repro.obs import HealthMonitor, Obs, SloEvaluator, availability_slo
from repro.serve import TileRequest
from repro.serve.catalog import CatalogEntry
from repro.serve.clock import VirtualClock
from repro.serve.query import TileResponse
from repro.serve.router import RequestRouter, RouterOverloadedError
from repro.serve.shard import ShardedCatalog

SERVE = ServeConfig(tile_size=8, tile_cache_size=64)
SERVICE_S = 0.25  # virtual seconds per underlying tile build


def make_router(obs: Obs, clock: VirtualClock) -> RequestRouter:
    entry = CatalogEntry(
        base_path="/products/demo",
        kind="mosaic",
        fingerprint="fp-demo",
        granule_ids=("g000",),
        variables=("freeboard_mean",),
        servable=("freeboard_mean",),
        x_min_m=0.0,
        y_min_m=0.0,
        x_max_m=4800.0,
        y_max_m=3200.0,
        cell_size_m=100.0,
        shape=(32, 48),
    )

    async def execute(shard, request: TileRequest) -> TileResponse:
        await clock.sleep(SERVICE_S)
        return TileResponse(
            request=request,
            product="demo",
            zoom=request.zoom,
            tiles={},
            n_cached=0,
            n_computed=1,
            seconds=SERVICE_S,
        )

    return RequestRouter(
        ShardedCatalog(1, [entry]),
        serve=SERVE,
        config=RouterConfig(n_shards=1, max_queue_depth=2),
        clock=clock,
        execute=execute,
        obs=obs,
    )


def request(i: int) -> TileRequest:
    col, row = i % 6, i // 6
    return TileRequest(
        bbox=(col * 800.0, row * 800.0, col * 800.0 + 800.0, row * 800.0 + 800.0),
        variable="freeboard_mean",
        zoom=0,
    )


async def drive(clock: VirtualClock, tasks: list) -> list:
    """Advance virtual time until every request task settles."""
    while not all(t.done() for t in tasks):
        for _ in range(30):  # let every submission reach admission control
            await asyncio.sleep(0)
        if not all(t.done() for t in tasks):
            await clock.advance_to_next()
    return await asyncio.gather(*tasks, return_exceptions=True)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-slo-"))
    try:
        clock = VirtualClock()
        obs = Obs(clock=clock)
        router = make_router(obs, clock)

        slo = SloEvaluator(
            obs.registry,
            clock=clock,
            config=SloConfig(fast_window_s=60.0, slow_window_s=600.0),
            log=obs.log,
        )
        spec = slo.add(availability_slo(objective=0.999))
        monitor = HealthMonitor(workdir / "health.json", obs, slo=slo, router=router)
        monitor.tick()  # baseline: no traffic yet, everything ok
        print(f"\nSLO: {spec.description} (fast window 60s, threshold 14.4x)")

        # -- outage: a 2x-saturation open-loop burst ------------------------
        async def burst():
            tasks = [
                asyncio.ensure_future(router.query(request(i))) for i in range(10)
            ]
            return await drive(clock, tasks)

        results = asyncio.run(burst())
        shed = sum(1 for r in results if isinstance(r, RouterOverloadedError))
        print(
            f"t={clock.now():6.2f}s  burst: 10 requests -> "
            f"{10 - shed} served, {shed} shed (watermark 2)"
        )
        assert shed == 8

        clock.tick(30.0)
        monitor.tick()
        fast = slo.alert(spec.name, "fast")
        assert fast.state == "firing", fast.state
        print(
            f"t={clock.now():6.2f}s  ALERT {spec.name}/fast FIRING: "
            f"burn {fast.burn_rate:.0f}x sustainable (threshold 14.4x)"
        )

        doc = json.loads((workdir / "health.json").read_text())
        budget = doc["slo"]["error_budgets"][0]
        shed_events = [e for e in doc["events"] if e["event"] == "router.shed"]
        assert doc["schema_version"] == 2 and shed_events
        print(
            f"           dashboard v2: budget {budget['bad_events']:.0f}/"
            f"{budget['budget_events']:.2f} bad events spent "
            f"(remaining {budget['remaining_fraction']:.0%}), "
            f"shed event trace {shed_events[0]['trace_id']}"
        )

        # -- recovery: sustainable sequential traffic -----------------------
        clock.tick(120.0)  # the burst ages out of the fast window

        async def healthy():
            for round_ in range(5):
                for i in range(8):
                    await drive(
                        clock, [asyncio.ensure_future(router.query(request(i)))]
                    )

        asyncio.run(healthy())
        before = router.stats.shed
        monitor.tick()
        assert router.stats.shed == before == 8  # shed rate dropped to zero
        assert fast.state == "resolved", fast.state
        print(
            f"t={clock.now():6.2f}s  alert RESOLVED after 40 healthy requests "
            f"(burn {fast.burn_rate:.2f}x < resolve threshold 7.2x)"
        )

        doc = json.loads((workdir / "health.json").read_text())
        states = {
            (a["slo"], a["window"]): a["state"] for a in doc["slo"]["alerts"]
        }
        transitions = [
            e["event"] for e in doc["events"] if e["event"].startswith("slo.")
        ]
        print(
            f"           final dashboard: fast={states[(spec.name, 'fast')]}, "
            f"slow={states[(spec.name, 'slow')]}, transitions logged: {transitions}"
        )
        assert "slo.alert_firing" in transitions
        assert "slo.alert_resolved" in transitions
        print(
            f"\nwhole lifecycle in {clock.now():.2f} virtual seconds, "
            f"{monitor.n_ticks} dashboard publishes, zero real sleeps"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
