#!/usr/bin/env python
"""Distributed scaling: map-reduce jobs and Horovod-style data-parallel training.

Reproduces the paper's scaling experiments (Tables II, IV, V and Fig. 5):

* runs the real map-reduce auto-labeling and freeboard jobs with the
  in-process engine (serial / thread executors) and verifies parallel ==
  serial,
* runs a real 2-rank synchronous data-parallel training step with ring
  all-reduce gradient averaging,
* regenerates the paper's scaling tables with the calibrated cluster and
  DGX A100 cost models.

Run:  python examples/distributed_scaling.py
"""

import numpy as np

from repro.distributed.ddp import DistributedTrainer
from repro.distributed.mapreduce import MapReduceEngine
from repro.evaluation.report import format_table
from repro.evaluation.tables import regenerate_table2, regenerate_table4, regenerate_table5
from repro.config import LSTMConfig, TrainingConfig
from repro.freeboard.parallel import parallel_freeboard
from repro.ml.dataset import Dataset
from repro.ml.models import build_lstm_classifier
from repro.resampling.features import feature_matrix, sequence_windows
from repro.resampling.window import resample_fixed_window
from repro.atl03.simulator import simulate_granule
from repro.surface.scene import SceneConfig, generate_scene


def main() -> None:
    # --- Data ---------------------------------------------------------------
    scene = generate_scene(SceneConfig(width_m=15_000.0, height_m=15_000.0, seed=2))
    granule = simulate_granule(scene, n_beams=1, rng=3)
    beam = granule.beam(granule.beam_names[0])
    segments = resample_fixed_window(beam)
    labels = segments.truth_class

    # --- Map-reduce freeboard job (Table V workload) --------------------------
    serial_engine = MapReduceEngine(n_partitions=1, executor="serial")
    parallel_engine = MapReduceEngine(n_partitions=8, executor="thread")
    fb_serial, mr_serial = parallel_freeboard(segments, labels, serial_engine)
    fb_parallel, mr_parallel = parallel_freeboard(segments, labels, parallel_engine)
    # Empty 2 m segments carry NaN freeboard in both results, hence equal_nan.
    assert np.allclose(fb_serial.freeboard_m, fb_parallel.freeboard_m, equal_nan=True)
    print("Map-reduce freeboard job (identical results, in-process executors):")
    print(f"  1 partition  : {mr_serial.total_seconds * 1e3:.1f} ms")
    print(f"  8 partitions : {mr_parallel.total_seconds * 1e3:.1f} ms (thread executor)")

    # --- Synchronous data-parallel training (Table IV workload) ---------------
    X, _ = feature_matrix(segments, normalize=True)
    sequences = sequence_windows(X, 5)
    valid = labels >= 0
    data = Dataset(sequences[valid][:1024], labels[valid][:1024])

    def builder(rng=None):
        return build_lstm_classifier(LSTMConfig(dense_units=(32, 16), dropout=0.0), TrainingConfig(), rng=rng)

    trainer = DistributedTrainer(builder, n_gpus=2, seed=0)
    result = trainer.train(data, epochs=1, batch_size=32)
    drift = max(
        float(np.max(np.abs(a - b)))
        for a, b in zip(trainer.replicas[0].get_weights(), trainer.replicas[1].get_weights())
    )
    print(f"\n2-rank synchronous data-parallel epoch: loss {result.history.loss[0]:.4f}, "
          f"max replica divergence {drift:.2e} (ring all-reduce keeps replicas identical)")

    # --- Regenerated scaling tables -------------------------------------------
    print()
    print(format_table(regenerate_table2(), "Table II: auto-labeling scalability (modelled GCD cluster)"))
    print()
    print(format_table(regenerate_table4(), "Table IV: distributed training scalability (modelled DGX A100)"))
    print()
    print(format_table(regenerate_table5(), "Table V: freeboard scalability (modelled GCD cluster)"))


if __name__ == "__main__":
    main()
