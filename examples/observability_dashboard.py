#!/usr/bin/env python
"""Unified telemetry: one obs handle across campaign -> serve -> ingest.

Demonstrates the `repro.obs` tier end to end:

1. run a small two-granule campaign under a single `Obs` handle — the
   campaign run, every executed pipeline stage, and the map-reduce fan-out
   all emit spans and registry-backed counters;
2. mount the products live (`CampaignRunner.serve(...).with_router()
   .with_ingest()`): the same handle flows into the router, the shard
   engines and the ingest service, so one registry sees every tier;
3. serve queries (cold then cache-hot) and ingest a new granule — each
   request produces a `router.request -> engine.query_batch ->
   loader.fetch` span chain, each ingest a `ingest.ingest` chain;
4. export all three surfaces: the versioned-schema JSON health dashboard
   (validated against the committed schema, atomic write), the Prometheus
   text exposition, and a Chrome `trace_event` file loadable in Perfetto /
   `chrome://tracing`.

Run:  python examples/observability_dashboard.py

This example is also the CI smoke test for the telemetry tier (both
kernel backends), so it uses a small scene and the fast MLP classifier.
"""

import json
import shutil
import tempfile
from pathlib import Path

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import IngestConfig, L3GridConfig, RouterConfig, ServeConfig
from repro.obs import (
    Obs,
    SloEvaluator,
    availability_slo,
    build_health_dashboard,
    freshness_slo,
    prometheus_text,
    set_default_obs,
    validate_dashboard,
    write_chrome_trace,
    write_health_dashboard,
)
from repro.serve import TileRequest
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    l3=L3GridConfig(cell_size_m=250.0),
    serve=ServeConfig(tile_size=8, router=RouterConfig(n_shards=2)),
)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    runner = None
    try:
        # One handle for the whole process: components given obs= use it
        # directly, and everything else (the per-worker graph runners the
        # campaign fans out) resolves it as the process default.
        obs = Obs()
        set_default_obs(obs)
        cache_dir = str(workdir / "cache")
        config = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=47,
            cache_dir=cache_dir,
        )

        # 1. Campaign under one obs handle: stage spans + counters.
        runner = CampaignRunner(config, obs=obs)
        result = runner.run()
        stage_runs = obs.registry.total("pipeline_stage_runs_total")
        print(
            f"\ncampaign {result.fingerprint}: {result.n_granules} granules, "
            f"{int(stage_runs)} pipeline stage runs, "
            f"{len(obs.tracer.spans('pipeline.stage'))} stage spans"
        )

        # 2. The same handle flows into the serving stack.
        handle = (
            runner.serve(str(workdir / "products"))
            .with_router()
            .with_ingest(config=IngestConfig())
        )

        # 3. Traffic: cold query, cache-hot repeat, one live ingest.
        request = TileRequest(
            bbox=handle.catalog.extent(), variable="freeboard_mean", zoom=0
        )
        cold = handle.query(request)
        hot = handle.query(request)
        assert hot.from_cache
        (fetch_span,) = obs.tracer.spans("loader.fetch")
        print(
            f"served {cold.n_tiles} tiles via shard {cold.shard} "
            f"(decode span: {fetch_span.duration * 1e3:.1f}ms), repeat from cache"
        )

        wider = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35, 0.5)},
            seed=47,
            cache_dir=cache_dir,
        )
        report = handle.ingest(wider.expand()[2])
        print(
            f"ingested {report.granule_id!r}: {report.n_dirty_cells} dirty "
            f"cells, {len(report.rebuilt_tiles)} tiles rebuilt "
            f"(fleet gauge: {int(obs.registry.value('ingest_fleet_size'))})"
        )

        # 4a. Health dashboard: every tier in one versioned JSON document —
        #     v2 adds SLO alerts/error budgets, recent structured events and
        #     trace-ring accounting — validated against the committed schema
        #     before the atomic write.
        slo = SloEvaluator(obs.registry, clock=obs.clock, log=obs.log)
        slo.add(availability_slo())
        slo.add(freshness_slo())
        slo.evaluate()
        doc = build_health_dashboard(
            campaign=result,
            router=handle.router,
            ingest=handle.ingest_service,
            registry=obs.registry,
            slo=slo,
            log=obs.log,
            tracer=obs.tracer,
        )
        validate_dashboard(doc)
        assert doc["serve"]["health"] == handle.router.health()  # verbatim embed
        dashboard_path = write_health_dashboard(workdir / "health.json", doc)
        reread = json.loads(dashboard_path.read_text())
        assert reread["serve"]["health"] == handle.router.health()
        print(
            f"\ndashboard v{doc['schema_version']} -> {dashboard_path.name}: "
            f"campaign total {doc['campaign']['total_s']:.2f}s, "
            f"serve requests {doc['serve']['health']['requests']}, "
            f"ingested {doc['ingest']['n_ingested']}, "
            f"{len(doc['metrics'])} metric series, "
            f"{len(doc['slo']['alerts'])} alerts, "
            f"{len(doc['events'])} recent events"
        )

        # 4b. Prometheus exposition + Chrome trace.
        text = prometheus_text(obs.registry)
        assert "# TYPE router_requests_total counter" in text
        trace_path = write_chrome_trace(workdir / "trace.json", obs.tracer.spans())
        trace_events = json.loads(trace_path.read_text())["traceEvents"]
        n_events = sum(1 for e in trace_events if e["ph"] == "X")
        print(
            f"prometheus exposition: {len(text.splitlines())} lines; "
            f"chrome trace: {n_events} span events (open in chrome://tracing)"
        )
    finally:
        if runner is not None:
            runner.close()
        set_default_obs(Obs())
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
