#!/usr/bin/env python
"""Live ingest: incremental L3 merge + dirty-tile rebuild, no restart.

Demonstrates the `repro.ingest` tier on top of the serve builder API:

1. run a small two-granule campaign and mount it live with
   `CampaignRunner.serve(...).with_router().with_ingest()` — the mosaic is
   published under a stable `live:` key and served through the sharded
   single-flight router;
2. warm the tile caches with a region query and show the cache-hot repeat;
3. ingest a granule the fleet never saw (one more scenario point of the
   same campaign): the service grids it through the cached pipeline
   stages, folds it into the online mosaic (`verify_merge=True`
   cross-checks the merge byte-for-byte against the batch mosaic), and
   rebuilds **only** the pyramid tiles overlapping its footprint;
4. query again through the same router — no restart: only the rebuilt
   tiles recompute, untouched tiles come straight from the LRU caches,
   and per-tile fingerprint revisions advance exactly where the payload
   changed.

Run:  python examples/live_ingest.py

This example is also the CI smoke test for the live-ingest tier (both
kernel backends), so it uses a small scene and the fast MLP classifier.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import IngestConfig, L3GridConfig, RouterConfig, ServeConfig
from repro.serve import TileRequest
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=250.0),
    serve=ServeConfig(tile_size=8, router=RouterConfig(n_shards=2)),
)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-ingest-"))
    try:
        cache_dir = str(workdir / "cache")
        config = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=cache_dir,
        )

        # 1. Campaign -> live serving stack: router + ingest, one builder
        #    chain.  The mosaic is catalogued under a stable `live:` key so
        #    later ingests update it in place.
        runner = CampaignRunner(config)
        handle = (
            runner.serve(str(workdir / "products"))
            .with_router()
            .with_ingest(config=IngestConfig(verify_merge=True))
        )
        service = handle.ingest_service
        print(
            f"\nserving {len(handle.catalog)} products over "
            f"{handle.catalog.n_shards} shards, live mosaic key "
            f"{service.key!r} ({service.accumulator.granule_ids})"
        )

        # 2. Warm the caches with a full-extent query.
        request = TileRequest(
            bbox=handle.catalog.extent(), variable="freeboard_mean", zoom=0
        )
        before = handle.query(request)
        repeat = handle.query(request)
        assert repeat.from_cache, "repeat must hit the shard LRU"
        print(
            f"warmed {before.n_tiles} tiles via shard {before.shard}; "
            f"repeat served entirely from cache"
        )

        # 3. A granule the fleet never saw arrives: one more scenario point
        #    of the same campaign.  Its *spec* is ingested — gridding runs
        #    through the cached pipeline stages, then the online merge.
        wider = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35, 0.5)},
            seed=33,
            cache_dir=cache_dir,
        )
        new_spec = wider.expand()[2]
        report = handle.ingest(new_spec)
        assert report.n_granules == 3  # verify_merge passed: bytes == batch
        per_zoom = {
            zoom: sum(1 for z, _, _ in report.rebuilt_tiles if z == zoom)
            for zoom in sorted({z for z, _, _ in report.rebuilt_tiles})
        }
        print(
            f"\ningested {report.granule_id!r} in {report.seconds * 1e3:.0f}ms: "
            f"{report.n_dirty_cells} dirty cells, "
            f"{len(report.rebuilt_tiles)} tiles rebuilt {per_zoom}, "
            f"{report.n_invalidated} cache entries invalidated"
        )

        # 4. Same router, no restart: only the rebuilt tiles recompute,
        #    and only their fingerprint revisions advance.
        after = handle.query(request)
        rebuilt_zoom0 = {(r, c) for z, r, c in report.rebuilt_tiles if z == 0}
        assert after.n_computed == len(rebuilt_zoom0 & set(after.tiles))
        changed = {
            rc
            for rc in after.tiles
            if not np.array_equal(after.tiles[rc], before.tiles[rc], equal_nan=True)
        }
        assert changed <= rebuilt_zoom0
        advanced = {
            rc for rc in after.tiles if after.fingerprints[rc] != before.fingerprints[rc]
        }
        assert advanced == rebuilt_zoom0 & set(after.tiles)
        print(
            f"post-ingest query: {after.n_computed} tiles recomputed, "
            f"{after.n_cached} still cache-warm; payload changed on {sorted(changed)}, "
            f"revisions advanced on {sorted(advanced)}"
        )

        health = handle.health()
        print(
            f"\nhealth: {health['healthy_shards']}/{len(handle.router.shards)} "
            f"shards healthy after {service.n_ingested} live ingest(s)"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
