#!/usr/bin/env python
"""Serving layer: campaign -> product catalog -> tile pyramid -> query engine.

Demonstrates the `repro.serve` subsystem end to end:

1. run a small two-granule campaign and write its Level-3 products
   (mosaic + per-granule grids) with `CampaignRunner.serve`, which scans
   them into a `ProductCatalog` — region/variable queries are answered from
   the JSON sidecars alone, no npz is opened;
2. serve a region query: the engine resolves `(bbox, variable, zoom)` to
   tiles of the mosaic's pyramid, decoding the product once;
3. repeat the query — it is served entirely from the fingerprint-keyed
   LRU tile cache (asserted via the instrumented loader: **no** second
   decode);
4. drive the engine with Zipf-distributed traffic (hot regions dominate,
   the way real map traffic behaves) and print the measured
   throughput/latency table;
5. extrapolate the measured serving time across executor counts with the
   calibrated cost model — the Table II/V scaling-table convention.

Run:  python examples/serve_traffic.py

This example is also the CI smoke test for the serving layer (both kernel
backends), so it uses a small scene and the fast MLP classifier.
"""

import shutil
import tempfile
from pathlib import Path

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import L3GridConfig, ServeConfig
from repro.evaluation import format_table, serve_latency_table, serve_scaling_table
from repro.serve import TileRequest, TrafficConfig, TrafficSimulator
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=250.0),
    serve=ServeConfig(tile_size=8),
)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    try:
        config = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=str(workdir / "cache"),
        )

        # 1. Campaign -> written products -> catalog -> engine.
        runner = CampaignRunner(config)
        engine = runner.serve(str(workdir / "products"))
        kinds = sorted(entry.kind for entry in engine.catalog)
        print(f"\ncatalog: {len(engine.catalog)} products ({', '.join(kinds)}),")
        print(f"  extent: {tuple(round(v) for v in engine.catalog.extent())}")

        # 2. One region query against the mosaic pyramid.
        x0, y0, _, _ = engine.catalog.extent()
        request = TileRequest(
            bbox=(x0, y0, x0 + 3_000.0, y0 + 3_000.0),
            variable="freeboard_mean",
            zoom=1,
        )
        first = engine.query(request)
        served_by = engine.catalog.get(first.product)
        print(
            f"\nquery bbox 3x3 km @ zoom {first.zoom} -> {first.n_tiles} tiles "
            f"from the {served_by.kind} (fingerprint {first.product[:12]}...), "
            f"{engine.loader.n_loads} product decode(s)"
        )

        # 3. The repeat is pure tile cache: no second decode.
        loads_before = engine.loader.n_loads
        repeat = engine.query(request)
        assert repeat.from_cache, "repeat query must be served from the LRU"
        assert engine.loader.n_loads == loads_before, "repeat must not re-read the npz"
        print(
            f"repeat query: {repeat.n_tiles} tiles from the LRU tile cache, "
            f"still {engine.loader.n_loads} decode(s)"
        )

        # 4. Zipf traffic: hot regions hit the cache, the tail decodes.
        simulator = TrafficSimulator(
            engine,
            TrafficConfig(
                n_requests=120,
                batch_size=12,
                n_regions=8,
                zipf_exponent=1.2,
                region_fraction=0.35,
                variables=("freeboard_mean", "thickness_mean"),
                zoom_levels=(0, 1, 2),
                seed=7,
            ),
        )
        result = simulator.run()
        print()
        print(format_table(serve_latency_table(result), title="Measured traffic run"))
        hot = max(result.region_counts.values())
        cold = min(result.region_counts.values())
        print(f"  Zipf mix: hottest region {hot} requests, coldest {cold}")

        # 5. Cost-model scaling across executor counts (Table II/V style).
        print()
        print(
            format_table(
                serve_scaling_table(result, executor_counts=(1, 2, 4)),
                title="Simulated serving scalability (calibrated cost model)",
            )
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
