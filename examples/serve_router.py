#!/usr/bin/env python
"""Service tier: sharded catalog -> single-flight router -> open-loop load.

Demonstrates the `repro.serve` router on top of the query engine:

1. run a small two-granule campaign and mount its products behind a
   `RequestRouter` (`CampaignRunner.serve(...).with_router()`): the
   catalog is hash-partitioned by bbox into shards, each with its own
   engine and LRU tile cache;
2. serve a batch of region queries through the router and show the shard
   fan-out plus the cache-hot repeat;
3. drive the router open loop on a `VirtualClock` — Poisson arrivals at
   2x the admission capacity, with a modelled per-request service time —
   and print the measured latency table: admission control sheds the
   excess immediately (503 + Retry-After) while single-flight coalescing
   absorbs the Zipf head, so admitted p99 stays bounded;
4. extrapolate saturation throughput across shard counts with the
   calibrated cost model (the Table II/V scaling-table convention);
5. print the router health summary (per-shard state, shed/coalescing
   counters) a fronting HTTP layer would expose.

Run:  python examples/serve_router.py

This example is also the CI smoke test for the service tier (both kernel
backends), so it uses a small scene and the fast MLP classifier.
"""

import shutil
import tempfile
from dataclasses import replace
from pathlib import Path

from repro import kernels
from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import L3GridConfig, RouterConfig, ServeConfig
from repro.evaluation import format_table, router_latency_table, router_scaling_table
from repro.serve import (
    RequestRouter,
    TileRequest,
    TrafficConfig,
    TrafficSimulator,
    VirtualClock,
)
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

#: Modelled per-request service time for the open-loop run (virtual seconds).
SERVICE_S = 0.005

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=250.0),
    serve=ServeConfig(
        tile_size=8,
        router=RouterConfig(n_shards=2, max_queue_depth=8, retry_after_s=0.05),
    ),
)


def main() -> None:
    print(f"kernel backend: {kernels.get_backend()}")
    workdir = Path(tempfile.mkdtemp(prefix="repro-router-"))
    try:
        config = CampaignConfig(
            base=BASE,
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=str(workdir / "cache"),
        )

        # 1. Campaign -> written products -> sharded catalog -> router.
        runner = CampaignRunner(config)
        handle = runner.serve(str(workdir / "products")).with_router()
        router = handle.router
        counts = router.catalog.counts()
        print(
            f"\nsharded catalog: {len(router.catalog)} products over "
            f"{router.catalog.n_shards} shards (per-shard {counts})"
        )

        # 2. A batch of region queries fans out across the shards.
        x0, y0, _, _ = router.catalog.extent()
        requests = [
            TileRequest(
                bbox=(x0 + dx, y0 + dy, x0 + dx + 2_500.0, y0 + dy + 2_500.0),
                variable="freeboard_mean",
                zoom=zoom,
            )
            for dx, dy, zoom in ((0.0, 0.0, 0), (3_000.0, 0.0, 1), (0.0, 3_000.0, 1))
        ]
        served = router.serve(requests)
        shards_used = sorted({routed.shard for routed in served})
        print(
            f"served {len(served)} queries via shards {shards_used}, "
            f"{sum(r.response.n_tiles for r in served)} tiles total"
        )
        repeat = router.serve(requests)
        assert all(r.response.from_cache for r in repeat), "repeat must hit the LRUs"
        print("repeat batch: all tiles from the per-shard LRU caches")

        # 3. Open loop on a virtual clock: Poisson arrivals at 2x capacity.
        #    The execute hook charges a fixed virtual service time per
        #    execution, so admission and coalescing behaviour is exact and
        #    deterministic — no wall-clock sleeps anywhere.
        clock = VirtualClock()

        async def modelled(shard, request):
            await clock.sleep(SERVICE_S)
            return replace(shard.engine.query(request), seconds=SERVICE_S)

        serve_cfg = BASE.serve
        loaded = RequestRouter(
            router.catalog, serve=serve_cfg, clock=clock, execute=modelled
        )
        capacity_rps = serve_cfg.router.max_queue_depth / SERVICE_S
        simulator = TrafficSimulator(
            catalog=router.catalog,
            config=TrafficConfig(
                n_requests=3_000,
                n_regions=12,
                zipf_exponent=1.1,
                region_fraction=0.25,
                zoom_levels=(0, 1),
                seed=17,
            ),
        )
        result = simulator.run_open_loop(loaded, arrival_rate_rps=2.0 * capacity_rps)
        print(
            f"\nopen loop: offered {result.n_offered} requests at "
            f"{result.arrival_rate_rps:.0f} req/s (2x the {capacity_rps:.0f} req/s "
            f"admission capacity) in {result.seconds:.2f} virtual seconds"
        )
        print(format_table(router_latency_table(result), title="Open-loop traffic run"))
        assert result.shed_rate > 0.0, "2x overload must shed"
        print(
            f"  shed {result.n_shed} immediately (Retry-After "
            f"{serve_cfg.router.retry_after_s * 1e3:.0f}ms), coalesced "
            f"{result.stats.coalesced} onto in-flight work"
        )

        # 4. Saturation throughput across shard counts (Table II/V style).
        print()
        print(
            format_table(
                router_scaling_table(result, shard_counts=(1, 2, 4)),
                title="Simulated shard scalability (calibrated cost model)",
            )
        )

        # 5. The health summary a fronting HTTP layer would expose.
        health = loaded.health()
        print(
            f"\nhealth: {health['healthy_shards']}/{len(loaded.shards)} shards healthy, "
            f"depth {health['depth']}, shed rate {health['shed_rate']}, "
            f"coalescing ratio {health['coalescing_ratio']}"
        )
        for row in health["shards"]:
            print(
                f"  shard {row['shard']}: {row['products']} products, "
                f"{row['cached_tiles']} cached tiles, {row['loads']} loads, "
                f"quarantined={row['quarantined']}"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
