#!/usr/bin/env python
"""Campaign sweep: many granules, one shared classifier, resumable cache.

Expands a 2x3 scenario grid (season x cloud fraction) into six simulated
granules, curates them in parallel over two worker processes, trains a single
classifier on the pooled labelled segments of the whole fleet, fans
inference/freeboard/ATL07/ATL10 retrieval back out, and prints per-granule
and campaign-level metrics plus the simulated cluster scaling table.

The campaign is then run a second time with the same configuration to
demonstrate the fingerprint-keyed on-disk cache: every artifact is reused and
the re-run completes in a fraction of the original time.

Run:  python examples/campaign_sweep.py [--quick]

``--quick`` shrinks the sweep to a 1x2 grid with smaller scenes and fewer
epochs — the CI smoke configuration.
"""

import argparse
import shutil
import tempfile
import time

from repro.campaign import CampaignConfig, CampaignRunner
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small 2-granule sweep (used by the CI smoke step)",
    )
    args = parser.parse_args()

    scene_m = 5_000.0 if args.quick else 8_000.0
    base = ExperimentConfig(
        scene=SceneConfig(
            width_m=scene_m,
            height_m=scene_m,
            open_water_fraction=0.12,
            thin_ice_fraction=0.18,
            thick_ice_fraction=0.70,
            n_leads=8,
        ),
        epochs=2 if args.quick else 4,
        model_kind="mlp",  # the MLP keeps this demo fast; use "lstm" for the paper's model
    )
    grid = (
        {"cloud_fraction": (0.1, 0.4)}
        if args.quick
        else {
            "season": ("winter", "freeze_up"),
            "cloud_fraction": (0.1, 0.3, 0.5),
        }
    )
    cache_dir = tempfile.mkdtemp(prefix="repro-campaign-")
    config = CampaignConfig(
        base=base,
        grid=grid,
        seed=0,
        n_workers=2,
        cache_dir=cache_dir,
    )
    print(
        f"Campaign {config.fingerprint()}: {config.n_granules} granules "
        f"({' x '.join(name for name in config.axis_names)}), "
        f"{config.n_workers} workers"
    )

    start = time.perf_counter()
    result = CampaignRunner(config).run()
    first_s = time.perf_counter() - start
    print(f"\nFirst run: {first_s:.1f} s "
          f"({len(result.cache_misses)} artifacts computed and cached)\n")
    print(result.summary())

    start = time.perf_counter()
    resumed = CampaignRunner(config).run()
    second_s = time.perf_counter() - start
    print(
        f"\nSecond run resumed from cache in {second_s:.2f} s "
        f"({len(resumed.cache_hits)} hits, {len(resumed.cache_misses)} misses)"
    )
    shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
