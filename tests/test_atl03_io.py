"""Tests for granule persistence."""

import numpy as np
import pytest

from repro.atl03.io import FORMAT_VERSION, load_granule, save_granule


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_photons(self, granule, tmp_path):
        path = save_granule(granule, tmp_path / "granule_a")
        assert path.suffix == ".npz"
        loaded = load_granule(path)
        assert loaded.granule_id == granule.granule_id
        assert loaded.beam_names == granule.beam_names
        assert loaded.acquisition_time == granule.acquisition_time
        for name in granule.beam_names:
            orig = granule.beam(name)
            back = loaded.beam(name)
            np.testing.assert_array_equal(back.along_track_m, orig.along_track_m)
            np.testing.assert_array_equal(back.height_m, orig.height_m)
            np.testing.assert_array_equal(back.signal_conf, orig.signal_conf)
            np.testing.assert_array_equal(back.truth_class, orig.truth_class)

    def test_explicit_npz_suffix_preserved(self, granule, tmp_path):
        path = save_granule(granule, tmp_path / "g.npz")
        assert path.name == "g.npz"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_granule(tmp_path / "missing.npz")

    def test_non_granule_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.arange(5))
        with pytest.raises(ValueError, match="metadata"):
            load_granule(path)

    def test_format_version_checked(self, granule, tmp_path, monkeypatch):
        import repro.atl03.io as io_mod

        path = save_granule(granule, tmp_path / "g2")
        monkeypatch.setattr(io_mod, "FORMAT_VERSION", FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="format version"):
            load_granule(path)

    def test_nested_directory_created(self, granule, tmp_path):
        path = save_granule(granule, tmp_path / "a" / "b" / "granule")
        assert path.exists()
