"""Tests for background-rate modelling and estimation."""

import numpy as np
import pytest

from repro.atl03.background import background_rate_per_shot, estimate_background_factor


class TestBackgroundRatePerShot:
    def test_daytime_rate_above_night_rate(self):
        t = np.linspace(0, 10, 100)
        day = background_rate_per_shot(t, solar_elevation_deg=30.0, rng=0)
        night = background_rate_per_shot(t, solar_elevation_deg=-5.0, rng=0)
        assert day.mean() > night.mean()

    def test_night_rate_close_to_floor(self):
        t = np.linspace(0, 10, 50)
        night = background_rate_per_shot(
            t, solar_elevation_deg=-10.0, night_rate_hz=2e5, rng=1, fluctuation=0.0
        )
        np.testing.assert_allclose(night, 2e5, rtol=1e-6)

    def test_rates_never_negative(self):
        t = np.linspace(0, 100, 1000)
        rate = background_rate_per_shot(t, fluctuation=0.6, rng=3)
        assert np.all(rate >= 0.0)

    def test_empty_input(self):
        assert background_rate_per_shot(np.empty(0)).shape == (0,)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            background_rate_per_shot(np.zeros(3), day_rate_hz=-1.0)
        with pytest.raises(ValueError):
            background_rate_per_shot(np.zeros(3), fluctuation=1.5)


class TestEstimateBackgroundFactor:
    def test_recovers_order_of_magnitude(self, beam):
        centres, rate = estimate_background_factor(
            beam.along_track_m, beam.height_m, beam.signal_conf
        )
        assert centres.shape == rate.shape
        assert rate.shape[0] >= 1
        # The simulated day-time rate is O(1e5..1e6) Hz; the estimate should
        # land within an order of magnitude of the true per-photon rates.
        true_mean = beam.background_rate_hz.mean()
        assert 0.05 * true_mean < rate.mean() < 20.0 * true_mean

    def test_empty_input(self):
        centres, rate = estimate_background_factor(np.empty(0), np.empty(0), np.empty(0))
        assert centres.shape == (0,)
        assert rate.shape == (0,)

    def test_no_noise_photons_gives_zero_rate(self):
        along = np.linspace(0, 100, 50)
        conf = np.full(50, 4, dtype=np.int8)
        centres, rate = estimate_background_factor(along, np.zeros(50), conf)
        assert np.all(rate == 0.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            estimate_background_factor(np.zeros(3), np.zeros(3), np.zeros(3), bin_length_m=0.0)
        with pytest.raises(ValueError):
            estimate_background_factor(np.zeros(3), np.zeros(2), np.zeros(3))
