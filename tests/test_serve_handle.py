"""ServeHandle: the redesigned serve construction surface.

Covers the builder contract (chaining, ordering rules, clear failures),
the ``CampaignRunner.serve`` integration including the deprecated
``router=`` boolean shim, and the unified ``TileResponse`` surface — the
same dataclass whichever front (bare engine or router) serves the query.
"""

from types import SimpleNamespace

import pytest

from repro.config import RouterConfig, ServeConfig
from repro.serve import (
    ProductCatalog,
    QueryEngine,
    RequestRouter,
    RoutedResponse,
    ServeHandle,
    ShardedCatalog,
    TileRequest,
    TileResponse,
)

from tests.test_ingest_service import SERVE, _batch, localized_granule


def handle_over_synthetic_fleet(tmp_path, serve=SERVE, seed_l3=True):
    from repro.l3.writer import write_level3

    granules = {
        gid: localized_granule(gid, slice(0, 16), slice(0, 16), seed=seed)
        for gid, seed in (("g000", 1), ("g001", 2))
    }
    mosaic = _batch(granules)
    mosaic.metadata["fingerprint"] = "fleetfp"  # path-independent catalog key
    catalog = ProductCatalog()
    _, json_path = write_level3(mosaic, tmp_path / "mosaic")
    catalog.register(json_path)
    for gid, product in granules.items():
        _, json_path = write_level3(product, tmp_path / gid)
        catalog.register(json_path)
    seed = (
        SimpleNamespace(mosaic=mosaic, granules=granules, fingerprint="seedfp")
        if seed_l3
        else None
    )
    return ServeHandle(catalog, serve=serve, products_dir=tmp_path, seed_l3=seed)


REQUEST = TileRequest(bbox=(0.0, 0.0, 4_000.0, 4_000.0), variable="freeboard_mean")


class TestBuilder:
    def test_bare_handle_serves_through_a_query_engine(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path)
        assert isinstance(handle.engine, QueryEngine)
        assert not handle.has_router
        assert handle.front is handle.engine
        response = handle.query(REQUEST)
        assert isinstance(response, TileResponse)
        assert response.shard is None  # no router in the path

    def test_with_router_chains_and_owns_per_shard_engines(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path)
        chained = handle.with_router(RouterConfig(n_shards=2))
        assert chained is handle  # builder steps return the handle
        assert handle.has_router
        assert isinstance(handle.router, RequestRouter)
        assert isinstance(handle.catalog, ShardedCatalog)
        assert handle.catalog.n_shards == 2
        response = handle.query(REQUEST)
        assert isinstance(response, TileResponse)
        assert response.shard is not None

    def test_with_ingest_chains_onto_a_router(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path)
        chained = handle.with_router(RouterConfig(n_shards=2)).with_ingest()
        assert chained is handle
        assert handle.ingest_service.key == "live:seedfp"

    def test_router_must_come_before_the_engine_is_used(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path)
        handle.query(REQUEST)  # forces the bare engine into existence
        with pytest.raises(RuntimeError, match="before the bare engine"):
            handle.with_router()

    def test_double_attachment_raises(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path).with_router()
        with pytest.raises(RuntimeError, match="already attached"):
            handle.with_router()
        handle.with_ingest()
        with pytest.raises(RuntimeError, match="already attached"):
            handle.with_ingest()

    def test_with_ingest_requires_campaign_wiring(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path, seed_l3=False)
        with pytest.raises(RuntimeError, match="CampaignRunner.serve"):
            handle.with_ingest()

    def test_accessors_fail_clearly_when_the_tier_is_absent(self, tmp_path):
        bare = handle_over_synthetic_fleet(tmp_path)
        with pytest.raises(RuntimeError, match="no router"):
            bare.router
        with pytest.raises(RuntimeError, match="no ingest"):
            bare.ingest_service
        routed = handle_over_synthetic_fleet(tmp_path / "b").with_router()
        with pytest.raises(RuntimeError, match="fronts a router"):
            routed.engine


class TestUnifiedTileResponse:
    def test_engine_and_router_return_the_same_dataclass(self, tmp_path):
        bare = handle_over_synthetic_fleet(tmp_path / "a")
        routed = handle_over_synthetic_fleet(tmp_path / "b").with_router()
        engine_response = bare.query(REQUEST)
        router_response = routed.query(REQUEST)
        assert type(engine_response) is TileResponse
        assert type(router_response) is TileResponse
        assert RoutedResponse is TileResponse  # the legacy name is an alias
        # Same tiles, same provenance fingerprints, whichever front served.
        assert engine_response.tiles.keys() == router_response.tiles.keys()
        assert engine_response.fingerprints == router_response.fingerprints

    def test_response_carries_provenance_and_compat_surface(self, tmp_path):
        handle = handle_over_synthetic_fleet(tmp_path)
        response = handle.query(REQUEST)
        assert response.fingerprints.keys() == response.tiles.keys()
        assert all(response.fingerprints.values())
        assert response.response is response  # RoutedResponse-era accessor
        assert response.service_s == response.seconds
        assert response.latency_s == response.queue_wait_s + response.seconds
        assert not response.stale
        assert not response.coalesced


class TestCampaignServeRedesign:
    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        from repro.campaign import CampaignConfig, CampaignRunner
        from repro.config import L3GridConfig
        from repro.surface.scene import SceneConfig
        from repro.workflow.end_to_end import ExperimentConfig

        config = CampaignConfig(
            base=ExperimentConfig(
                scene=SceneConfig(
                    width_m=6_000.0,
                    height_m=6_000.0,
                    open_water_fraction=0.12,
                    thin_ice_fraction=0.18,
                    thick_ice_fraction=0.70,
                    n_leads=8,
                ),
                epochs=2,
                model_kind="mlp",
                l3=L3GridConfig(cell_size_m=1_000.0),
                serve=ServeConfig(tile_size=4, router=RouterConfig(n_shards=2)),
            ),
            grid={"cloud_fraction": (0.1, 0.35)},
            seed=33,
            cache_dir=str(tmp_path_factory.mktemp("handle-cache")),
        )
        return CampaignRunner(config)

    def test_serve_returns_a_handle(self, runner, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the builder path must not warn
            handle = runner.serve(str(tmp_path / "products"))
        assert isinstance(handle, ServeHandle)
        assert len(handle.catalog) == 3  # mosaic + two granules
        response = handle.query(
            TileRequest(bbox=handle.catalog.extent(), variable="freeboard_mean")
        )
        assert response.n_tiles > 0

    def test_router_bool_shim_warns_and_returns_the_old_types(self, runner, tmp_path):
        with pytest.warns(DeprecationWarning, match="with_router"):
            router = runner.serve(str(tmp_path / "p1"), router=True)
        assert isinstance(router, RequestRouter)
        with pytest.warns(DeprecationWarning, match="ServeHandle"):
            engine = runner.serve(str(tmp_path / "p2"), router=False)
        assert isinstance(engine, QueryEngine)
