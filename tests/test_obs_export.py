"""Exporters: Prometheus text, Chrome trace JSON, and the health dashboard."""

from __future__ import annotations

import json

import pytest

from repro.config import RouterConfig, ServeConfig
from repro.obs.core import Obs
from repro.obs.export import (
    DASHBOARD_SCHEMA_VERSION,
    build_health_dashboard,
    chrome_trace,
    dashboard_schema,
    prometheus_text,
    validate_dashboard,
    validate_json,
    write_chrome_trace,
    write_health_dashboard,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve.catalog import CatalogEntry
from repro.serve.clock import VirtualClock
from repro.serve.router import RequestRouter
from repro.serve.query import TileRequest, TileResponse
from repro.serve.shard import ShardedCatalog

SERVE = ServeConfig(tile_size=8, tile_cache_size=64)


def make_entry(i: int, bbox) -> CatalogEntry:
    x0, y0, x1, y1 = bbox
    return CatalogEntry(
        base_path=f"/products/p{i}",
        kind="mosaic",
        fingerprint=f"fp-{i}",
        granule_ids=(f"g{i:03d}",),
        variables=("freeboard_mean", "n_segments"),
        servable=("freeboard_mean",),
        x_min_m=float(x0),
        y_min_m=float(y0),
        x_max_m=float(x1),
        y_max_m=float(y1),
        cell_size_m=100.0,
        shape=(32, 48),
    )


def make_router(obs=None, clock=None):
    clock = clock if clock is not None else VirtualClock()

    async def execute(shard, request: TileRequest) -> TileResponse:
        return TileResponse(
            request=request,
            product="synthetic",
            zoom=request.zoom,
            tiles={},
            n_cached=0,
            n_computed=1,
            seconds=0.0,
        )

    return RequestRouter(
        ShardedCatalog(2, [make_entry(0, (0.0, 0.0, 4800.0, 3200.0))]),
        serve=SERVE,
        config=RouterConfig(n_shards=2),
        clock=clock,
        execute=execute,
        obs=obs,
    )


REQUEST = TileRequest(bbox=(0.0, 0.0, 2400.0, 1600.0), variable="freeboard_mean")


class TestPrometheusText:
    def test_counters_and_gauges_render_with_types(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", shard="0").inc(3)
        reg.gauge("depth").set(2)
        text = prometheus_text(reg)
        assert "# TYPE depth gauge" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{shard="0"} 3' in text
        assert "depth 2" in text

    def test_type_line_appears_once_per_name(self):
        reg = MetricsRegistry()
        reg.counter("x", shard="0").inc()
        reg.counter("x", shard="1").inc()
        text = prometheus_text(reg)
        assert text.count("# TYPE x counter") == 1

    def test_histogram_cumulative_buckets_and_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestChromeTrace:
    def test_spans_become_complete_events(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", label="x"):
            clock.tick(0.002)
            with tracer.span("inner"):
                clock.tick(0.001)
        doc = chrome_trace(tracer.spans())
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M"
        by_name = {e["name"]: e for e in events}
        assert by_name["inner"]["ph"] == "X"
        assert by_name["inner"]["dur"] == pytest.approx(1000.0)  # microseconds
        assert by_name["outer"]["dur"] == pytest.approx(3000.0)
        assert by_name["outer"]["args"]["label"] == "x"
        assert (
            by_name["inner"]["args"]["parent_id"]
            == by_name["outer"]["args"]["span_id"]
        )
        # Same trace -> same tid track.
        assert by_name["inner"]["tid"] == by_name["outer"]["tid"]

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("op"):
            pass
        path = write_chrome_trace(tmp_path / "trace.json", tracer.spans())
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["name"] == "op" for e in loaded["traceEvents"])


class TestMiniValidator:
    def test_rejects_wrong_type(self):
        with pytest.raises(ValueError, match="expected type"):
            validate_json({"a": "s"}, {"type": "object", "properties": {"a": {"type": "number"}}})

    def test_bool_is_not_a_number(self):
        with pytest.raises(ValueError):
            validate_json(True, {"type": "number"})

    def test_rejects_missing_required_and_extra(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
            "additionalProperties": False,
        }
        with pytest.raises(ValueError, match="missing required"):
            validate_json({}, schema)
        with pytest.raises(ValueError, match="unexpected property"):
            validate_json({"a": 1, "b": 2}, schema)

    def test_items_and_enum(self):
        schema = {"type": "array", "items": {"enum": [1, 2]}}
        validate_json([1, 2, 1], schema)
        with pytest.raises(ValueError, match="not in enum"):
            validate_json([3], schema)


class TestHealthDashboard:
    def test_minimal_document_validates(self):
        doc = build_health_dashboard(generated_at=123.0)
        validate_dashboard(doc)
        assert doc["schema_version"] == DASHBOARD_SCHEMA_VERSION
        assert doc["campaign"] is None
        assert doc["serve"] is None
        assert doc["ingest"] is None
        assert doc["metrics"] == {}

    def test_router_health_round_trips_unchanged(self):
        obs = Obs(clock=VirtualClock())
        router = make_router(obs=obs)
        router.serve([REQUEST])
        doc = build_health_dashboard(
            router=router, registry=obs.registry, generated_at=0.0
        )
        validate_dashboard(doc)
        # The contract: serve.health IS router.health(), verbatim.
        assert doc["serve"]["health"] == router.health()
        assert doc["serve"]["health"]["requests"] == 1
        # ... and it survives a JSON round trip intact.
        assert json.loads(json.dumps(doc))["serve"]["health"] == router.health()

    def test_registry_metrics_flatten_into_document(self):
        obs = Obs(clock=VirtualClock())
        router = make_router(obs=obs)
        router.serve([REQUEST, REQUEST])
        doc = build_health_dashboard(registry=obs.registry, generated_at=0.0)
        validate_dashboard(doc)
        label = router._labels["router"]
        assert doc["metrics"][f'router_requests_total{{router="{label}"}}'] == 2

    def test_write_is_atomic_and_validated(self, tmp_path):
        path = tmp_path / "dash" / "health.json"
        doc = build_health_dashboard(generated_at=9.0)
        written = write_health_dashboard(path, doc)
        assert written == path
        assert not path.with_name(path.name + ".tmp").exists()
        assert json.loads(path.read_text())["generated_at"] == 9.0

    def test_write_rejects_invalid_document(self, tmp_path):
        doc = build_health_dashboard(generated_at=1.0)
        doc["schema_version"] = 99
        with pytest.raises(ValueError):
            write_health_dashboard(tmp_path / "bad.json", doc)
        assert not (tmp_path / "bad.json").exists()

    def test_committed_schema_is_draft_like(self):
        schema = dashboard_schema()
        assert schema["type"] == "object"
        assert "schema_version" in schema["required"]


class TestDashboardV2:
    def make_obs(self):
        return Obs(clock=VirtualClock())

    def test_slo_section_carries_alerts_and_budgets(self):
        from repro.obs.slo import SloEvaluator, availability_slo

        obs = self.make_obs()
        obs.counter("router_requests_total").inc(100)
        obs.counter("router_shed_total").inc(50)
        ev = SloEvaluator(obs.registry, clock=obs.clock)
        ev.add(availability_slo())
        ev.evaluate()
        obs.clock.tick(30.0)
        obs.counter("router_requests_total").inc(100)
        obs.counter("router_shed_total").inc(50)
        ev.evaluate()
        doc = build_health_dashboard(registry=obs.registry, slo=ev, generated_at=0.0)
        validate_dashboard(doc)
        states = {a["window"]: a["state"] for a in doc["slo"]["alerts"]}
        assert states["fast"] == "firing"
        assert doc["slo"]["error_budgets"][0]["slo"] == "serve_availability"

    def test_events_section_is_the_log_tail_sanitized(self):
        obs = self.make_obs()
        obs.log.warning("router.shed", depth=3, extra=object())
        doc = build_health_dashboard(log=obs.log, generated_at=0.0)
        validate_dashboard(doc)
        (event,) = doc["events"]
        assert event["event"] == "router.shed"
        assert event["depth"] == 3
        assert isinstance(event["extra"], str)  # non-scalar clamped to repr

    def test_trace_section_reports_ring_drops(self):
        from repro.config import ObsConfig

        obs = Obs(ObsConfig(trace_buffer_size=2), clock=VirtualClock())
        for i in range(5):
            with obs.span(f"s{i}"):
                pass
        doc = build_health_dashboard(tracer=obs.tracer, generated_at=0.0)
        validate_dashboard(doc)
        assert doc["trace"] == {"spans_dropped": 3, "buffer_size": 2}

    def test_dropped_spans_feed_the_counter_series(self):
        from repro.config import ObsConfig

        obs = Obs(ObsConfig(trace_buffer_size=2), clock=VirtualClock())
        for i in range(5):
            with obs.span(f"s{i}"):
                pass
        assert obs.registry.total("trace_spans_dropped_total") == 3


class TestMigration:
    def v1_doc(self):
        doc = build_health_dashboard(generated_at=1.0)
        doc["schema_version"] = 1
        for key in ("slo", "events", "trace"):
            del doc[key]
        return doc

    def test_v1_upgrades_and_validates(self):
        from repro.obs.export import migrate_dashboard

        migrated = migrate_dashboard(self.v1_doc())
        validate_dashboard(migrated)
        assert migrated["schema_version"] == 2
        assert migrated["slo"] is None
        assert migrated["events"] == []
        assert migrated["trace"] is None

    def test_current_document_round_trips_unchanged(self):
        from repro.obs.export import migrate_dashboard

        doc = build_health_dashboard(generated_at=1.0)
        assert migrate_dashboard(doc) == doc

    def test_unknown_version_refused(self):
        from repro.obs.export import migrate_dashboard

        doc = build_health_dashboard(generated_at=1.0)
        doc["schema_version"] = 3
        with pytest.raises(ValueError, match="cannot migrate"):
            migrate_dashboard(doc)


class TestHealthMonitor:
    def make_monitor(self, tmp_path, with_slo=True):
        from repro.obs.export import HealthMonitor
        from repro.obs.slo import SloEvaluator, availability_slo

        obs = Obs(clock=VirtualClock())
        slo = None
        if with_slo:
            slo = SloEvaluator(obs.registry, clock=obs.clock)
            slo.add(availability_slo())
        monitor = HealthMonitor(tmp_path / "health.json", obs, slo=slo)
        return obs, slo, monitor

    def test_tick_evaluates_and_publishes_atomically(self, tmp_path):
        obs, slo, monitor = self.make_monitor(tmp_path)
        monitor.tick()  # baseline evaluation
        obs.counter("router_requests_total").inc(10)
        obs.clock.tick(5.0)
        doc = monitor.tick()
        assert monitor.n_ticks == 2
        on_disk = json.loads(monitor.path.read_text())
        assert on_disk == json.loads(json.dumps(doc))
        assert on_disk["generated_at"] == 5.0
        assert on_disk["slo"]["error_budgets"][0]["total_events"] == 10
        assert not monitor.path.with_name("health.json.tmp").exists()

    def test_tick_without_slo_still_publishes(self, tmp_path):
        obs, _, monitor = self.make_monitor(tmp_path, with_slo=False)
        obs.log.info("hello")
        doc = monitor.tick()
        assert doc["slo"] is None
        assert doc["events"][0]["event"] == "hello"

    def test_run_is_paced_by_the_obs_clock(self, tmp_path):
        import asyncio

        obs, _, monitor = self.make_monitor(tmp_path, with_slo=False)
        monitor.interval_s = 10.0

        async def drive():
            task = asyncio.ensure_future(monitor.run(n_ticks=3))
            for _ in range(10):
                if monitor.n_ticks >= 3:
                    break
                await obs.clock.advance_to_next()
            await task

        asyncio.run(drive())
        assert monitor.n_ticks == 3
        assert obs.clock.now() == 30.0  # three exact 10 s intervals

    def test_rejects_non_positive_interval(self, tmp_path):
        from repro.obs.export import HealthMonitor

        with pytest.raises(ValueError, match="interval_s"):
            HealthMonitor(tmp_path / "h.json", Obs(), interval_s=0.0)
