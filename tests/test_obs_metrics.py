"""Metrics registry: identity, bucket boundaries, thread safety, pickling."""

from __future__ import annotations

import asyncio
import pickle
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("events_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_pickle_round_trip_drops_lock(self):
        c = Counter("events_total", (("stage", "map"),))
        c.inc(7)
        clone = pickle.loads(pickle.dumps(c))
        assert clone.value == 7
        clone.inc()  # the restored lock works
        assert clone.value == 8


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(4)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_le_bucket(self):
        # Prometheus `le` semantics: an observation equal to an upper bound
        # belongs to that bound's bucket.
        h = Histogram("lat", edges=(0.01, 0.1, 1.0))
        h.observe(0.01)
        h.observe(0.1)
        h.observe(1.0)
        assert h.bucket_counts().tolist() == [1, 1, 1, 0]

    def test_below_first_edge_and_overflow(self):
        h = Histogram("lat", edges=(0.01, 0.1))
        h.observe(0.0)
        h.observe(0.005)
        h.observe(5.0)  # +Inf bucket
        assert h.bucket_counts().tolist() == [2, 0, 1]

    def test_cumulative_counts_are_monotone_and_end_at_count(self):
        h = Histogram("lat", edges=(0.01, 0.1, 1.0))
        for v in (0.001, 0.05, 0.05, 0.5, 2.0):
            h.observe(v)
        cum = h.cumulative_counts()
        assert cum.tolist() == [1, 3, 4, 5]
        assert cum[-1] == h.count == 5

    def test_sum_count_and_mean(self):
        h = Histogram("lat", edges=(1.0,))
        h.observe(0.25)
        h.observe(0.75)
        assert h.count == 2
        assert h.sum == pytest.approx(1.0)
        assert h.value == pytest.approx(0.5)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("lat", edges=(0.1, 0.1))
        with pytest.raises(ValueError):
            Histogram("lat", edges=())

    def test_observe_does_not_allocate_bucket_array(self):
        h = Histogram("lat", edges=(0.01, 0.1))
        before = h._counts
        h.observe(0.05)
        assert h._counts is before  # preallocated, mutated in place


class TestRegistryIdentity:
    def test_same_name_and_labels_return_same_instance(self):
        reg = MetricsRegistry()
        a = reg.counter("serve_requests_total", shard="0")
        b = reg.counter("serve_requests_total", shard="0")
        assert a is b

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", a="1", b="2")
        b = reg.counter("x", b="2", a="1")
        assert a is b

    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x", shard="0")
        b = reg.counter("x", shard="1")
        assert a is not b
        a.inc(3)
        assert reg.value("x", shard="0") == 3
        assert reg.value("x", shard="1") == 0
        assert reg.total("x") == 3

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counters_survive_holder_replacement(self):
        # The QueryStats-survival property in miniature: a "rebuilt
        # component" re-requesting its counter continues the series.
        reg = MetricsRegistry()
        reg.counter("requests_total", shard="2").inc(10)
        again = reg.counter("requests_total", shard="2")
        again.inc(5)
        assert reg.value("requests_total", shard="2") == 15

    def test_default_buckets_flow_into_histograms(self):
        reg = MetricsRegistry(default_buckets=(0.5, 1.0))
        assert reg.histogram("lat").edges == (0.5, 1.0)
        assert reg.histogram("lat2", edges=(2.0,)).edges == (2.0,)

    def test_as_dict_and_collect(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b", k="v").set(7)
        flat = reg.as_dict()
        assert flat["a"] == 2
        assert flat['b{k="v"}'] == 7
        assert len(reg) == 2
        assert [m.name for m in reg.collect()] == ["a", "b"]

    def test_registry_pickles(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(4)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.value("a") == 4
        assert clone.histogram("h").count == 1


class TestThreadSafety:
    def test_threads_and_asyncio_share_one_registry(self):
        """Asyncio tasks and pool threads hammer the same metric series."""
        reg = MetricsRegistry()
        counter = reg.counter("hits_total")
        hist = reg.histogram("lat", edges=(0.5,))
        n_threads, per_thread = 8, 2_000

        def worker():
            for _ in range(per_thread):
                counter.inc()
                hist.observe(0.1)

        async def async_side():
            async def task():
                for _ in range(per_thread):
                    counter.inc()
                    hist.observe(0.9)
                    await asyncio.sleep(0)

            await asyncio.gather(*(task() for _ in range(4)))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        asyncio.run(async_side())
        for t in threads:
            t.join()

        expected = (n_threads + 4) * per_thread
        assert counter.value == expected
        assert hist.count == expected
        assert hist.bucket_counts().tolist() == [
            n_threads * per_thread,
            4 * per_thread,
        ]


class TestNullRegistry:
    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("a", any="label").inc(5)
        reg.gauge("b").set(3)
        reg.histogram("c").observe(1.0)
        assert reg.value("a") == 0.0
        assert reg.total("a") == 0.0
        assert len(reg) == 0
        assert reg.collect() == []
        assert reg.as_dict() == {}
        assert not reg.enabled

    def test_null_metrics_are_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.histogram("a") is reg.histogram("b")

    def test_default_buckets_constant_matches_config(self):
        from repro.config import DEFAULT_OBS

        assert tuple(DEFAULT_BUCKETS) == tuple(DEFAULT_OBS.latency_buckets_s)
        assert np.all(np.diff(DEFAULT_BUCKETS) > 0)
