"""Tests for track geometry and truth sampling."""

import numpy as np
import pytest

from repro.surface.track import TrackSpec, generate_track, track_through_scene


class TestTrackSpec:
    def test_direction_is_unit_vector(self):
        track = TrackSpec(0.0, 0.0, azimuth_deg=30.0, length_m=1000.0)
        dx, dy = track.direction
        assert np.hypot(dx, dy) == pytest.approx(1.0)

    def test_points_along_north_track(self):
        track = TrackSpec(100.0, 200.0, azimuth_deg=0.0, length_m=1000.0)
        x, y = track.points(np.array([0.0, 500.0, 1000.0]))
        np.testing.assert_allclose(x, [100.0, 100.0, 100.0])
        np.testing.assert_allclose(y, [200.0, 700.0, 1200.0])

    def test_points_outside_length_rejected(self):
        track = TrackSpec(0.0, 0.0, azimuth_deg=0.0, length_m=100.0)
        with pytest.raises(ValueError):
            track.points(np.array([150.0]))
        with pytest.raises(ValueError):
            track.points(np.array([-1.0]))

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            TrackSpec(0.0, 0.0, 0.0, 0.0)


class TestGenerateTrack:
    def test_track_fits_in_scene(self, scene):
        track = generate_track(scene, length_m=5_000.0, rng=3)
        s = np.linspace(0.0, track.length_m, 50)
        x, y = track.points(s)
        assert scene.contains(x, y).all()

    def test_track_too_long_rejected(self, scene):
        with pytest.raises(ValueError):
            generate_track(scene, length_m=scene.config.height_m * 2.0)

    def test_default_length_is_80_percent_of_scene(self, scene):
        track = generate_track(scene, rng=1)
        assert track.length_m == pytest.approx(0.8 * scene.config.height_m)

    def test_deterministic_in_seed(self, scene):
        a = generate_track(scene, length_m=4_000.0, rng=7)
        b = generate_track(scene, length_m=4_000.0, rng=7)
        assert a.start_x_m == b.start_x_m
        assert a.azimuth_deg == b.azimuth_deg


class TestTrackThroughScene:
    def test_truth_table_fields_and_lengths(self, scene, track):
        truth = track_through_scene(scene, track, spacing_m=10.0)
        n = truth["along_track_m"].shape[0]
        for key in ("x_m", "y_m", "lat_deg", "lon_deg", "surface_class", "freeboard_m", "sea_level_m", "surface_height_m"):
            assert truth[key].shape[0] == n

    def test_surface_height_consistency(self, scene, track):
        truth = track_through_scene(scene, track, spacing_m=25.0)
        np.testing.assert_allclose(
            truth["surface_height_m"], truth["sea_level_m"] + truth["freeboard_m"]
        )

    def test_latitudes_are_antarctic(self, scene, track):
        truth = track_through_scene(scene, track, spacing_m=100.0)
        assert np.all(truth["lat_deg"] < -60.0)

    def test_spacing_must_be_positive(self, scene, track):
        with pytest.raises(ValueError):
            track_through_scene(scene, track, spacing_m=0.0)
