"""Integration tests: the full Fig. 1 workflow on a small scene."""

import numpy as np
import pytest

from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import (
    ExperimentConfig,
    prepare_experiment_data,
    run_end_to_end,
)


@pytest.fixture(scope="module")
def small_config():
    return ExperimentConfig(
        scene=SceneConfig(width_m=10_000.0, height_m=10_000.0, open_water_fraction=0.12,
                          thin_ice_fraction=0.18, thick_ice_fraction=0.70, n_leads=8),
        epochs=3,
        seed=7,
        drift_m=(120.0, 180.0),
    )


@pytest.fixture(scope="module")
def outputs(small_config):
    return run_end_to_end(small_config)


class TestPrepareExperimentData:
    def test_stage1_products_consistent(self, small_config):
        data = prepare_experiment_data(small_config)
        assert set(data.segments) == set(data.granule.beam_names)
        for name, seg in data.segments.items():
            assert data.labels[name].shape[0] == seg.n_segments
            assert data.auto_labels[name].n_segments == seg.n_segments

    def test_labels_are_reasonably_accurate(self, outputs):
        data = outputs.data
        for name, seg in data.segments.items():
            labels = data.labels[name]
            truth = seg.truth_class
            valid = (labels >= 0) & (truth >= 0)
            accuracy = (labels[valid] == truth[valid]).mean()
            assert accuracy > 0.75

    def test_combined_segments_concatenate_beams(self, outputs):
        segments, labels = outputs.data.combined_segments_and_labels()
        total = sum(s.n_segments for s in outputs.data.segments.values())
        assert segments.n_segments == total
        assert labels.shape[0] == total


class TestEndToEndOutputs:
    def test_classifier_accuracy(self, outputs):
        # Small scene and 3 epochs: well below the paper's 96.56 % but the
        # model must clearly beat chance (33 %) and the majority class is not
        # enough to reach this bar together with macro-averaged recall.
        assert outputs.classifier.accuracy > 0.80

    def test_classification_matches_simulator_truth(self, outputs):
        name = sorted(outputs.classified)[0]
        track = outputs.classified[name]
        truth = track.segments.truth_class
        valid = truth >= 0
        assert (track.labels[valid] == truth[valid]).mean() > 0.85

    def test_freeboard_products_present_for_every_beam(self, outputs):
        assert set(outputs.freeboard) == set(outputs.classified)
        assert set(outputs.atl07) == set(outputs.classified)
        assert set(outputs.atl10) == set(outputs.classified)

    def test_freeboard_tracks_truth(self, outputs):
        name = sorted(outputs.freeboard)[0]
        fb = outputs.freeboard[name]
        seg = outputs.classified[name].segments
        truth_fb = outputs.data.scene.freeboard(seg.x_m, seg.y_m)
        ice = fb.ice_mask()
        bias = np.nanmean(fb.freeboard_m[ice] - truth_fb[ice])
        assert abs(bias) < 0.35

    def test_higher_resolution_than_baseline(self, outputs):
        """The paper's headline claim: the 2 m product is far denser than ATL07/ATL10."""
        name = sorted(outputs.freeboard)[0]
        fb = outputs.freeboard[name]
        atl07 = outputs.atl07[name]
        atl03_per_km = fb.n_segments / ((fb.along_track_m.max() - fb.along_track_m.min()) / 1000.0)
        assert atl03_per_km > 5.0 * atl07.points_per_km()

    def test_sea_surface_within_physical_range(self, outputs):
        name = sorted(outputs.freeboard)[0]
        fb = outputs.freeboard[name]
        scene = outputs.data.scene
        seg = outputs.classified[name].segments
        truth_sl = scene.sea_level(seg.x_m, seg.y_m)
        assert np.nanmean(np.abs(fb.sea_surface_m - truth_sl)) < 0.35

    def test_drift_estimate_recorded(self, outputs):
        assert outputs.data.drift is not None
        assert outputs.data.drift.distance_m <= 800.0 * np.sqrt(2) + 1e-6

    def test_mlp_variant_runs(self, small_config):
        import dataclasses

        cfg = dataclasses.replace(small_config, model_kind="mlp", epochs=2)
        outputs = run_end_to_end(cfg)
        assert outputs.classifier.kind == "mlp"
        assert outputs.classifier.accuracy > 0.6
