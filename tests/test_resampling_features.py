"""Tests for per-segment feature extraction and sequence construction."""

import numpy as np
import pytest

from repro.resampling.features import (
    FEATURE_NAMES,
    extract_features,
    feature_matrix,
    grouped_sequence_windows,
    sequence_windows,
)


class TestExtractFeatures:
    def test_six_features_defined(self, segments):
        features = extract_features(segments)
        assert set(features) == set(FEATURE_NAMES)
        for name in FEATURE_NAMES:
            assert features[name].shape == (segments.n_segments,)

    def test_all_finite(self, segments):
        features = extract_features(segments)
        for name, values in features.items():
            assert np.all(np.isfinite(values)), name

    def test_change_features_are_differences(self, segments):
        features = extract_features(segments)
        rate = np.nan_to_num(segments.photon_rate, nan=0.0)
        expected_mid = 0.5 * (rate[2:] - rate[:-2])
        np.testing.assert_allclose(features["photon_rate_change"][1:-1], expected_mid)


class TestFeatureMatrix:
    def test_normalised_matrix_statistics(self, segments):
        X, (mean, std) = feature_matrix(segments, normalize=True)
        assert X.shape == (segments.n_segments, 6)
        np.testing.assert_allclose(X.mean(axis=0), 0.0, atol=1e-9)
        # Columns with non-zero variance are standardised to unit variance.
        col_std = X.std(axis=0)
        assert np.all((np.abs(col_std - 1.0) < 1e-6) | (col_std < 1e-12))

    def test_raw_matrix_passthrough(self, segments):
        X, (mean, std) = feature_matrix(segments, normalize=False)
        np.testing.assert_allclose(mean, 0.0)
        np.testing.assert_allclose(std, 1.0)

    def test_reusing_stats_matches_training_scaling(self, segments):
        X1, stats = feature_matrix(segments, normalize=True)
        X2, _ = feature_matrix(segments, normalize=True, stats=stats)
        np.testing.assert_allclose(X1, X2)

    def test_bad_stats_shape_rejected(self, segments):
        with pytest.raises(ValueError):
            feature_matrix(segments, normalize=True, stats=(np.zeros(3), np.ones(3)))


class TestSequenceWindows:
    def test_shape(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        seqs = sequence_windows(X, sequence_length=5)
        assert seqs.shape == (10, 5, 2)

    def test_centre_element_is_the_segment(self):
        X = np.arange(30, dtype=float).reshape(15, 2)
        seqs = sequence_windows(X, sequence_length=5)
        np.testing.assert_allclose(seqs[:, 2, :], X)

    def test_interior_window_contains_neighbours(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        seqs = sequence_windows(X, sequence_length=5)
        np.testing.assert_allclose(seqs[5], X[3:8])

    def test_edges_are_padded_with_nearest(self):
        X = np.arange(10, dtype=float).reshape(5, 2)
        seqs = sequence_windows(X, sequence_length=5)
        np.testing.assert_allclose(seqs[0, 0], X[0])
        np.testing.assert_allclose(seqs[0, 1], X[0])
        np.testing.assert_allclose(seqs[-1, -1], X[-1])

    def test_invalid_arguments_rejected(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError):
            sequence_windows(X, sequence_length=4)
        with pytest.raises(ValueError):
            sequence_windows(X, sequence_length=-1)
        with pytest.raises(ValueError):
            sequence_windows(np.zeros(4), sequence_length=3)


class TestGroupedSequenceWindows:
    def test_no_groups_is_plain_sequence_windows(self):
        X = np.arange(12, dtype=float).reshape(6, 2)
        np.testing.assert_array_equal(
            grouped_sequence_windows(X, 3, None), sequence_windows(X, 3)
        )

    def test_windows_never_cross_group_boundaries(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        groups = np.array([0, 0, 0, 0, 1, 1, 1, 1, 1, 1])
        result = grouped_sequence_windows(X, 3, groups)
        np.testing.assert_array_equal(result[:4], sequence_windows(X[:4], 3))
        np.testing.assert_array_equal(result[4:], sequence_windows(X[4:], 3))
        # The last window of group 0 is edge-padded from its own group, not
        # from the first segment of group 1.
        np.testing.assert_array_equal(result[3, 2], X[3])

    def test_group_length_must_match(self):
        with pytest.raises(ValueError, match="one entry per segment"):
            grouped_sequence_windows(np.zeros((4, 2)), 3, np.array([0, 0, 1]))


class TestGroupedFeatures:
    def test_pooled_features_with_groups_match_per_track_features(self, segments):
        # Pooling two copies of a track with group ids must yield exactly the
        # per-track features stacked — i.e. the along-track change features
        # do not leak across the pooling boundary.
        from repro.resampling.window import concatenate_segments

        pooled = concatenate_segments([segments, segments])
        n = segments.n_segments
        groups = np.repeat([0, 1], n)
        X_pooled, _ = feature_matrix(pooled, normalize=False, groups=groups)
        X_single, _ = feature_matrix(segments, normalize=False)
        np.testing.assert_array_equal(X_pooled, np.vstack([X_single, X_single]))

    def test_without_groups_boundary_features_leak(self, segments):
        # Sanity check of the test above: omitting groups does mix the
        # boundary, which is exactly what grouped extraction prevents.
        from repro.resampling.window import concatenate_segments

        pooled = concatenate_segments([segments, segments])
        X_pooled, _ = feature_matrix(pooled, normalize=False)
        X_single, _ = feature_matrix(segments, normalize=False)
        assert not np.array_equal(X_pooled, np.vstack([X_single, X_single]))
