"""Tests for the synthetic Ross Sea ice scene."""

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.surface.scene import IceScene, SceneConfig, generate_scene


class TestSceneConfig:
    def test_grid_size(self):
        cfg = SceneConfig(width_m=5_000.0, height_m=2_500.0, pixel_size_m=10.0)
        assert cfg.nx == 500
        assert cfg.ny == 250

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SceneConfig(thick_ice_fraction=0.5, thin_ice_fraction=0.5, open_water_fraction=0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            SceneConfig(thick_ice_fraction=1.2, thin_ice_fraction=-0.1, open_water_fraction=-0.1)

    def test_pixel_size_positive(self):
        with pytest.raises(ValueError):
            SceneConfig(pixel_size_m=0.0)


class TestGenerateScene:
    def test_class_fractions_close_to_config(self, scene):
        fractions = scene.class_fractions()
        cfg = scene.config
        assert fractions[CLASS_THICK_ICE] == pytest.approx(cfg.thick_ice_fraction, abs=0.08)
        # Leads are carved on top of the base field so open water can exceed
        # its configured fraction slightly, at the expense of the others.
        assert fractions[CLASS_OPEN_WATER] >= cfg.open_water_fraction * 0.5

    def test_deterministic_in_seed(self):
        cfg = SceneConfig(width_m=3_000.0, height_m=3_000.0)
        a = generate_scene(cfg, seed=9)
        b = generate_scene(cfg, seed=9)
        np.testing.assert_array_equal(a.class_map, b.class_map)
        np.testing.assert_array_equal(a.freeboard_map, b.freeboard_map)

    def test_different_seeds_differ(self):
        cfg = SceneConfig(width_m=3_000.0, height_m=3_000.0)
        a = generate_scene(cfg, seed=1)
        b = generate_scene(cfg, seed=2)
        assert not np.array_equal(a.class_map, b.class_map)

    def test_open_water_has_zero_freeboard(self, scene):
        water = scene.class_map == CLASS_OPEN_WATER
        assert np.all(scene.freeboard_map[water] == 0.0)

    def test_freeboard_never_negative(self, scene):
        assert np.all(scene.freeboard_map >= 0.0)

    def test_thick_ice_higher_than_thin_ice(self, scene):
        thick = scene.freeboard_map[scene.class_map == CLASS_THICK_ICE]
        thin = scene.freeboard_map[scene.class_map == CLASS_THIN_ICE]
        assert thick.mean() > thin.mean()


class TestIceSceneQueries:
    def test_classify_matches_class_map(self, scene):
        cfg = scene.config
        # Query the centre of pixel (5, 7).
        x = cfg.origin_x_m + 7.5 * cfg.pixel_size_m
        y = cfg.origin_y_m + 5.5 * cfg.pixel_size_m
        assert scene.classify(np.array([x]), np.array([y]))[0] == scene.class_map[5, 7]

    def test_surface_height_is_sea_level_plus_freeboard(self, scene, rng):
        x = rng.uniform(*scene.extent[:2], 100)
        y = rng.uniform(*scene.extent[2:], 100)
        np.testing.assert_allclose(
            scene.surface_height(x, y),
            scene.sea_level(x, y) + scene.freeboard(x, y),
        )

    def test_sea_level_amplitude_bounded(self, scene, rng):
        x = rng.uniform(*scene.extent[:2], 500)
        y = rng.uniform(*scene.extent[2:], 500)
        sl = scene.sea_level(x, y)
        cfg = scene.config
        assert np.all(np.abs(sl - cfg.sea_level_mean_m) <= 1.5 * cfg.sea_level_amplitude_m + 1e-9)

    def test_contains(self, scene):
        x_min, x_max, y_min, y_max = scene.extent
        inside = scene.contains(np.array([(x_min + x_max) / 2]), np.array([(y_min + y_max) / 2]))
        outside = scene.contains(np.array([x_max + 100.0]), np.array([y_min]))
        assert bool(inside[0]) and not bool(outside[0])

    def test_mismatched_map_shapes_rejected(self, scene):
        cfg = scene.config
        with pytest.raises(ValueError):
            IceScene(cfg, scene.class_map[:-1], scene.freeboard_map, (0, 0.1, 1e4, 0))
        with pytest.raises(ValueError):
            IceScene(cfg, scene.class_map, scene.freeboard_map[:, :-1], (0, 0.1, 1e4, 0))
