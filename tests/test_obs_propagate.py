"""Cross-process trace propagation: harvest, graft, and the merged tree."""

from __future__ import annotations

import pytest

from repro.distributed.mapreduce import MapReduceEngine
from repro.obs.core import Obs, default_obs
from repro.obs.export import chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.propagate import (
    TraceContext,
    TracedTask,
    WorkerTelemetry,
    current_context,
    merge_worker_telemetry,
)
from repro.serve.clock import VirtualClock


def _instrumented_sum(partition):
    """Module-level (picklable) map function feeding the worker-local obs."""
    obs = default_obs()
    with obs.span("worker.compute"):
        obs.counter("worker_items_total").inc(len(partition))
        obs.histogram("worker_batch_size", edges=(2.0, 8.0)).observe(len(partition))
        return sum(partition)


def _load_items():
    return list(range(12))


def _sum_parts(parts):
    return sum(parts)


class TestCurrentContext:
    def test_none_outside_any_span(self):
        obs = Obs(clock=VirtualClock())
        assert current_context(obs.tracer) is None

    def test_captures_innermost_open_span(self):
        obs = Obs(clock=VirtualClock())
        with obs.span("outer"), obs.span("inner") as inner:
            ctx = current_context(obs.tracer)
        assert ctx == TraceContext(trace_id=inner.trace_id, span_id=inner.span_id)


class TestTracedTask:
    def test_returns_value_and_relative_telemetry(self):
        value, telemetry = TracedTask(lambda: 41 + 1)()
        assert value == 42
        assert isinstance(telemetry, WorkerTelemetry)
        names = [row[2] for row in telemetry.spans]
        assert "mapreduce.task" in names
        # Times are relative to the task root: the root starts at 0.
        root = next(row for row in telemetry.spans if row[2] == "mapreduce.task")
        assert root[3] == pytest.approx(0.0)
        assert root[5]["pid"] > 0

    def test_worker_obs_is_default_during_task_and_restored_after(self):
        before = default_obs()

        def probe():
            return default_obs()

        value, _ = TracedTask(probe)()
        assert value is not before
        assert default_obs() is before

    def test_harvest_collects_only_touched_metrics(self):
        def work():
            obs = default_obs()
            obs.counter("touched_total").inc(3)
            obs.counter("untouched_total")  # created, never incremented
            obs.gauge("level").set(7.0)
            return None

        _, telemetry = TracedTask(work)()
        counters = {name: value for name, _, value in telemetry.counters}
        assert counters == {"touched_total": 3}
        assert ("level", (), 7.0) in telemetry.gauges


class TestMergeWorkerTelemetry:
    def run_task_and_merge(self, driver, **extra):
        value, telemetry = TracedTask(
            lambda: _instrumented_sum([1, 2, 3]),
            context=current_context(driver.tracer),
        )()
        return value, merge_worker_telemetry(driver, telemetry, **extra)

    def test_metrics_fold_into_driver_registry(self):
        driver = Obs(clock=VirtualClock())
        driver.counter("worker_items_total").inc(10)  # pre-existing count
        self.run_task_and_merge(driver)
        assert driver.registry.total("worker_items_total") == 13
        hist = driver.registry.find("worker_batch_size")[0]
        assert hist.count == 1 and hist.sum == pytest.approx(3.0)

    def test_spans_graft_under_current_driver_span(self):
        driver = Obs(clock=VirtualClock())
        with driver.span("mapreduce.map") as map_span:
            self.run_task_and_merge(driver)
        spans = {s.name: s for s in driver.tracer.spans()}
        task = spans["mapreduce.task"]
        compute = spans["worker.compute"]
        assert task.parent_id == map_span.span_id
        assert task.trace_id == map_span.trace_id
        assert compute.parent_id == task.span_id
        # Fresh driver ids, not the worker's locals.
        assert task.span_id != compute.span_id

    def test_graft_root_takes_extra_attributes(self):
        driver = Obs(clock=VirtualClock())
        with driver.span("mapreduce.map"):
            self.run_task_and_merge(driver, shard=4)
        spans = {s.name: s for s in driver.tracer.spans()}
        assert spans["mapreduce.task"].attributes["shard"] == 4
        assert "shard" not in spans["worker.compute"].attributes

    def test_merge_without_open_span_falls_back_to_shipped_context(self):
        driver = Obs(clock=VirtualClock())
        with driver.span("mapreduce.map") as map_span:
            value, telemetry = TracedTask(
                lambda: 1, context=current_context(driver.tracer)
            )()
        # The map span already closed; the shipped context still anchors it.
        merge_worker_telemetry(driver, telemetry)
        task = next(s for s in driver.tracer.spans() if s.name == "mapreduce.task")
        assert task.trace_id == map_span.trace_id
        assert task.parent_id == map_span.span_id

    def test_subtree_reanchored_on_driver_clock(self):
        clock = VirtualClock()
        driver = Obs(clock=clock)
        clock.tick(100.0)
        _, telemetry = TracedTask(lambda: None)()
        with driver.span("mapreduce.map"):
            merge_worker_telemetry(driver, telemetry)
        task = next(s for s in driver.tracer.spans() if s.name == "mapreduce.task")
        # The grafted subtree ends "now" on the driver clock and keeps its
        # shipped duration.
        assert task.end == pytest.approx(clock.now())
        assert task.duration == pytest.approx(telemetry.duration)

    def test_disabled_driver_merges_nothing_quietly(self):
        from repro.config import ObsConfig

        driver = Obs(ObsConfig(enabled=False))
        _, telemetry = TracedTask(lambda: None)()
        assert merge_worker_telemetry(driver, telemetry) == ()


class TestEngineThreadPropagation:
    def test_thread_tasks_are_children_of_map_span(self):
        from repro.obs.core import set_default_obs

        obs = Obs(clock=VirtualClock())
        # Threads share the driver's obs: point the module-level map
        # function's default_obs() at it for the duration.
        previous = set_default_obs(obs)
        try:
            engine = MapReduceEngine(n_partitions=3, executor="thread", obs=obs)
            with engine:
                result = engine.run(_load_items, _instrumented_sum, _sum_parts)
        finally:
            set_default_obs(previous)
        assert result.value == sum(range(12))
        spans = obs.tracer.spans()
        map_span = next(s for s in spans if s.name == "mapreduce.map")
        tasks = [s for s in spans if s.name == "mapreduce.task"]
        assert len(tasks) == 3
        for task in tasks:
            assert task.parent_id == map_span.span_id
            assert task.trace_id == map_span.trace_id
        computes = [s for s in spans if s.name == "worker.compute"]
        assert {c.parent_id for c in computes} == {t.span_id for t in tasks}


class TestEngineProcessPropagation:
    def test_worker_spans_merge_as_children_of_map_span(self):
        obs = Obs(clock=VirtualClock())
        engine = MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, obs=obs
        )
        with engine:
            result = engine.run(_load_items, _instrumented_sum, _sum_parts)
        assert result.value == sum(range(12))
        spans = obs.tracer.spans()
        map_span = next(s for s in spans if s.name == "mapreduce.map")
        tasks = [s for s in spans if s.name == "mapreduce.task"]
        assert len(tasks) == 3
        for task in tasks:
            assert task.parent_id == map_span.span_id
            assert task.trace_id == map_span.trace_id
            assert task.attributes["pid"] > 0
        computes = [s for s in spans if s.name == "worker.compute"]
        assert {c.parent_id for c in computes} == {t.span_id for t in tasks}
        # Worker metric deltas landed in the driver registry.
        assert obs.registry.total("worker_items_total") == 12

    def test_chrome_export_lays_workers_on_process_tracks(self):
        obs = Obs(clock=VirtualClock())
        engine = MapReduceEngine(
            n_partitions=2, executor="process", max_workers=2, obs=obs
        )
        with engine:
            engine.run(_load_items, _instrumented_sum, _sum_parts)
        doc = chrome_trace(obs.tracer.spans(), process_name="repro")
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        span_events = [e for e in events if e["ph"] == "X"]
        by_name = {}
        for e in span_events:
            by_name.setdefault(e["name"], []).append(e)
        driver_pid = by_name["mapreduce.map"][0]["pid"]
        worker_pids = {e["pid"] for e in by_name["mapreduce.task"]}
        assert driver_pid == 1
        assert worker_pids and 1 not in worker_pids
        # Worker tasks remain true children of the driver's map span.
        map_id = by_name["mapreduce.map"][0]["args"]["span_id"]
        assert all(
            e["args"]["parent_id"] == map_id for e in by_name["mapreduce.task"]
        )
        labels = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "process_name"
        }
        assert (1, "repro driver") in labels
        for pid in worker_pids:
            assert (pid, f"repro worker pid={pid}") in labels
        assert any(e["name"] == "thread_name" for e in meta)


class TestMergeMetricsOnly:
    def test_histogram_delta_merges_bucketwise(self):
        worker = Obs(clock=VirtualClock())
        h = worker.histogram("lat", edges=(0.1, 1.0))
        for v in (0.05, 0.5, 3.0):
            h.observe(v)
        from repro.obs.propagate import harvest_worker_telemetry

        with worker.span("root") as root:
            pass
        telemetry = harvest_worker_telemetry(worker, root)
        driver = Obs(clock=VirtualClock())
        driver.histogram("lat", edges=(0.1, 1.0)).observe(0.05)
        merge_worker_telemetry(driver, telemetry)
        merged = driver.registry.find("lat")[0]
        assert merged.count == 4
        assert list(merged.bucket_counts()) == [2, 1, 1]
        assert merged.sum == pytest.approx(3.6)

    def test_disabled_registry_ignores_deltas(self):
        from repro.config import ObsConfig

        telemetry = WorkerTelemetry(counters=(("c_total", (), 5.0),))
        driver = Obs(ObsConfig(enabled=False))
        merge_worker_telemetry(driver, telemetry)
        assert driver.registry.total("c_total") == 0.0


def test_registry_survives_pickling_for_worker_payloads():
    import pickle

    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    clone = pickle.loads(pickle.dumps(reg))
    assert clone.total("c") == 2
