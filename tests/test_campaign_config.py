"""Unit tests: scenario-grid expansion, axis application and fingerprints."""

from dataclasses import replace

import numpy as np
import pytest

from repro.campaign.config import (
    CampaignConfig,
    apply_scenario,
    granule_seed,
)
from repro.config import SEASON_PRESETS
from repro.workflow.end_to_end import ExperimentConfig


class TestApplyScenario:
    def test_alias_axis_reaches_nested_field(self):
        cfg = apply_scenario(ExperimentConfig(), {"cloud_fraction": 0.42})
        assert cfg.s2.cloud.thin_cloud_fraction == 0.42

    def test_dotted_path_axis(self):
        cfg = apply_scenario(ExperimentConfig(), {"atl03.solar_elevation_deg": 5.0})
        assert cfg.atl03.solar_elevation_deg == 5.0

    def test_top_level_axis(self):
        cfg = apply_scenario(ExperimentConfig(), {"n_beams": 3})
        assert cfg.n_beams == 3

    def test_season_sets_all_three_fractions(self):
        for season, preset in SEASON_PRESETS.items():
            cfg = apply_scenario(ExperimentConfig(), {"season": season})
            assert cfg.scene.thick_ice_fraction == preset["thick_ice_fraction"]
            assert cfg.scene.thin_ice_fraction == preset["thin_ice_fraction"]
            assert cfg.scene.open_water_fraction == preset["open_water_fraction"]
            total = (
                cfg.scene.thick_ice_fraction
                + cfg.scene.thin_ice_fraction
                + cfg.scene.open_water_fraction
            )
            assert total == pytest.approx(1.0)

    def test_unknown_season_raises(self):
        with pytest.raises(ValueError, match="unknown season"):
            apply_scenario(ExperimentConfig(), {"season": "monsoon"})

    def test_open_water_fraction_renormalizes_ice_fractions(self):
        base = ExperimentConfig()
        cfg = apply_scenario(base, {"open_water_fraction": 0.3})
        scene = cfg.scene
        assert scene.open_water_fraction == pytest.approx(0.3)
        total = (
            scene.thick_ice_fraction + scene.thin_ice_fraction + scene.open_water_fraction
        )
        assert total == pytest.approx(1.0)
        # Ice classes keep their relative proportions.
        assert scene.thick_ice_fraction / scene.thin_ice_fraction == pytest.approx(
            base.scene.thick_ice_fraction / base.scene.thin_ice_fraction
        )

    def test_open_water_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError, match="open_water_fraction"):
            apply_scenario(ExperimentConfig(), {"open_water_fraction": 1.0})

    def test_open_water_fraction_sweep_expands(self):
        specs = CampaignConfig(grid={"open_water_fraction": (0.05, 0.2)}).expand()
        assert [s.config.scene.open_water_fraction for s in specs] == [0.05, 0.2]

    def test_scalar_drift_becomes_magnitude(self):
        cfg = apply_scenario(ExperimentConfig(), {"drift_m": 500.0})
        assert cfg.drift_m == (300.0, 400.0)
        assert np.hypot(*cfg.drift_m) == pytest.approx(500.0)

    def test_tuple_drift_passes_through(self):
        cfg = apply_scenario(ExperimentConfig(), {"drift_m": (100.0, 200.0)})
        assert cfg.drift_m == (100.0, 200.0)

    def test_list_values_coerced_to_tuple(self):
        cfg = apply_scenario(ExperimentConfig(), {"drift_m": [100.0, 200.0]})
        assert cfg.drift_m == (100.0, 200.0)

    def test_unknown_axis_raises(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            apply_scenario(ExperimentConfig(), {"no_such_knob": 1})

    def test_unknown_nested_axis_raises(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            apply_scenario(ExperimentConfig(), {"scene.no_such_field": 1})


class TestExpansion:
    def test_grid_size_and_row_major_order(self):
        config = CampaignConfig(
            grid={"n_beams": (1, 2), "cloud_fraction": (0.1, 0.2, 0.3)}, seed=1
        )
        assert config.n_granules == 6
        specs = config.expand()
        assert len(specs) == 6
        # Row-major: the first axis varies slowest.
        beams = [spec.scenario_dict()["n_beams"] for spec in specs]
        clouds = [spec.scenario_dict()["cloud_fraction"] for spec in specs]
        assert beams == [1, 1, 1, 2, 2, 2]
        assert clouds == [0.1, 0.2, 0.3, 0.1, 0.2, 0.3]

    def test_granule_ids_unique_and_descriptive(self):
        specs = CampaignConfig(grid={"cloud_fraction": (0.1, 0.25)}).expand()
        ids = [spec.granule_id for spec in specs]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "g000-cloud_fraction=0.1"
        assert ids[1] == "g001-cloud_fraction=0.25"

    def test_scenario_applied_to_config(self):
        specs = CampaignConfig(grid={"cloud_fraction": (0.1, 0.25)}).expand()
        assert specs[0].config.s2.cloud.thin_cloud_fraction == 0.1
        assert specs[1].config.s2.cloud.thin_cloud_fraction == 0.25

    def test_replicates_multiply_and_get_distinct_seeds(self):
        config = CampaignConfig(grid={"n_beams": (1, 2)}, replicates=3, seed=9)
        specs = config.expand()
        assert len(specs) == 6
        assert all("-r" in spec.granule_id for spec in specs)
        seeds = [spec.config.seed for spec in specs]
        assert len(set(seeds)) == len(seeds)

    def test_expansion_is_deterministic(self):
        config = CampaignConfig(grid={"cloud_fraction": (0.1, 0.2)}, seed=4)
        first = config.expand()
        second = config.expand()
        assert [s.granule_id for s in first] == [s.granule_id for s in second]
        assert [s.config for s in first] == [s.config for s in second]

    def test_empty_grid_yields_single_granule(self):
        specs = CampaignConfig(seed=2).expand()
        assert len(specs) == 1
        assert specs[0].granule_id == "g000"
        assert specs[0].scenario == ()

    def test_grid_accepts_canonical_tuple_form(self):
        config = CampaignConfig(grid=(("n_beams", (1, 2)),))
        assert config.n_granules == 2


class TestGranuleSeed:
    def test_deterministic(self):
        assert granule_seed(7, 3) == granule_seed(7, 3)

    def test_varies_with_index_and_campaign_seed(self):
        seeds = {granule_seed(7, i) for i in range(16)}
        assert len(seeds) == 16
        assert granule_seed(7, 0) != granule_seed(8, 0)


class TestValidation:
    def test_bad_replicates(self):
        with pytest.raises(ValueError, match="replicates"):
            CampaignConfig(replicates=0)

    def test_bad_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            CampaignConfig(n_workers=0)

    def test_bad_executor(self):
        with pytest.raises(ValueError, match="executor"):
            CampaignConfig(executor="spark")

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="at least one value"):
            CampaignConfig(grid={"cloud_fraction": ()})

    @pytest.mark.parametrize(
        "axis",
        [
            "model_kind",
            "epochs",
            "window_length_m",
            "seed",
            "training.learning_rate",
            "lstm.lstm_units",
        ],
    )
    def test_campaign_level_training_axes_rejected(self, axis):
        # One classifier is trained for the whole campaign: sweeping a
        # training knob per granule would be silently ignored, so it must
        # fail at construction.
        with pytest.raises(ValueError, match="campaign-wide"):
            CampaignConfig(grid={axis: (1, 2)})


class TestFingerprint:
    def test_invariant_to_execution_knobs(self):
        config = CampaignConfig(grid={"cloud_fraction": (0.1, 0.2)}, seed=3)
        assert config.fingerprint() == replace(config, n_workers=8).fingerprint()
        assert config.fingerprint() == replace(config, executor="thread").fingerprint()
        assert config.fingerprint() == replace(config, cache_dir="/tmp/x").fingerprint()
        assert config.fingerprint() == replace(config, use_shm=False).fingerprint()

    def test_sensitive_to_science_knobs(self):
        config = CampaignConfig(grid={"cloud_fraction": (0.1, 0.2)}, seed=3)
        assert config.fingerprint() != replace(config, seed=4).fingerprint()
        assert config.fingerprint() != replace(config, replicates=2).fingerprint()
        assert (
            config.fingerprint()
            != CampaignConfig(grid={"cloud_fraction": (0.1, 0.3)}, seed=3).fingerprint()
        )
        assert (
            config.fingerprint()
            != replace(
                config, base=replace(ExperimentConfig(), epochs=9)
            ).fingerprint()
        )

    def test_stable_across_calls(self):
        config = CampaignConfig(grid={"cloud_fraction": (0.1,)}, seed=3)
        assert config.fingerprint() == config.fingerprint()


class TestUniqueGranuleIds:
    def test_expansion_ids_are_unique(self):
        config = CampaignConfig(
            grid={"cloud_fraction": (0.1, 0.2), "n_beams": (1, 2)}, replicates=2
        )
        specs = config.expand()
        assert len({spec.granule_id for spec in specs}) == len(specs)

    def test_duplicate_ids_rejected_with_clear_error(self):
        from dataclasses import replace as dc_replace

        from repro.campaign.config import _ensure_unique_granule_ids

        specs = CampaignConfig(grid={"cloud_fraction": (0.1, 0.2)}).expand()
        clashing = [specs[0], dc_replace(specs[1], granule_id=specs[0].granule_id)]
        with pytest.raises(ValueError, match="duplicate granule_id"):
            _ensure_unique_granule_ids(clashing)
