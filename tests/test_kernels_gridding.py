"""Property-based equivalence tests for the Level-3 gridding kernels.

The vectorized binning engine (composite-key ``bincount`` sums, segmented
``lexsort`` medians/MADs) must agree with the pure-loop reference backend to
1e-10 on randomized inputs, including the degenerate corners: empty cells,
single-segment cells (std/MAD must be 0.0 by convention, not garbage),
duplicate values and completely empty inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import gridding as kgrid

HYPOTHESIS_SETTINGS = dict(max_examples=40, deadline=None)


def assert_equiv(a, b, label, atol=1e-10):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    assert a.shape == b.shape, label
    assert np.array_equal(np.isnan(a), np.isnan(b)), f"{label}: NaN pattern differs"
    assert np.allclose(a, b, atol=atol, rtol=0.0, equal_nan=True), (
        f"{label}: max |diff| = {np.nanmax(np.abs(a - b))}"
    )


def both_statistics(idx, values, n_cells):
    ref = kgrid.cell_statistics_reference(idx, values, n_cells)
    vec = kgrid.cell_statistics_vectorized(idx, values, n_cells)
    for r, v, label in zip(ref, vec, ("count", "mean", "median", "std", "mad")):
        assert_equiv(r, v, label)
    return ref


class TestCellStatisticsEquivalence:
    @given(
        n_cells=st.integers(min_value=1, max_value=50),
        n_points=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**HYPOTHESIS_SETTINGS)
    def test_random_occupancy(self, n_cells, n_points, seed):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, n_cells, n_points)
        values = rng.normal(0.3, 0.2, n_points)
        both_statistics(idx, values, n_cells)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**HYPOTHESIS_SETTINGS)
    def test_duplicate_values_and_ties(self, seed):
        rng = np.random.default_rng(seed)
        n_points = int(rng.integers(1, 200))
        idx = rng.integers(0, 7, n_points)
        # Heavily quantised values force median ties and even-count middles.
        values = np.round(rng.normal(0.0, 1.0, n_points), 1)
        both_statistics(idx, values, 7)

    def test_empty_input(self):
        count, mean, median, std, mad = both_statistics(
            np.empty(0, dtype=np.int64), np.empty(0), 5
        )
        np.testing.assert_array_equal(count, np.zeros(5, dtype=np.int64))
        assert np.isnan(mean).all() and np.isnan(median).all()
        assert np.isnan(std).all() and np.isnan(mad).all()

    def test_single_segment_cells_have_zero_spread(self):
        """The documented convention: one contributor -> std 0, MAD 0."""
        idx = np.array([0, 2, 4])
        values = np.array([0.31, -0.2, 1.7])
        count, mean, median, std, mad = both_statistics(idx, values, 5)
        np.testing.assert_array_equal(count, [1, 0, 1, 0, 1])
        occupied = count > 0
        np.testing.assert_array_equal(std[occupied], 0.0)
        np.testing.assert_array_equal(mad[occupied], 0.0)
        np.testing.assert_array_equal(mean[occupied], values)
        np.testing.assert_array_equal(median[occupied], values)
        assert np.isnan(mean[~occupied]).all()

    def test_all_points_in_one_cell_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0.0, 1.0, 101)
        idx = np.zeros(101, dtype=np.int64)
        count, mean, median, std, mad = both_statistics(idx, values, 3)
        assert count[0] == 101 and (count[1:] == 0).all()
        assert mean[0] == pytest.approx(np.mean(values), abs=1e-12)
        assert median[0] == np.median(values)
        assert std[0] == pytest.approx(np.std(values), abs=1e-12)
        assert mad[0] == np.median(np.abs(values - np.median(values)))

    def test_trailing_empty_cells(self):
        idx = np.array([0, 0, 1])
        values = np.array([1.0, 3.0, 5.0])
        count, mean, median, std, mad = both_statistics(idx, values, 10)
        assert count[0] == 2 and count[1] == 1
        assert (count[2:] == 0).all()
        assert np.isnan(mean[2:]).all()
        assert median[0] == 2.0  # even count -> mean of the two middles

    def test_out_of_range_index_rejected(self):
        for fn in (kgrid.cell_statistics_reference, kgrid.cell_statistics_vectorized):
            with pytest.raises(ValueError, match="out of range"):
                fn(np.array([-1]), np.array([1.0]), 4)
            with pytest.raises(ValueError, match="out of range"):
                fn(np.array([4]), np.array([1.0]), 4)

    def test_non_finite_values_rejected_by_both_backends(self):
        """NaN sorts differently than it reduces, so rather than letting the
        backends silently disagree, both enforce the finite-values contract."""
        for fn in (kgrid.cell_statistics_reference, kgrid.cell_statistics_vectorized):
            with pytest.raises(ValueError, match="finite"):
                fn(np.array([0, 0, 0]), np.array([1.0, 2.0, np.nan]), 1)
            with pytest.raises(ValueError, match="finite"):
                fn(np.array([0]), np.array([np.inf]), 1)


class TestClassCountsEquivalence:
    @given(
        n_cells=st.integers(min_value=1, max_value=40),
        n_points=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**HYPOTHESIS_SETTINGS)
    def test_random_occupancy_exact(self, n_cells, n_points, seed):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, n_cells, n_points)
        labels = rng.integers(0, 3, n_points)
        ref = kgrid.cell_class_counts_reference(idx, labels, n_cells, 3)
        vec = kgrid.cell_class_counts_vectorized(idx, labels, n_cells, 3)
        np.testing.assert_array_equal(ref, vec)
        assert ref.shape == (3, n_cells)
        assert int(ref.sum()) == n_points

    def test_label_out_of_range_rejected(self):
        for fn in (
            kgrid.cell_class_counts_reference,
            kgrid.cell_class_counts_vectorized,
        ):
            with pytest.raises(ValueError, match="labels"):
                fn(np.array([0]), np.array([3]), 4, 3)


class TestDispatch:
    def test_backend_switch_routes_both_kernels(self):
        rng = np.random.default_rng(11)
        idx = rng.integers(0, 9, 120)
        values = rng.normal(0.0, 1.0, 120)
        labels = rng.integers(0, 3, 120)
        with kernels.use_backend("reference"):
            stats_ref = kgrid.cell_statistics(idx, values, 9)
            counts_ref = kgrid.cell_class_counts(idx, labels, 9, 3)
        with kernels.use_backend("vectorized"):
            stats_vec = kgrid.cell_statistics(idx, values, 9)
            counts_vec = kgrid.cell_class_counts(idx, labels, 9, 3)
        for r, v, label in zip(stats_ref, stats_vec, ("count", "mean", "median", "std", "mad")):
            assert_equiv(r, v, label)
        np.testing.assert_array_equal(counts_ref, counts_vec)

    def test_explicit_backend_argument_bypasses_global(self):
        idx = np.array([0, 0, 1])
        values = np.array([1.0, 2.0, 3.0])
        with kernels.use_backend("vectorized"):
            ref = kgrid.cell_statistics(idx, values, 2, backend="reference")
            vec = kgrid.cell_statistics(idx, values, 2, backend="vectorized")
        for r, v, label in zip(ref, vec, ("count", "mean", "median", "std", "mad")):
            assert_equiv(r, v, label)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kgrid.cell_statistics(np.array([0]), np.array([1.0]), 1, backend="cuda")
