"""Tests for SegmentArray concatenation and its window-length validation."""

import numpy as np
import pytest

from repro.resampling.window import SegmentArray, concatenate_segments
from repro.workflow.end_to_end import ExperimentData


def make_segments(n: int, beam_name: str = "beam", window_length_m: float = 2.0) -> SegmentArray:
    arange = np.arange(n, dtype=float)
    return SegmentArray(
        beam_name=beam_name,
        window_length_m=window_length_m,
        center_along_track_m=arange * window_length_m + window_length_m / 2,
        start_along_track_m=arange * window_length_m,
        lat_deg=np.full(n, -72.0),
        lon_deg=np.full(n, -160.0),
        x_m=arange,
        y_m=arange,
        height_mean_m=np.full(n, 0.3),
        height_median_m=np.full(n, 0.3),
        height_std_m=np.full(n, 0.05),
        height_min_m=np.full(n, 0.1),
        height_max_m=np.full(n, 0.5),
        n_photons=np.full(n, 4, dtype=np.int64),
        n_high_conf=np.full(n, 2, dtype=np.int64),
        photon_rate=np.full(n, 1.4),
        background_rate_hz=np.full(n, 1e5),
        delta_time_s=arange,
        truth_class=np.zeros(n, dtype=np.int8),
    )


class TestConcatenateSegments:
    def test_concatenates_in_order(self):
        a = make_segments(3, "gt1l")
        b = make_segments(5, "gt2l")
        combined = concatenate_segments([a, b])
        assert combined.n_segments == 8
        assert combined.beam_name == "gt1l+gt2l"
        assert combined.window_length_m == 2.0
        np.testing.assert_array_equal(
            combined.x_m, np.concatenate([a.x_m, b.x_m])
        )

    def test_explicit_name(self):
        combined = concatenate_segments(
            [make_segments(2, "gt1l"), make_segments(2, "gt2l")], beam_name="pooled"
        )
        assert combined.beam_name == "pooled"

    def test_single_array_passthrough(self):
        a = make_segments(4, "gt1l")
        assert concatenate_segments([a]) is a

    def test_single_array_rename(self):
        a = make_segments(4, "gt1l")
        renamed = concatenate_segments([a], beam_name="other")
        assert renamed.beam_name == "other"
        assert renamed.n_segments == 4

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            concatenate_segments([])

    def test_mismatched_window_length_raises(self):
        a = make_segments(3, "gt1l", window_length_m=2.0)
        b = make_segments(3, "gt2l", window_length_m=4.0)
        with pytest.raises(ValueError, match="different window lengths"):
            concatenate_segments([a, b])


def _experiment_data(segments, labels) -> ExperimentData:
    # Only the segments/labels mappings are exercised by
    # combined_segments_and_labels; the curation products are not needed.
    return ExperimentData(
        scene=None,
        granule=None,
        image=None,
        segmentation=None,
        drift=None,
        segments=segments,
        auto_labels={},
        labels=labels,
        correction_reports={},
    )


class TestCombinedSegmentsAndLabels:
    def test_mismatched_beam_window_lengths_raise(self):
        data = _experiment_data(
            {"gt1l": make_segments(3, "gt1l", 2.0), "gt2l": make_segments(3, "gt2l", 4.0)},
            {"gt1l": np.zeros(3, dtype=np.int8), "gt2l": np.zeros(3, dtype=np.int8)},
        )
        with pytest.raises(ValueError, match="different window lengths"):
            data.combined_segments_and_labels()

    def test_mismatched_beam_sets_raise(self):
        data = _experiment_data(
            {"gt1l": make_segments(3, "gt1l")},
            {"gt2l": np.zeros(3, dtype=np.int8)},
        )
        with pytest.raises(ValueError, match="same beams"):
            data.combined_segments_and_labels()

    def test_combines_sorted_beams(self):
        data = _experiment_data(
            {"gt2l": make_segments(2, "gt2l"), "gt1l": make_segments(3, "gt1l")},
            {
                "gt2l": np.ones(2, dtype=np.int8),
                "gt1l": np.zeros(3, dtype=np.int8),
            },
        )
        segments, labels = data.combined_segments_and_labels()
        assert segments.n_segments == 5
        np.testing.assert_array_equal(labels, [0, 0, 0, 1, 1])

    def test_training_arrays_carry_per_beam_groups(self):
        data = _experiment_data(
            {"gt1l": make_segments(3, "gt1l"), "gt2l": make_segments(2, "gt2l")},
            {
                "gt1l": np.zeros(3, dtype=np.int8),
                "gt2l": np.ones(2, dtype=np.int8),
            },
        )
        segments, labels, groups = data.combined_training_arrays()
        assert segments.n_segments == 5
        np.testing.assert_array_equal(groups, [0, 0, 0, 1, 1])
