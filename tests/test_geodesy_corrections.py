"""Tests for the geophysical and first-photon-bias corrections."""

import numpy as np
import pytest

from repro.geodesy.corrections import (
    apply_geophysical_corrections,
    first_photon_bias_correction,
    geoid_undulation,
    inverted_barometer_correction,
    ocean_tide_correction,
)


class TestGeoid:
    def test_ross_sea_undulation_in_plausible_range(self):
        n = geoid_undulation(np.array([-75.0, -72.0]), np.array([-170.0, -150.0]))
        assert np.all(n < -45.0)
        assert np.all(n > -65.0)

    def test_smooth_in_space(self):
        lat = np.linspace(-78, -70, 100)
        lon = np.full(100, -160.0)
        n = geoid_undulation(lat, lon)
        assert np.max(np.abs(np.diff(n))) < 1.0


class TestTideAndBarometer:
    def test_tide_amplitude_bounded(self):
        t = np.linspace(0, 48 * 3600, 500)
        tide = ocean_tide_correction(t, np.full(500, -75.0))
        assert np.all(np.abs(tide) < 0.5)

    def test_tide_is_periodic_semidiurnal(self):
        t = np.array([0.0])
        tide_now = ocean_tide_correction(t, np.array([-75.0]))
        tide_later = ocean_tide_correction(t + 12.42 * 3600, np.array([-75.0]))
        # One full M2 period later the M2 term repeats; only the small K1 term differs.
        assert abs(tide_now[0] - tide_later[0]) < 0.1

    def test_inverted_barometer_sign(self):
        # Low pressure raises sea level (positive correction).
        assert inverted_barometer_correction(np.array([990.0]))[0] > 0
        assert inverted_barometer_correction(np.array([1030.0]))[0] < 0
        assert inverted_barometer_correction(np.array([1013.25]))[0] == pytest.approx(0.0)

    def test_inverted_barometer_slope(self):
        low = inverted_barometer_correction(np.array([1000.0]))[0]
        high = inverted_barometer_correction(np.array([1010.0]))[0]
        assert (low - high) == pytest.approx(10 * 0.009948, abs=1e-9)


class TestApplyCorrections:
    def test_output_shapes_and_consistency(self, rng):
        n = 50
        height = rng.normal(-55.0, 0.3, n)
        lat = rng.uniform(-78, -70, n)
        lon = rng.uniform(-180, -140, n)
        t = rng.uniform(0, 3600, n)
        corrected, corr = apply_geophysical_corrections(height, lat, lon, t)
        assert corrected.shape == (n,)
        np.testing.assert_allclose(corrected, height - corr.total())

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            apply_geophysical_corrections(
                np.zeros(3), np.zeros(2), np.zeros(3), np.zeros(3)
            )

    def test_corrections_remove_geoid_scale(self, rng):
        # Ellipsoidal heights near the geoid (-55 m) should end up near zero.
        n = 20
        lat = rng.uniform(-78, -70, n)
        lon = rng.uniform(-180, -140, n)
        height = geoid_undulation(lat, lon) + 0.3
        corrected, _ = apply_geophysical_corrections(height, lat, lon, np.zeros(n))
        assert np.all(np.abs(corrected) < 1.0)


class TestFirstPhotonBias:
    def test_bias_lowers_heights(self):
        heights = np.zeros(10)
        corrected = first_photon_bias_correction(heights, photon_rate_per_shot=4.0)
        assert np.all(corrected <= 0.0)

    def test_bias_grows_with_rate(self):
        h = np.zeros(1)
        weak = first_photon_bias_correction(h, 0.5)[0]
        strong = first_photon_bias_correction(h, 8.0)[0]
        assert strong < weak  # stronger returns are corrected downward more

    def test_zero_rate_no_bias(self):
        h = np.array([1.0, 2.0])
        corrected = first_photon_bias_correction(h, 0.0)
        np.testing.assert_allclose(corrected, h)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            first_photon_bias_correction(np.zeros(2), -1.0)

    def test_bias_bounded_by_pulse_width(self):
        corrected = first_photon_bias_correction(np.zeros(5), 100.0, pulse_width_ns=1.5)
        assert np.all(np.abs(corrected) <= 0.5 * 1.5 * 0.15 + 1e-12)
