"""Tests for the WGS84 ellipsoid model."""

import numpy as np
import pytest

from repro.geodesy.ellipsoid import WGS84, Ellipsoid


class TestEllipsoidDefinition:
    def test_wgs84_constants(self):
        assert WGS84.a == pytest.approx(6_378_137.0)
        assert WGS84.f == pytest.approx(1.0 / 298.257223563)
        assert WGS84.b == pytest.approx(6_356_752.314245, abs=1e-3)
        assert WGS84.e2 == pytest.approx(0.00669437999014, abs=1e-12)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Ellipsoid(a=-1.0, f=0.0)
        with pytest.raises(ValueError):
            Ellipsoid(a=6.4e6, f=1.5)

    def test_sphere_has_equal_axes(self):
        sphere = Ellipsoid(a=1000.0, f=0.0)
        assert sphere.b == pytest.approx(1000.0)
        assert sphere.e == 0.0


class TestRadiiOfCurvature:
    def test_prime_vertical_radius_at_equator_and_pole(self):
        # N(0) = a, N(90 deg) = a / sqrt(1 - e^2).
        n_eq = WGS84.prime_vertical_radius(np.array([0.0]))
        n_pole = WGS84.prime_vertical_radius(np.array([np.pi / 2]))
        assert n_eq[0] == pytest.approx(WGS84.a)
        assert n_pole[0] == pytest.approx(WGS84.a / np.sqrt(1 - WGS84.e2))

    def test_meridional_radius_smaller_at_equator(self):
        m_eq = WGS84.meridional_radius(np.array([0.0]))[0]
        m_pole = WGS84.meridional_radius(np.array([np.pi / 2]))[0]
        assert m_eq < m_pole


class TestGeodeticToECEF:
    def test_equator_prime_meridian(self):
        x, y, z = WGS84.geodetic_to_ecef(0.0, 0.0, 0.0)
        assert x == pytest.approx(WGS84.a)
        assert y == pytest.approx(0.0, abs=1e-6)
        assert z == pytest.approx(0.0, abs=1e-6)

    def test_south_pole(self):
        x, y, z = WGS84.geodetic_to_ecef(-90.0, 0.0, 0.0)
        assert x == pytest.approx(0.0, abs=1e-6)
        assert z == pytest.approx(-WGS84.b, abs=1e-3)

    def test_height_adds_along_normal(self):
        x0, y0, z0 = WGS84.geodetic_to_ecef(-75.0, -160.0, 0.0)
        x1, y1, z1 = WGS84.geodetic_to_ecef(-75.0, -160.0, 100.0)
        displacement = np.sqrt((x1 - x0) ** 2 + (y1 - y0) ** 2 + (z1 - z0) ** 2)
        assert displacement == pytest.approx(100.0, abs=1e-6)


class TestSurfaceDistance:
    def test_zero_for_identical_points(self):
        d = WGS84.surface_distance(-75.0, -170.0, -75.0, -170.0)
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_one_degree_latitude_about_111km(self):
        d = WGS84.surface_distance(-75.0, -170.0, -74.0, -170.0)
        assert 109_000 < d < 113_000

    def test_symmetry(self):
        d1 = WGS84.surface_distance(-75.0, -170.0, -74.5, -169.0)
        d2 = WGS84.surface_distance(-74.5, -169.0, -75.0, -170.0)
        assert d1 == pytest.approx(d2)
