"""Property-based equivalence tests for the tile-pyramid reduction kernels.

The vectorized overview reductions (four strided child planes at once) must
agree with the per-output-cell reference loops to 1e-10 on randomized
inputs — in fact bit for bit, since both backends accumulate the four
children in the same order with exact-zero non-contributors.  The corners
the acceptance criteria call out are covered explicitly: all-NaN layers and
single-cell tiles, plus odd shapes (phantom children), zero-weight cells
and NaN-with-positive-weight cells (sparse cells below the ``min_segments``
floor).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import pyramid as kpyr
from repro.kernels import use_backend

HYPOTHESIS_SETTINGS = dict(max_examples=40, deadline=None)


def assert_equiv(a, b, label, atol=1e-10):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    assert a.shape == b.shape, label
    assert np.array_equal(np.isnan(a), np.isnan(b)), f"{label}: NaN pattern differs"
    assert np.allclose(a, b, atol=atol, rtol=0.0, equal_nan=True), (
        f"{label}: max |diff| = {np.nanmax(np.abs(a - b))}"
    )


def both_reduce_mean(values, weights):
    ref_v, ref_w = kpyr.reduce_mean_reference(values, weights)
    vec_v, vec_w = kpyr.reduce_mean_vectorized(values, weights)
    assert_equiv(ref_v, vec_v, "values")
    assert_equiv(ref_w, vec_w, "weights")
    return ref_v, ref_w


def random_layers(rng, ny, nx):
    """A realistic mosaic layer: holes, sparse NaN cells, integer weights."""
    weights = np.where(
        rng.random((ny, nx)) < 0.7, rng.integers(0, 20, (ny, nx)), 0
    ).astype(float)
    values = np.where(weights > 0, rng.normal(0.3, 0.2, (ny, nx)), np.nan)
    sparse = rng.random((ny, nx)) < 0.15
    values[sparse] = np.nan  # positive weight, NaN value: must not contribute
    return values, weights


class TestReduceMeanEquivalence:
    @given(
        ny=st.integers(min_value=1, max_value=33),
        nx=st.integers(min_value=1, max_value=33),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**HYPOTHESIS_SETTINGS)
    def test_random_layers(self, ny, nx, seed):
        rng = np.random.default_rng(seed)
        values, weights = random_layers(rng, ny, nx)
        both_reduce_mean(values, weights)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(**HYPOTHESIS_SETTINGS)
    def test_all_nan_layer(self, seed):
        rng = np.random.default_rng(seed)
        ny, nx = int(rng.integers(1, 12)), int(rng.integers(1, 12))
        values = np.full((ny, nx), np.nan)
        weights = rng.integers(0, 5, (ny, nx)).astype(float)
        out_v, out_w = both_reduce_mean(values, weights)
        assert np.isnan(out_v).all()
        assert (out_w == 0).all()

    @given(
        value=st.floats(min_value=-10, max_value=10, allow_nan=False),
        # Weights are segment counts; a subnormal weight (e.g. 5e-324) is
        # unphysical and makes (w * v) lose nearly every mantissa bit, so
        # the one-rounding tolerance below would not hold for it.
        weight=st.floats(min_value=0.0, max_value=50.0, allow_subnormal=False),
    )
    @settings(**HYPOTHESIS_SETTINGS)
    def test_single_cell_tile(self, value, weight):
        out_v, out_w = both_reduce_mean(
            np.array([[value]]), np.array([[weight]])
        )
        assert out_v.shape == (1, 1) and out_w.shape == (1, 1)
        if weight > 0:
            # (w * v) / w is one rounding away from v in IEEE double.
            assert out_v[0, 0] == pytest.approx(value, abs=1e-10)
            assert out_w[0, 0] == weight
        else:
            assert np.isnan(out_v[0, 0]) and out_w[0, 0] == 0.0

    def test_weighted_mean_is_exact(self):
        # One output cell with hand-checkable children.
        values = np.array([[1.0, 3.0], [np.nan, 5.0]])
        weights = np.array([[1.0, 3.0], [7.0, 0.0]])
        out_v, out_w = both_reduce_mean(values, weights)
        # NaN child (w=7) and zero-weight child (v=5) must not contribute.
        assert out_v[0, 0] == pytest.approx((1.0 * 1 + 3.0 * 3) / 4.0)
        assert out_w[0, 0] == 4.0

    def test_odd_shapes_have_phantom_children(self):
        values = np.array([[1.0, 2.0, 3.0]])
        weights = np.array([[1.0, 1.0, 2.0]])
        out_v, out_w = both_reduce_mean(values, weights)
        assert out_v.shape == (1, 2)
        assert out_v[0, 0] == pytest.approx(1.5)
        assert out_v[0, 1] == 3.0 and out_w[0, 1] == 2.0

    def test_backends_bit_identical(self):
        rng = np.random.default_rng(7)
        values, weights = random_layers(rng, 31, 17)
        ref_v, ref_w = kpyr.reduce_mean_reference(values, weights)
        vec_v, vec_w = kpyr.reduce_mean_vectorized(values, weights)
        assert np.array_equal(ref_v, vec_v, equal_nan=True)
        assert np.array_equal(ref_w, vec_w)


class TestReduceCoverageEquivalence:
    @given(
        ny=st.integers(min_value=1, max_value=33),
        nx=st.integers(min_value=1, max_value=33),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(**HYPOTHESIS_SETTINGS)
    def test_random_coverage(self, ny, nx, seed):
        rng = np.random.default_rng(seed)
        coverage = rng.random((ny, nx))
        assert_equiv(
            kpyr.reduce_coverage_reference(coverage),
            kpyr.reduce_coverage_vectorized(coverage),
            "coverage",
        )

    def test_phantom_children_count_as_uncovered(self):
        out = kpyr.reduce_coverage_vectorized(np.array([[1.0]]))
        assert out[0, 0] == 0.25  # 1 covered child of 4

    def test_full_coverage_even_shape(self):
        out = kpyr.reduce_coverage_reference(np.ones((4, 4)))
        assert np.array_equal(out, np.ones((2, 2)))


class TestValidationAndDispatch:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            kpyr.reduce_mean_vectorized(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            kpyr.reduce_mean_reference(np.zeros((2, 2)), np.full((2, 2), -1.0))

    def test_nan_weights_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            kpyr.reduce_mean_vectorized(np.zeros((2, 2)), np.full((2, 2), np.nan))

    def test_coverage_out_of_range_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            kpyr.reduce_coverage_vectorized(np.full((2, 2), 1.5))

    def test_reduced_shape_rejects_empty(self):
        with pytest.raises(ValueError, match="empty layer"):
            kpyr.reduced_shape((0, 4))

    def test_dispatch_follows_backend_switch(self):
        values = np.array([[1.0, np.nan], [2.0, 4.0]])
        weights = np.array([[1.0, 1.0], [3.0, 0.0]])
        with use_backend("reference"):
            ref = kpyr.reduce_mean(values, weights)
        with use_backend("vectorized"):
            vec = kpyr.reduce_mean(values, weights)
        explicit = kpyr.reduce_mean(values, weights, backend="reference")
        for a, b in zip(ref, vec):
            assert np.array_equal(a, b, equal_nan=True)
        for a, b in zip(ref, explicit):
            assert np.array_equal(a, b, equal_nan=True)
