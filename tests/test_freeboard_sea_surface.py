"""Tests for local sea-surface estimation (four methods, NASA equations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE
from repro.freeboard.sea_surface import (
    SEA_SURFACE_METHODS,
    estimate_sea_surface,
    nasa_lead_height,
    nasa_reference_height,
)


def _synthetic_track(rng, n=6000, spacing=2.0, sea_level=0.05, freeboard=0.4, water_fraction=0.1):
    """A classified track with known sea level and ice freeboard."""
    along = np.arange(n) * spacing
    labels = np.full(n, CLASS_THICK_ICE, dtype=np.int8)
    water_idx = rng.choice(n, int(n * water_fraction), replace=False)
    labels[water_idx] = CLASS_OPEN_WATER
    heights = np.where(labels == CLASS_OPEN_WATER, sea_level, sea_level + freeboard)
    heights = heights + rng.normal(0, 0.03, n)
    errors = np.full(n, 0.05)
    return along, heights, errors, labels


class TestNASAEquations:
    def test_lead_height_between_min_and_mean(self, rng):
        h = rng.normal(0.0, 0.1, 30)
        sigma = np.full(30, 0.1)
        lead_h, lead_e = nasa_lead_height(h, sigma)
        assert h.min() - 1e-9 <= lead_h <= h.mean() + 1e-9
        assert lead_e > 0

    def test_identical_heights_give_that_height(self):
        h = np.full(10, 0.07)
        lead_h, _ = nasa_lead_height(h, np.full(10, 0.1))
        assert lead_h == pytest.approx(0.07)

    def test_single_candidate(self):
        lead_h, lead_e = nasa_lead_height(np.array([0.12]), np.array([0.05]))
        assert lead_h == pytest.approx(0.12)
        assert lead_e == pytest.approx(0.05)

    def test_reference_height_is_inverse_variance_weighted(self):
        heights = np.array([0.0, 1.0])
        errors = np.array([0.01, 1.0])  # first lead far more certain
        ref, err = nasa_reference_height(heights, errors)
        assert ref < 0.01
        assert err <= 0.01 + 1e-9

    def test_equal_errors_give_mean(self):
        ref, _ = nasa_reference_height(np.array([0.0, 0.2]), np.array([0.1, 0.1]))
        assert ref == pytest.approx(0.1)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            nasa_lead_height(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            nasa_reference_height(np.array([]), np.array([]))

    def test_negative_errors_rejected(self):
        with pytest.raises(ValueError):
            nasa_lead_height(np.array([0.1]), np.array([-0.1]))

    @given(
        n=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_lead_height_bracketed(self, n, seed):
        rng = np.random.default_rng(seed)
        h = rng.normal(0, 0.2, n)
        sigma = rng.uniform(0.02, 0.2, n)
        lead_h, _ = nasa_lead_height(h, sigma)
        assert h.min() - 1e-9 <= lead_h <= h.max() + 1e-9


class TestEstimateSeaSurface:
    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    def test_recovers_known_sea_level(self, rng, method):
        along, heights, errors, labels = _synthetic_track(rng, sea_level=0.05)
        estimate = estimate_sea_surface(along, heights, errors, labels, method=method)
        valid = estimate.valid_mask()
        assert valid.any()
        recovered = estimate.heights_m[valid]
        # All methods should land within ~10 cm of the true 5 cm sea level
        # (the minimum method is biased low, the average is nearly exact).
        assert np.all(np.abs(recovered - 0.05) < 0.12)

    def test_average_more_accurate_than_minimum(self, rng):
        along, heights, errors, labels = _synthetic_track(rng)
        avg = estimate_sea_surface(along, heights, errors, labels, method="average")
        minimum = estimate_sea_surface(along, heights, errors, labels, method="minimum")
        err_avg = np.abs(avg.heights_m[avg.valid_mask()] - 0.05).mean()
        err_min = np.abs(minimum.heights_m[minimum.valid_mask()] - 0.05).mean()
        assert err_avg <= err_min

    def test_windows_cover_track(self, rng):
        along, heights, errors, labels = _synthetic_track(rng, n=12000)
        estimate = estimate_sea_surface(along, heights, errors, labels, method="nasa")
        assert estimate.windows[0].start_m <= along.min()
        assert estimate.windows[-1].stop_m >= along.max()
        # 5 km steps over a 24 km track: at least 4 windows.
        assert estimate.n_windows >= 4

    def test_windows_without_water_are_nan(self, rng):
        along, heights, errors, labels = _synthetic_track(rng, n=10000)
        # Remove all open water from the second half of the track.
        half = along > along.max() / 2
        labels = labels.copy()
        labels[half] = CLASS_THICK_ICE
        estimate = estimate_sea_surface(
            along, heights, errors, labels, method="nasa", fallback_lowest_quantile=None
        )
        assert np.isnan(estimate.heights_m).any()
        assert np.isfinite(estimate.heights_m).any()

    def test_fallback_used_when_no_water_classified(self, rng):
        along, heights, errors, labels = _synthetic_track(rng)
        no_water = np.full_like(labels, CLASS_THICK_ICE)
        estimate = estimate_sea_surface(along, heights, errors, no_water, method="average")
        # The lowest-quantile fallback anchors at least one window.
        assert np.isfinite(estimate.heights_m).any()

    def test_outlier_rejection_protects_minimum_method(self, rng):
        along, heights, errors, labels = _synthetic_track(rng)
        # Inject one absurd outlier in a water segment (stray background photon).
        water_positions = np.flatnonzero(labels == CLASS_OPEN_WATER)
        heights = heights.copy()
        heights[water_positions[0]] = -8.0
        estimate = estimate_sea_surface(along, heights, errors, labels, method="minimum")
        assert np.all(estimate.heights_m[estimate.valid_mask()] > -1.0)

    def test_smoothness_metric(self, rng):
        along, heights, errors, labels = _synthetic_track(rng, n=15000)
        estimate = estimate_sea_surface(along, heights, errors, labels, method="nasa")
        assert estimate.smoothness() >= 0.0

    def test_unknown_method_rejected(self, rng):
        along, heights, errors, labels = _synthetic_track(rng, n=100)
        with pytest.raises(ValueError):
            estimate_sea_surface(along, heights, errors, labels, method="median")

    def test_empty_track_rejected(self):
        with pytest.raises(ValueError):
            estimate_sea_surface(np.array([]), np.array([]), np.array([]), np.array([], dtype=np.int8))

    def test_window_errors_positive(self, rng):
        along, heights, errors, labels = _synthetic_track(rng)
        estimate = estimate_sea_surface(along, heights, errors, labels, method="nasa")
        valid = estimate.valid_mask()
        assert np.all(estimate.errors_m[valid] > 0)
