"""Deterministic concurrency tests for the async service tier.

No real sleeps anywhere: every test drives a real asyncio event loop
through a :class:`~repro.serve.clock.VirtualClock` and an injected execute
hook with *virtual* service times, so thousands of concurrent requests are
reproducible bit-for-bit — single-flight coalescing, load shedding at the
admission watermark, prefetch/refresh ordering and quarantine all assert
exact counts, not flaky sleeps-and-hopes.
"""

import asyncio

import numpy as np
import pytest

from repro.config import RouterConfig, ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import Level3ProductError, write_level3
from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.clock import MonotonicClock, VirtualClock
from repro.serve.query import ProductLoader, QueryEngine, TileRequest, TileResponse
from repro.serve.router import RequestRouter, RouterOverloadedError
from repro.serve.shard import ShardedCatalog, shard_index
from repro.serve.traffic import TrafficConfig, TrafficSimulator, router_scaling_rows

SERVE = ServeConfig(tile_size=8, tile_cache_size=128)


def make_entry(i: int, bbox, kind: str = "mosaic") -> CatalogEntry:
    x0, y0, x1, y1 = bbox
    return CatalogEntry(
        base_path=f"/products/p{i}",
        kind=kind,
        fingerprint=f"fp-{i}",
        granule_ids=(f"g{i:03d}",),
        variables=("freeboard_mean", "n_segments"),
        servable=("freeboard_mean",),
        x_min_m=float(x0),
        y_min_m=float(y0),
        x_max_m=float(x1),
        y_max_m=float(y1),
        cell_size_m=100.0,
        shape=(32, 48),
    )


class Harness:
    """A router over synthetic products with virtual-time execution.

    The execute hook replaces the shard engine: each call sleeps a
    configurable *virtual* service time and returns an empty response, while
    ``calls`` records every underlying execution — the ground truth that
    coalescing assertions compare against.
    """

    def __init__(
        self,
        entries,
        config: RouterConfig,
        service_s: float = 0.05,
    ) -> None:
        self.clock = VirtualClock()
        self.calls: list[TileRequest] = []
        self.service_s = service_s

        async def execute(shard, request: TileRequest) -> TileResponse:
            self.calls.append(request)
            await self.clock.sleep(self.service_s)
            return TileResponse(
                request=request,
                product="synthetic",
                zoom=request.zoom,
                tiles={},
                n_cached=0,
                n_computed=1,
                seconds=self.service_s,
            )

        self.router = RequestRouter(
            ShardedCatalog(config.n_shards, entries),
            serve=SERVE,
            config=config,
            clock=self.clock,
            execute=execute,
        )

    async def settle(self, tasks) -> list:
        """Drive virtual time until every task resolves; gather outcomes."""
        while True:
            for _ in range(5):  # let fresh tasks run up to their first await
                await asyncio.sleep(0)
            if all(task.done() for task in tasks):
                break
            if not await self.clock.advance_to_next():
                break  # nothing sleeps and nothing is done: a real deadlock
        return await asyncio.gather(*tasks, return_exceptions=True)


def run(coro):
    return asyncio.run(coro)


ENTRY = make_entry(0, (0.0, 0.0, 4800.0, 3200.0))
REQUEST = TileRequest(bbox=(0.0, 0.0, 2400.0, 1600.0), variable="freeboard_mean", zoom=0)


class TestVirtualClock:
    def test_sleepers_wake_in_deadline_order(self):
        async def scenario():
            clock = VirtualClock()
            order = []

            async def sleeper(name, dt):
                await clock.sleep(dt)
                order.append(name)

            tasks = [
                asyncio.ensure_future(sleeper("c", 0.3)),
                asyncio.ensure_future(sleeper("a", 0.1)),
                asyncio.ensure_future(sleeper("b", 0.2)),
            ]
            await asyncio.sleep(0)  # let the tasks park on the clock
            await clock.advance(0.15)
            assert order == ["a"]
            assert clock.now() == pytest.approx(0.15)
            await clock.advance(1.0)
            await asyncio.gather(*tasks)
            return order

        assert run(scenario()) == ["a", "b", "c"]

    def test_advance_to_next_reports_exhaustion(self):
        async def scenario():
            clock = VirtualClock()
            task = asyncio.ensure_future(clock.sleep(2.0))
            await asyncio.sleep(0)
            assert clock.next_delay() == pytest.approx(2.0)
            assert await clock.advance_to_next() is True
            await task
            assert await clock.advance_to_next() is False

        run(scenario())

    def test_monotonic_clock_advances_for_real(self):
        async def scenario():
            clock = MonotonicClock()
            before = clock.now()
            await clock.advance(0.0)
            assert clock.now() >= before

        run(scenario())


class TestSingleFlight:
    def test_1000_identical_queries_build_once(self):
        # The acceptance scenario: 1000 concurrent identical queries must
        # cost exactly one underlying tile build, whatever the watermark —
        # coalesced joiners add no work, so they never count against it.
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=2, max_queue_depth=4), service_s=0.05
        )

        async def scenario():
            tasks = [
                asyncio.ensure_future(harness.router.query(REQUEST))
                for _ in range(1000)
            ]
            return await harness.settle(tasks)

        results = run(scenario())
        assert len(harness.calls) == 1
        stats = harness.router.stats
        assert stats.requests == 1000
        assert stats.executions == 1
        assert stats.shed == 0
        assert stats.coalesced == 999
        assert stats.coalescing_ratio == pytest.approx(999 / 1000)
        # One execution, one tile payload: every joiner's TileResponse is its
        # own object (distinct shard/coalesced/queue_wait_s fields) but shares
        # the executed response's tiles dict -- the single-flight guarantee.
        shared = results[0].tiles
        for routed in results:
            assert not isinstance(routed, BaseException)
            assert routed.tiles is shared
        assert sum(1 for r in results if r.coalesced) == 999

    def test_coalesced_latency_splits_wait_from_service(self):
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=1, max_queue_depth=4), service_s=0.05
        )

        async def scenario():
            first = asyncio.ensure_future(harness.router.query(REQUEST))
            for _ in range(5):
                await asyncio.sleep(0)
            await harness.clock.advance(0.02)  # the joiner arrives mid-flight
            second = asyncio.ensure_future(harness.router.query(REQUEST))
            return await harness.settle([first, second])

        first, second = run(scenario())
        assert first.latency_s == pytest.approx(0.05)
        assert first.queue_wait_s == pytest.approx(0.0)
        # The joiner only waited the flight's remaining 0.03s; its reported
        # queue wait is its own elapsed time minus the shared service time,
        # clamped at zero — never negative.
        assert second.coalesced and second.queue_wait_s == 0.0
        assert second.service_s == pytest.approx(0.05)

    def test_distinct_requests_do_not_coalesce(self):
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=1, max_queue_depth=8), service_s=0.05
        )
        other = TileRequest(
            bbox=(2400.0, 1600.0, 4800.0, 3200.0), variable="freeboard_mean", zoom=0
        )

        async def scenario():
            tasks = [
                asyncio.ensure_future(harness.router.query(REQUEST)),
                asyncio.ensure_future(harness.router.query(other)),
            ]
            return await harness.settle(tasks)

        run(scenario())
        assert len(harness.calls) == 2
        assert harness.router.stats.coalesced == 0

    def test_execution_failure_propagates_to_every_joiner(self):
        harness = Harness([ENTRY], RouterConfig(n_shards=1, max_queue_depth=4))

        async def boom(shard, request):
            await harness.clock.sleep(0.01)
            raise RuntimeError("decode blew up")

        harness.router._execute = boom

        async def scenario():
            tasks = [
                asyncio.ensure_future(harness.router.query(REQUEST)) for _ in range(5)
            ]
            return await harness.settle(tasks)

        results = run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert harness.router.stats.coalesced == 4
        assert harness.router.stats.executions == 0


class TestAdmissionControl:
    def test_sheds_past_watermark_with_retry_after(self):
        config = RouterConfig(n_shards=1, max_queue_depth=2, retry_after_s=0.125)
        harness = Harness([ENTRY], config, service_s=1.0)
        distinct = [
            TileRequest(
                bbox=(col * 800.0, 0.0, col * 800.0 + 800.0, 800.0),
                variable="freeboard_mean",
                zoom=0,
            )
            for col in range(5)
        ]

        async def scenario():
            tasks = []
            for request in distinct:
                tasks.append(asyncio.ensure_future(harness.router.query(request)))
                for _ in range(5):
                    await asyncio.sleep(0)
            depth_at_peak = harness.router.depth
            results = await harness.settle(tasks)
            return depth_at_peak, results

        depth_at_peak, results = run(scenario())
        assert depth_at_peak == 2
        shed = [r for r in results if isinstance(r, RouterOverloadedError)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert len(shed) == 3 and len(served) == 2
        for error in shed:
            assert error.retry_after_s == 0.125
            assert error.max_queue_depth == 2
            assert "Retry-After" in str(error)
        assert harness.router.stats.shed == 3
        assert harness.router.stats.shed_rate == pytest.approx(3 / 5)

    def test_shedding_is_immediate(self):
        # Rejection spends zero (virtual) time: the whole point of load
        # shedding is that the client learns *now*, not after queueing.
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=1, max_queue_depth=1), service_s=1.0
        )
        other = TileRequest(
            bbox=(2400.0, 1600.0, 4800.0, 3200.0), variable="freeboard_mean", zoom=0
        )

        async def scenario():
            first = asyncio.ensure_future(harness.router.query(REQUEST))
            for _ in range(5):
                await asyncio.sleep(0)
            before = harness.clock.now()
            with pytest.raises(RouterOverloadedError):
                await harness.router.query(other)
            assert harness.clock.now() == before
            await harness.settle([first])

        run(scenario())

    def test_capacity_recovers_after_completion(self):
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=1, max_queue_depth=1), service_s=0.5
        )
        other = TileRequest(
            bbox=(2400.0, 1600.0, 4800.0, 3200.0), variable="freeboard_mean", zoom=0
        )

        async def scenario():
            first = asyncio.ensure_future(harness.router.query(REQUEST))
            for _ in range(5):
                await asyncio.sleep(0)
            with pytest.raises(RouterOverloadedError):
                await harness.router.query(other)
            await harness.settle([first])
            second = asyncio.ensure_future(harness.router.query(other))
            results = await harness.settle([second])
            assert not isinstance(results[0], BaseException)

        run(scenario())
        assert harness.router.stats.shed == 1
        assert harness.router.stats.executions == 2


class TestPrefetcher:
    def test_refresh_keeps_hot_key_and_clients_coalesce(self):
        # Stale-cache-refresh ordering: the popular key is re-executed by
        # the prefetcher, and a client arriving mid-refresh joins the
        # refresh flight instead of spawning its own build.
        harness = Harness(
            [ENTRY], RouterConfig(n_shards=1, max_queue_depth=8, prefetch_top_k=1)
        )

        async def scenario():
            warm = [
                asyncio.ensure_future(harness.router.query(REQUEST)) for _ in range(3)
            ]
            await harness.settle(warm)
            assert len(harness.calls) == 1

            refresh = asyncio.ensure_future(harness.router.prefetch_once())
            for _ in range(5):
                await asyncio.sleep(0)
            assert harness.router.depth == 1  # the refresh flight is airborne
            client = asyncio.ensure_future(harness.router.query(REQUEST))
            await harness.settle([refresh, client])
            return refresh.result(), client.result()

        refreshed, routed = run(scenario())
        assert refreshed == 1
        assert len(harness.calls) == 2  # warm-up build + one refresh, no third
        assert routed.coalesced is True
        assert harness.router.stats.prefetch_refreshes == 1
        # Prefetch work is background: it is not a request.
        assert harness.router.stats.requests == 4

    def test_prefetch_skips_inflight_and_stale_keys(self):
        entries = [ENTRY]
        harness = Harness(
            entries, RouterConfig(n_shards=2, max_queue_depth=8, prefetch_top_k=4)
        )

        async def scenario():
            warm = asyncio.ensure_future(harness.router.query(REQUEST))
            await harness.settle([warm])
            # Re-register a newer product over the same region: the recorded
            # popularity key now resolves elsewhere and must be dropped, not
            # refreshed against the stale product.
            harness.router.catalog.add(make_entry(1, (0.0, 0.0, 4800.0, 3200.0)))
            refreshed = await harness.router.prefetch_once()
            return refreshed

        assert run(scenario()) == 0
        assert len(harness.calls) == 1

    def test_background_loop_paces_through_the_clock(self):
        harness = Harness(
            [ENTRY],
            RouterConfig(
                n_shards=1, max_queue_depth=8, prefetch_top_k=1, prefetch_interval_s=1.0
            ),
            service_s=0.01,
        )

        async def scenario():
            warm = asyncio.ensure_future(harness.router.query(REQUEST))
            await harness.settle([warm])
            async with harness.router:
                await asyncio.sleep(0)  # the loop parks on its first interval
                await harness.clock.advance(1.05)  # one interval elapses
                await harness.clock.advance(0.5)  # mid-interval: no refresh
            return harness.router.stats.prefetch_refreshes

        assert run(scenario()) == 1


class FailingLoader(ProductLoader):
    """A loader whose decodes always raise — a shard serving corrupt files."""

    def load(self, entry):
        raise Level3ProductError(f"corrupt product {entry.key}")


class TestQuarantine:
    def build(self, tmp_path):
        """Two overlapping products on different shards; B (later) wins.

        A is real on disk; B's shard gets a loader that always raises
        ``Level3ProductError``, modelling a shard over corrupt storage.
        """
        rng = np.random.default_rng(3)
        grid = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=48, ny=32)
        n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
        product = Level3Grid(
            grid=grid,
            variables={
                "n_segments": n_seg,
                "freeboard_mean": np.where(
                    n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan
                ),
            },
            metadata={"kind": "mosaic", "granule_ids": ["a"], "fingerprint": "fp-a"},
        )
        _, json_path = write_level3(product, tmp_path / "mosaic-a")
        catalog = ProductCatalog()
        entry_a = catalog.register(json_path)
        # B: same variables over a bbox chosen to land on a different shard.
        n_shards = 2
        shard_a = shard_index(entry_a.bbox, n_shards)
        for dx in (1.0, 2.0, 3.0, 5.0, 8.0):
            bbox_b = (-dx, -dx, 4800.0 - dx, 3200.0 - dx)
            if shard_index(bbox_b, n_shards) != shard_a:
                break
        else:  # pragma: no cover - hash would have to collide 5 times
            pytest.fail("could not place B on another shard")
        entry_b = make_entry(1, bbox_b)
        catalog.add(entry_b)
        sharded = ShardedCatalog.from_catalog(catalog, n_shards)
        bad_shard = sharded.shard_of(entry_b.key)

        def loader_factory(index: int) -> ProductLoader:
            return FailingLoader(SERVE) if index == bad_shard else ProductLoader(SERVE)

        router = RequestRouter(
            sharded,
            serve=SERVE,
            config=RouterConfig(n_shards=n_shards, max_queue_depth=8, quarantine_errors=2),
            loader_factory=loader_factory,
        )
        return router, entry_a, entry_b, bad_shard

    def test_failing_shard_is_quarantined_and_routed_around(self, tmp_path):
        router, entry_a, entry_b, bad_shard = self.build(tmp_path)
        request = TileRequest(
            bbox=(100.0, 100.0, 1500.0, 1200.0), variable="freeboard_mean", zoom=0
        )
        # B is the latest registration, so it wins resolution — and fails.
        assert router.resolve(request) == (bad_shard, entry_b)
        for _ in range(2):
            with pytest.raises(Level3ProductError):
                router.serve([request])
        # Two strikes: B's shard is quarantined, resolution reroutes to A,
        # and the same request now serves real tiles from the other shard.
        assert router.quarantined_shards == (bad_shard,)
        shard_id, entry = router.resolve(request)
        assert entry.key == entry_a.key and shard_id != bad_shard
        routed = router.serve([request])[0]
        assert routed.response.product == entry_a.key
        assert routed.response.n_tiles > 0

        health = router.health()
        assert health["quarantined"] == [bad_shard]
        assert health["healthy_shards"] == 1
        bad_row = health["shards"][bad_shard]
        assert bad_row["quarantined"] is True and bad_row["errors"] == 2
        assert health["errors"] == 2

    def test_nothing_left_mentions_quarantine(self, tmp_path):
        router, entry_a, entry_b, bad_shard = self.build(tmp_path)
        # A strip strictly left of A's footprint: only B covers it, so once
        # B's shard is quarantined nothing healthy remains for this region.
        request = TileRequest(
            bbox=(entry_b.x_min_m, entry_b.y_min_m, 0.0, 0.0),
            variable="freeboard_mean",
            zoom=0,
        )
        for _ in range(2):
            with pytest.raises(Level3ProductError):
                router.serve([request])
        with pytest.raises(LookupError, match="quarantined"):
            router.resolve(request)


class TestOpenLoop:
    def entries(self):
        # A spread-out archive: many distinct footprints keep the flight
        # keys distinct, so admission (not coalescing) is what is tested.
        return [
            make_entry(
                i, (i * 6000.0, 0.0, i * 6000.0 + 4800.0, 3200.0)
            )
            for i in range(24)
        ]

    def simulator(self, router, n_requests):
        return TrafficSimulator(
            catalog=router.catalog,
            config=TrafficConfig(
                n_requests=n_requests,
                n_regions=40,
                zipf_exponent=0.4,
                region_fraction=0.02,
                zoom_levels=(0,),
                seed=13,
            ),
        )

    def test_two_times_saturation_sheds_with_bounded_p99(self):
        # Saturation: max_queue_depth distinct executions of service time c
        # sustain depth/c req/s.  Offering 2x that must shed a substantial
        # fraction — while every ADMITTED request still finishes in exactly
        # one service time (virtual clock: the p99 bound is exact, and
        # queueing collapse would show up as queue_wait > 0).
        service_s = 0.01
        config = RouterConfig(n_shards=4, max_queue_depth=8)
        harness = Harness(self.entries(), config, service_s=service_s)
        saturation_rps = config.max_queue_depth / service_s
        result = self.simulator(harness.router, 4000).run_open_loop(
            harness.router, arrival_rate_rps=2.0 * saturation_rps
        )
        assert result.n_offered == 4000
        assert result.stats.requests == 4000
        assert result.n_errors == 0
        assert result.shed_rate > 0.25
        assert result.n_completed == 4000 - result.stats.shed
        # Bounded tail for admitted traffic: exactly the service time.
        assert result.latency_ms(99.0) == pytest.approx(service_s * 1e3)
        assert result.queue_wait_ms(99.0) == pytest.approx(0.0)
        row = result.summary_row()
        assert row["Shed Rate"] == round(result.shed_rate, 4)
        assert row["P99 Latency (ms)"] == pytest.approx(10.0)

    def test_below_saturation_nothing_sheds(self):
        service_s = 0.01
        config = RouterConfig(n_shards=4, max_queue_depth=8)
        harness = Harness(self.entries(), config, service_s=service_s)
        saturation_rps = config.max_queue_depth / service_s
        result = self.simulator(harness.router, 1500).run_open_loop(
            harness.router, arrival_rate_rps=0.25 * saturation_rps
        )
        assert result.stats.shed == 0
        assert result.n_completed == 1500
        assert result.throughput_rps == pytest.approx(
            0.25 * saturation_rps, rel=0.15
        )

    def test_open_loop_is_deterministic_on_the_virtual_clock(self):
        def once():
            harness = Harness(
                self.entries(), RouterConfig(n_shards=4, max_queue_depth=8)
            )
            result = self.simulator(harness.router, 800).run_open_loop(
                harness.router, arrival_rate_rps=300.0
            )
            return (
                result.seconds,
                result.stats.shed,
                result.stats.coalesced,
                tuple(np.round(result.latencies_s, 9)),
            )

        assert once() == once()

    def test_scaling_rows_follow_the_cost_model(self):
        harness = Harness(
            self.entries(), RouterConfig(n_shards=4, max_queue_depth=16)
        )
        result = self.simulator(harness.router, 600).run_open_loop(
            harness.router, arrival_rate_rps=200.0
        )
        rows = router_scaling_rows(result, shard_counts=(1, 2, 4))
        assert [row["Shards"] for row in rows] == [1, 2, 4]
        assert rows[0]["Speedup"] == 1.0
        speedups = [row["Speedup"] for row in rows]
        assert speedups == sorted(speedups)
        assert rows[-1]["Saturation Throughput (req/s)"] >= rows[0][
            "Saturation Throughput (req/s)"
        ]
        with pytest.raises(ValueError, match="shard_counts"):
            router_scaling_rows(result, shard_counts=())

    def test_evaluation_tables_wrap_open_loop_results(self):
        from repro.evaluation import (
            format_table,
            router_latency_table,
            router_scaling_table,
        )

        harness = Harness(
            self.entries(), RouterConfig(n_shards=2, max_queue_depth=8)
        )
        result = self.simulator(harness.router, 200).run_open_loop(
            harness.router, arrival_rate_rps=100.0
        )
        latency = router_latency_table(result)
        scaling = router_scaling_table(result, shard_counts=(1, 2))
        assert len(latency) == 1 and len(scaling) == 2
        text = format_table(latency, title="router")
        assert "Shed Rate" in text and "Coalescing Ratio" in text

    def test_rejects_bad_rates(self):
        harness = Harness(self.entries(), RouterConfig(n_shards=2, max_queue_depth=8))
        simulator = self.simulator(harness.router, 10)
        with pytest.raises(ValueError, match="arrival_rate"):
            simulator.run_open_loop(harness.router, arrival_rate_rps=0.0)
        with pytest.raises(ValueError, match="chunk_size"):
            simulator.run_open_loop(harness.router, 10.0, chunk_size=0)


class TestRouterConstruction:
    def test_flat_catalog_is_partitioned_per_config(self):
        catalog = ProductCatalog([ENTRY])
        router = RequestRouter(
            catalog, serve=SERVE, config=RouterConfig(n_shards=3, max_queue_depth=8)
        )
        assert isinstance(router.catalog, ShardedCatalog)
        assert router.catalog.n_shards == 3 and len(router.shards) == 3

    def test_physical_partition_overrides_config(self):
        sharded = ShardedCatalog(5, [ENTRY])
        router = RequestRouter(
            sharded, serve=SERVE, config=RouterConfig(n_shards=2, max_queue_depth=8)
        )
        assert router.config.n_shards == 5 and len(router.shards) == 5

    def test_unknown_variable_is_a_lookup_error(self):
        harness = Harness([ENTRY], RouterConfig(n_shards=1, max_queue_depth=8))
        bad = TileRequest(bbox=(0.0, 0.0, 100.0, 100.0), variable="n_segments", zoom=0)
        with pytest.raises(LookupError, match="servable"):
            harness.router.serve([bad])
        assert harness.router.stats.errors == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_shards=0),
            dict(max_queue_depth=0),
            dict(retry_after_s=-0.5),
            dict(quarantine_errors=0),
            dict(prefetch_top_k=-1),
            dict(prefetch_interval_s=0.0),
        ],
    )
    def test_router_config_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            RouterConfig(**kwargs)

    def test_router_config_is_fingerprintable(self):
        from repro.pipeline.fingerprint import canonical

        assert canonical(RouterConfig()) == canonical(RouterConfig())
        assert canonical(RouterConfig(n_shards=8)) != canonical(RouterConfig())


class TestCampaignIntegration:
    def test_runner_serve_returns_router_fronted_engine(self, tmp_path):
        from repro.campaign import CampaignConfig, CampaignRunner
        from repro.config import L3GridConfig
        from repro.surface.scene import SceneConfig
        from repro.workflow.end_to_end import ExperimentConfig

        config = CampaignConfig(
            base=ExperimentConfig(
                scene=SceneConfig(
                    width_m=6_000.0,
                    height_m=6_000.0,
                    open_water_fraction=0.12,
                    thin_ice_fraction=0.18,
                    thick_ice_fraction=0.70,
                    n_leads=8,
                ),
                epochs=2,
                model_kind="mlp",
                l3=L3GridConfig(cell_size_m=1_000.0),
            ),
            grid={"cloud_fraction": (0.1, 0.3)},
        )
        runner = CampaignRunner(config)
        handle = runner.serve(str(tmp_path / "products")).with_router()
        router = handle.router
        assert isinstance(router, RequestRouter)
        assert router.catalog.n_shards == config.base.serve.router.n_shards
        x0, y0, x1, y1 = router.catalog.extent()
        request = TileRequest(
            bbox=(x0, y0, x0 + (x1 - x0) / 2, y0 + (y1 - y0) / 2), zoom=0
        )
        routed = handle.query_batch([request, request])
        assert routed[0].response.n_tiles > 0
        assert handle.health()["healthy_shards"] == router.catalog.n_shards
