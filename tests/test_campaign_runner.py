"""Integration tests for the campaign engine.

Covers the acceptance criteria of the campaign layer:

* a 3-granule campaign's pooled training is bit-for-bit identical between
  serial (``n_workers=1``) and process-parallel (``n_workers=2``) execution;
* a 6-granule campaign over a 2x3 scenario grid runs end to end with two
  workers and produces aggregated metrics;
* a second run with the same config resumes entirely from the on-disk cache,
  and a partially deleted cache re-runs only the missing granules.
"""

import numpy as np
import pytest

from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import N_CLASSES
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

#: Small, fast base experiment shared by every campaign test.
BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
)

PARITY_GRID = {"cloud_fraction": (0.1, 0.3, 0.5)}


@pytest.fixture(scope="module")
def serial_result():
    config = CampaignConfig(base=BASE, grid=PARITY_GRID, seed=11, n_workers=1)
    return CampaignRunner(config).run()


@pytest.fixture(scope="module")
def parallel_result():
    config = CampaignConfig(
        base=BASE, grid=PARITY_GRID, seed=11, n_workers=2, executor="process"
    )
    return CampaignRunner(config).run()


class TestSerialParallelParity:
    def test_pooled_classifier_is_bit_for_bit_identical(self, serial_result, parallel_result):
        serial_weights = serial_result.classifier.model.get_weights()
        parallel_weights = parallel_result.classifier.model.get_weights()
        assert len(serial_weights) == len(parallel_weights)
        for sw, pw in zip(serial_weights, parallel_weights):
            np.testing.assert_array_equal(sw, pw)
        assert serial_result.classifier.accuracy == parallel_result.classifier.accuracy

    def test_products_identical_per_granule(self, serial_result, parallel_result):
        assert [g.granule_id for g in serial_result.granules] == [
            g.granule_id for g in parallel_result.granules
        ]
        for s, p in zip(serial_result.granules, parallel_result.granules):
            for beam in s.products.classified:
                np.testing.assert_array_equal(
                    s.products.classified[beam].labels,
                    p.products.classified[beam].labels,
                )
                np.testing.assert_array_equal(
                    s.products.freeboard[beam].freeboard_m,
                    p.products.freeboard[beam].freeboard_m,
                )

    def test_aggregate_metrics_identical(self, serial_result, parallel_result):
        np.testing.assert_array_equal(
            serial_result.metrics.confusion, parallel_result.metrics.confusion
        )
        assert serial_result.metrics.accuracy == parallel_result.metrics.accuracy
        assert (
            serial_result.metrics.mean_freeboard_m
            == parallel_result.metrics.mean_freeboard_m
        )

    def test_fingerprints_match_despite_different_workers(
        self, serial_result, parallel_result
    ):
        assert serial_result.fingerprint == parallel_result.fingerprint

    def test_no_cache_means_no_cache_bookkeeping(self, serial_result, parallel_result):
        for result in (serial_result, parallel_result):
            assert result.cache_hits == ()
            assert result.cache_misses == ()


# -- 6-granule acceptance campaign (2x3 grid, 2 workers, cached) --------------

ACCEPTANCE_GRID = {
    "season": ("winter", "freeze_up"),
    "cloud_fraction": (0.1, 0.25, 0.4),
}


@pytest.fixture(scope="module")
def acceptance_config(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("campaign-cache")
    return CampaignConfig(
        base=BASE,
        grid=ACCEPTANCE_GRID,
        seed=5,
        n_workers=2,
        executor="process",
        cache_dir=str(cache_dir),
    )


@pytest.fixture(scope="module")
def first_run(acceptance_config):
    return CampaignRunner(acceptance_config).run()


class TestSixGranuleCampaign:
    def test_runs_end_to_end_with_aggregated_metrics(self, first_run):
        assert first_run.n_granules == 6
        metrics = first_run.metrics
        assert metrics.n_granules == 6
        assert metrics.n_segments == sum(g.metrics.n_segments for g in first_run.granules)
        assert metrics.confusion.shape == (N_CLASSES, N_CLASSES)
        assert metrics.confusion.sum() > 0
        assert 0.0 <= metrics.accuracy <= 1.0
        assert metrics.n_ice_segments > 0
        assert metrics.mean_freeboard_m > 0.0

    def test_every_granule_has_products_and_scenario(self, first_run):
        seasons = set()
        for granule in first_run.granules:
            assert granule.products.classified
            assert set(granule.products.freeboard) == set(granule.products.classified)
            assert set(granule.products.atl07) == set(granule.products.classified)
            assert set(granule.products.atl10) == set(granule.products.classified)
            assert set(granule.scenario) == {"season", "cloud_fraction"}
            seasons.add(granule.scenario["season"])
        assert seasons == {"winter", "freeze_up"}

    def test_granule_seeds_are_distinct(self, first_run):
        seeds = [granule.seed for granule in first_run.granules]
        assert len(set(seeds)) == len(seeds)

    def test_scaling_report_covers_cluster_grid(self, first_run):
        rows = first_run.scaling
        assert len(rows) == 9  # 3 executor values x 3 core values
        assert rows[0].speedup == pytest.approx(1.0)
        best = rows[-1]
        assert best.executors == 4 and best.cores == 4
        assert best.speedup > 1.0
        assert best.total_s < rows[0].total_s

    def test_first_run_populates_cache(self, acceptance_config, first_run):
        assert first_run.cache_hits == ()
        assert len(first_run.cache_misses) == 13  # 6 curated + classifier + 6 results
        runner = CampaignRunner(acceptance_config)
        assert runner.cache is not None
        assert len(runner.cache.keys()) == 13

    def test_second_run_resumes_entirely_from_cache(self, acceptance_config, first_run):
        second = CampaignRunner(acceptance_config).run()
        assert second.cache_misses == ()
        assert sorted(second.cache_hits) == sorted(first_run.cache_misses)
        # Resumed results are the cached artifacts: identical outputs.
        for a, b in zip(first_run.granules, second.granules):
            assert a.granule_id == b.granule_id
            for beam in a.products.freeboard:
                np.testing.assert_array_equal(
                    a.products.freeboard[beam].freeboard_m,
                    b.products.freeboard[beam].freeboard_m,
                )
        for fw, sw in zip(
            first_run.classifier.model.get_weights(), second.classifier.model.get_weights()
        ):
            np.testing.assert_array_equal(fw, sw)
        np.testing.assert_array_equal(first_run.metrics.confusion, second.metrics.confusion)
        # The scaling report is rebuilt from cached stage times, so the
        # resumed run regenerates the original table exactly.
        assert second.scaling == first_run.scaling

    def test_partial_cache_reruns_only_missing_granules(self, acceptance_config, first_run):
        runner = CampaignRunner(acceptance_config)
        target = first_run.granules[2].granule_id
        runner.cache.path(f"{target}.curated").unlink()
        runner.cache.path(f"{target}.result").unlink()

        third = runner.run()
        assert sorted(third.cache_misses) == sorted(
            [f"{target}.curated", f"{target}.result"]
        )
        # The re-curated granule reproduces the original products exactly
        # (same derived seed, same cached shared classifier).
        original = first_run.granule(target)
        recomputed = third.granule(target)
        for beam in original.products.freeboard:
            np.testing.assert_array_equal(
                original.products.freeboard[beam].freeboard_m,
                recomputed.products.freeboard[beam].freeboard_m,
            )


class TestEngineLifecycle:
    """The runner owns one persistent map-reduce engine across fan-outs."""

    def test_runner_reuses_one_engine(self):
        config = CampaignConfig(
            base=BASE, grid=PARITY_GRID, seed=11, n_workers=2, executor="process"
        )
        with CampaignRunner(config) as runner:
            assert runner.engine is runner.engine  # cached_property, one engine
            result = runner.run()
            assert len(result.granules) == 3
            # The fan-outs left a live worker pool behind for reuse.
            assert runner.engine._pool_box
        # The context manager released it.
        assert runner.engine._pool_box == []

    def test_close_is_idempotent_and_safe_before_use(self):
        config = CampaignConfig(base=BASE, grid=PARITY_GRID, seed=11)
        runner = CampaignRunner(config)
        runner.close()  # engine never built: must be a no-op
        runner.close()

    def test_shm_off_campaign_matches_shm_on(self, parallel_result):
        config = CampaignConfig(
            base=BASE, grid=PARITY_GRID, seed=11, n_workers=2,
            executor="process", use_shm=False,
        )
        with CampaignRunner(config) as runner:
            plain = runner.run()
        assert plain.fingerprint == parallel_result.fingerprint
        for a, b in zip(plain.granules, parallel_result.granules):
            assert a.granule_id == b.granule_id
            for beam in a.products.freeboard:
                np.testing.assert_array_equal(
                    a.products.freeboard[beam].freeboard_m,
                    b.products.freeboard[beam].freeboard_m,
                )
        np.testing.assert_array_equal(
            plain.metrics.confusion, parallel_result.metrics.confusion
        )
