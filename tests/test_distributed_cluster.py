"""Tests for the simulated cluster cost model (Tables II / V shape)."""

import pytest

from repro.distributed.cluster import ClusterCostModel, ClusterSimulation


class TestClusterCostModel:
    def test_load_time_decreases_with_slots(self):
        model = ClusterCostModel()
        t1 = model.load_time(100.0, 1, 1)
        t4 = model.load_time(100.0, 2, 2)
        t16 = model.load_time(100.0, 4, 4)
        assert t1 > t4 > t16

    def test_load_speedup_bounded_by_amdahl(self):
        model = ClusterCostModel(load_serial_fraction=0.05)
        speedup = model.load_time(100.0, 1, 1) / model.load_time(100.0, 4, 4)
        assert speedup <= 1.0 / 0.05 + 1e-9

    def test_reduce_time_near_linear(self):
        model = ClusterCostModel(reduce_serial_fraction=0.0, executor_bandwidth_benefit=0.0)
        assert model.reduce_time(160.0, 4, 4) == pytest.approx(10.0)

    def test_map_time_constant(self):
        model = ClusterCostModel(map_overhead_s=0.3)
        assert model.map_time(1, 1) == model.map_time(4, 4) == pytest.approx(0.3)

    def test_executor_bandwidth_benefit_favours_more_executors(self):
        model = ClusterCostModel(executor_bandwidth_benefit=0.05)
        # Same slot count, more executors -> faster reduce.
        assert model.reduce_time(100.0, 4, 1) < model.reduce_time(100.0, 1, 4)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ClusterCostModel(load_serial_fraction=1.5)
        with pytest.raises(ValueError):
            ClusterCostModel(executor_bandwidth_benefit=-0.1)
        with pytest.raises(ValueError):
            ClusterCostModel().load_time(100.0, 0, 1)


class TestScalingTable:
    @pytest.fixture()
    def rows(self):
        sim = ClusterSimulation()
        return sim.scaling_table(108.0, 390.0)

    def test_grid_size(self, rows):
        assert len(rows) == 9  # 3 executor counts x 3 core counts

    def test_baseline_row_has_unit_speedup(self, rows):
        first = rows[0]
        assert first.executors == 1 and first.cores == 1
        assert first.speedup_load == pytest.approx(1.0)
        assert first.speedup_reduce == pytest.approx(1.0)

    def test_paper_shape_reproduced(self, rows):
        """The 4x4 configuration reaches ~9x load and ~16x reduce speedup."""
        best = rows[-1]
        assert best.executors == 4 and best.cores == 4
        assert 8.0 <= best.speedup_load <= 10.5
        assert 14.0 <= best.speedup_reduce <= 18.5

    def test_speedups_monotone_in_total_slots(self, rows):
        by_slots = sorted(rows, key=lambda r: r.executors * r.cores)
        speedups = [r.speedup_reduce for r in by_slots]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_row_as_dict_columns(self, rows):
        d = rows[0].as_dict()
        assert set(d) == {
            "Executors", "Cores", "Load Time (s)", "Map Time (s)",
            "Reduce Time (s)", "Speedup Load", "Speedup Reduce",
        }

    def test_invalid_baselines_rejected(self):
        sim = ClusterSimulation()
        with pytest.raises(ValueError):
            sim.scaling_table(0.0, 100.0)


class TestRunAndScale:
    def test_runs_job_and_builds_table(self):
        sim = ClusterSimulation()

        def load():
            return list(range(500))

        result, rows = sim.run_and_scale(
            load, lambda p: sum(p), lambda parts: sum(parts), paper_baseline=(108.0, 390.0)
        )
        assert result.value == sum(range(500))
        assert len(rows) == 9
        assert rows[0].load_time_s > rows[-1].load_time_s

    def test_measured_baseline_used_when_no_paper_values(self):
        sim = ClusterSimulation()
        result, rows = sim.run_and_scale(
            lambda: list(range(100)), lambda p: sum(p), lambda parts: sum(parts)
        )
        assert rows[0].speedup_reduce == pytest.approx(1.0)
