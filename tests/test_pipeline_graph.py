"""Unit tests for the stage-graph structure and fingerprinting."""

import pytest

from repro.pipeline import (
    ArtifactSpec,
    GraphRunner,
    Stage,
    StageGraph,
    build_default_graph,
    default_graph,
)
from repro.workflow.end_to_end import ExperimentConfig


def _noop(ctx, **inputs):
    return {}


class TestGraphValidation:
    def test_default_graph_builds_and_orders(self):
        graph = build_default_graph()
        order = [stage.name for stage in graph.topological_order()]
        # Producers always precede consumers.
        assert order.index("scene") < order.index("atl03")
        assert order.index("atl03") < order.index("resample")
        assert order.index("train") < order.index("infer")
        assert order.index("infer") < order.index("sea_surface")
        assert order.index("sea_surface") < order.index("freeboard")
        assert order.index("atl07") < order.index("atl10")
        assert order.index("freeboard") < order.index("metrics")

    def test_duplicate_stage_rejected(self):
        spec = ArtifactSpec("a", int)
        stage = Stage("s", _noop, (), ("a",))
        with pytest.raises(ValueError, match="duplicate stage"):
            StageGraph([stage, stage], [spec])

    def test_duplicate_producer_rejected(self):
        spec = ArtifactSpec("a", int)
        with pytest.raises(ValueError, match="produced by both"):
            StageGraph(
                [Stage("s1", _noop, (), ("a",)), Stage("s2", _noop, (), ("a",))],
                [spec],
            )

    def test_undeclared_artifact_rejected(self):
        with pytest.raises(ValueError, match="undeclared artifact"):
            StageGraph([Stage("s", _noop, (), ("mystery",))], [])

    def test_unproduced_input_rejected(self):
        spec = ArtifactSpec("a", int)
        with pytest.raises(ValueError, match="no stage produces"):
            StageGraph([Stage("s", _noop, ("a",), ())], [spec])

    def test_cycle_rejected(self):
        specs = [ArtifactSpec("a", int), ArtifactSpec("b", int)]
        stages = [
            Stage("s1", _noop, ("b",), ("a",)),
            Stage("s2", _noop, ("a",), ("b",)),
        ]
        with pytest.raises(ValueError, match="cycle"):
            StageGraph(stages, specs)


class TestRequiredAndDownstream:
    def test_required_stages_for_curation_targets(self):
        graph = default_graph()
        names = {s.name for s in graph.required_stages(("experiment_data",))}
        assert "train" not in names
        assert "sea_surface" not in names
        assert {"scene", "atl03", "s2", "segmentation", "resample", "drift",
                "autolabel", "curate"} <= names

    def test_precomputed_artifacts_prune_ancestors(self):
        graph = default_graph()
        names = {
            s.name
            for s in graph.required_stages(
                ("freeboard",), precomputed=("classified", "granule", "segments")
            )
        }
        assert names == {"sea_surface", "freeboard"}

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError, match="unknown artifact"):
            default_graph().required_stages(("nope",))

    def test_downstream_of_sea_surface(self):
        graph = default_graph()
        downstream = set(graph.downstream_stages("sea_surface"))
        assert downstream == {
            "freeboard",
            "metrics",
            "grid_granule",
            "mosaic_campaign",
            "build_pyramid",
        }

    def test_downstream_of_infer_covers_retrieval(self):
        graph = default_graph()
        downstream = set(graph.downstream_stages("infer"))
        assert downstream == {
            "sea_surface",
            "freeboard",
            "metrics",
            "grid_granule",
            "mosaic_campaign",
            "build_pyramid",
        }


class TestGraphDerivation:
    def test_replace_swaps_a_stage(self):
        graph = default_graph()
        drift = graph.stages["drift"]
        swapped = Stage(
            "drift", _noop, drift.inputs, drift.outputs, drift.config_paths, version="ablated"
        )
        derived = graph.replace(swapped)
        assert derived.stages["drift"].version == "ablated"
        assert graph.stages["drift"].version == "1"  # original untouched

    def test_replace_unknown_stage_raises(self):
        with pytest.raises(ValueError, match="no stage"):
            default_graph().replace(Stage("nope", _noop, (), ()))

    def test_extend_appends_stage(self):
        graph = default_graph()
        extra_spec = ArtifactSpec("thickness", object)
        extra = Stage("thickness", _noop, ("freeboard",), ("thickness",))
        derived = graph.extend([extra], [extra_spec])
        assert "thickness" in derived.stages
        assert "thickness" not in graph.stages
        assert set(derived.downstream_stages("freeboard")) == {
            "grid_granule",
            "mosaic_campaign",
            "build_pyramid",
            "metrics",
            "thickness",
        }


class TestFingerprints:
    def test_fingerprints_are_stable(self):
        runner = GraphRunner(default_graph())
        cfg = ExperimentConfig(seed=1)
        assert runner.fingerprints(cfg) == runner.fingerprints(cfg)

    def test_seed_changes_every_rng_dependent_stage(self):
        runner = GraphRunner(default_graph())
        a = runner.fingerprints(ExperimentConfig(seed=1))
        b = runner.fingerprints(ExperimentConfig(seed=2))
        assert a["scene"] != b["scene"]
        assert a["classifier"] != b["classifier"]

    def test_sea_surface_change_touches_only_downstream(self):
        from dataclasses import replace

        from repro.config import SeaSurfaceConfig

        runner = GraphRunner(default_graph())
        cfg = ExperimentConfig(seed=1)
        a = runner.fingerprints(cfg)
        b = runner.fingerprints(
            replace(cfg, sea_surface=SeaSurfaceConfig(method="average"))
        )
        unchanged = (
            "scene", "granule", "image", "segmentation", "segments", "drift",
            "experiment_data", "training_set", "classifier", "classified",
        )
        for name in unchanged:
            assert a[name] == b[name], name
        for name in ("sea_surface", "freeboard", "atl07", "atl10", "granule_metrics"):
            assert a[name] != b[name], name

    def test_precomputed_fingerprint_seeds_downstream(self):
        runner = GraphRunner(default_graph())
        cfg = ExperimentConfig(seed=1)
        a = runner.fingerprints(cfg, precomputed={"classifier": "clf-A"})
        b = runner.fingerprints(cfg, precomputed={"classifier": "clf-B"})
        assert a["classified"] != b["classified"]
        assert a["segments"] == b["segments"]

    def test_granule_identity_only_affects_metrics(self):
        runner = GraphRunner(default_graph())
        cfg = ExperimentConfig(seed=1)
        a = runner.fingerprints(cfg, granule_id="g000")
        b = runner.fingerprints(cfg, granule_id="g001")
        assert a["granule_metrics"] != b["granule_metrics"]
        assert a["freeboard"] == b["freeboard"]

    def test_kernel_backend_is_part_of_every_fingerprint(self):
        """A cache shared across REPRO_KERNEL_BACKEND values must never mix
        backends: reference and vectorized agree only to ~1e-10."""
        from repro import kernels

        runner = GraphRunner(default_graph())
        cfg = ExperimentConfig(seed=1)
        with kernels.use_backend("vectorized"):
            vec = runner.fingerprints(cfg)
        with kernels.use_backend("reference"):
            ref = runner.fingerprints(cfg)
        assert set(vec) == set(ref)
        for name in vec:
            assert vec[name] != ref[name], name

    def test_version_bump_invalidates_stage(self):
        graph = default_graph()
        scene = graph.stages["scene"]
        bumped = graph.replace(
            Stage(
                "scene", scene.fn, scene.inputs, scene.outputs, scene.config_paths,
                version="2",
            )
        )
        cfg = ExperimentConfig(seed=1)
        a = GraphRunner(graph).fingerprints(cfg)
        b = GraphRunner(bumped).fingerprints(cfg)
        assert a["scene"] != b["scene"]
        assert a["freeboard"] != b["freeboard"]  # chained invalidation


class TestArtifactSpecValidation:
    def test_wrong_type_rejected(self):
        spec = ArtifactSpec("a", int)
        with pytest.raises(TypeError, match="must be int"):
            spec.validate("nope")

    def test_per_beam_requires_mapping(self):
        spec = ArtifactSpec("a", int, per_beam=True)
        with pytest.raises(TypeError, match="per-beam mapping"):
            spec.validate([1, 2])
        with pytest.raises(TypeError, match="must be"):
            spec.validate({"gt1l": "nope"})
        spec.validate({"gt1l": 3})

    def test_optional_allows_none(self):
        ArtifactSpec("a", int, optional=True).validate(None)
        with pytest.raises(TypeError, match="must not be None"):
            ArtifactSpec("a", int).validate(None)
