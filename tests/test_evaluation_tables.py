"""Tests for table regeneration and report formatting."""

import pytest

from repro.evaluation.report import format_markdown_table, format_table
from repro.evaluation.tables import (
    regenerate_table1,
    regenerate_table2,
    regenerate_table4,
    regenerate_table5,
)


class TestTable1:
    def test_eight_rows_with_expected_columns(self):
        rows = regenerate_table1()
        assert len(rows) == 8
        assert {"index", "is2_time", "s2_time", "time_difference_min", "shift_m"} <= set(rows[0])

    def test_all_within_two_hours(self):
        assert all(row["time_difference_min"] < 120 for row in regenerate_table1())


class TestTable2:
    def test_shape_and_speedups(self):
        rows = regenerate_table2()
        assert len(rows) == 9
        first, last = rows[0], rows[-1]
        assert first["Speedup Load"] == pytest.approx(1.0)
        assert first["Load Time (s)"] == pytest.approx(108.0, rel=0.01)
        # Paper: 9.0x load and 16.25x reduce at 4 executors x 4 cores.
        assert last["Speedup Load"] == pytest.approx(9.0, abs=1.0)
        assert last["Speedup Reduce"] == pytest.approx(16.25, abs=2.5)

    def test_reduce_time_monotone_in_slots(self):
        rows = regenerate_table2()
        by_slots = sorted(rows, key=lambda r: r["Executors"] * r["Cores"])
        times = [r["Reduce Time (s)"] for r in by_slots]
        assert all(b <= a + 1e-9 for a, b in zip(times, times[1:]))


class TestTable4:
    def test_gpu_counts_and_speedup(self):
        rows = regenerate_table4()
        assert [r["No. of GPUs"] for r in rows] == [1, 2, 4, 6, 8]
        assert rows[0]["Time (s)"] == pytest.approx(280.72, rel=0.02)
        assert rows[-1]["Speedup"] == pytest.approx(7.25, abs=0.6)

    def test_throughput_increases(self):
        rows = regenerate_table4()
        data_rates = [r["Data/s"] for r in rows]
        assert all(b > a for a, b in zip(data_rates, data_rates[1:]))


class TestTable5:
    def test_shape_and_speedups(self):
        rows = regenerate_table5()
        assert len(rows) == 9
        assert rows[0]["Load Time (s)"] == pytest.approx(111.0, rel=0.01)
        assert rows[-1]["Speedup Load"] == pytest.approx(8.54, abs=1.0)
        assert rows[-1]["Speedup Reduce"] == pytest.approx(15.68, abs=2.5)


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_markdown_table(self):
        rows = [{"model": "LSTM", "acc": 96.56}]
        text = format_markdown_table(rows, title="Table III")
        assert "| model | acc |" in text
        assert "| LSTM | 96.56 |" in text

    def test_markdown_empty(self):
        assert "_(no rows)_" in format_markdown_table([])
