"""Tests for the mini map-reduce engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.mapreduce import MapReduceEngine, partition_indices


def _sum_of_squares_job(n_items=1000):
    items = list(range(n_items))

    def load():
        return items

    def map_fn(partition):
        return sum(x * x for x in partition)

    def reduce_fn(parts):
        return sum(parts)

    expected = sum(x * x for x in items)
    return load, map_fn, reduce_fn, expected


def _square_chunk(chunk):
    """Module-level map function so the process executor can pickle it."""
    return {"squared": chunk["values"] ** 2}


def _concat_squared(parts):
    return np.concatenate([p["squared"] for p in parts])


class TestPartitionIndices:
    def test_balanced_contiguous(self):
        parts = partition_indices(10, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        np.testing.assert_array_equal(np.concatenate(parts), np.arange(10))

    def test_more_partitions_than_items(self):
        parts = partition_indices(2, 5)
        assert len(parts) == 5
        assert sum(len(p) for p in parts) == 2

    def test_zero_items(self):
        parts = partition_indices(0, 3)
        assert all(len(p) == 0 for p in parts)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_indices(-1, 2)
        with pytest.raises(ValueError):
            partition_indices(5, 0)

    @given(n=st.integers(min_value=0, max_value=500), k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_property_partition_is_exact_cover(self, n, k):
        parts = partition_indices(n, k)
        assert len(parts) == k
        combined = np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
        np.testing.assert_array_equal(combined, np.arange(n))
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1


class TestMapReduceEngine:
    @pytest.mark.parametrize("n_partitions", [1, 2, 5, 16])
    def test_result_independent_of_partition_count(self, n_partitions):
        load, map_fn, reduce_fn, expected = _sum_of_squares_job()
        engine = MapReduceEngine(n_partitions=n_partitions, executor="serial")
        result = engine.run(load, map_fn, reduce_fn)
        assert result.value == expected

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_executors_agree(self, executor):
        load, map_fn, reduce_fn, expected = _sum_of_squares_job()
        engine = MapReduceEngine(n_partitions=4, executor=executor)
        assert engine.run(load, map_fn, reduce_fn).value == expected

    def test_process_executor_with_picklable_map(self):
        values = np.arange(200, dtype=float)
        engine = MapReduceEngine(n_partitions=2, executor="process", max_workers=2)
        result = engine.map_arrays({"values": values}, _square_chunk, _concat_squared)
        np.testing.assert_allclose(result.value, values**2)

    def test_timing_stages_present(self):
        load, map_fn, reduce_fn, _ = _sum_of_squares_job(100)
        result = MapReduceEngine(2, "serial").run(load, map_fn, reduce_fn)
        for stage in ("load", "map", "reduce"):
            assert result.timing.get(stage) >= 0.0
        assert result.total_seconds >= result.map_seconds

    def test_map_arrays_matches_direct_computation(self, rng):
        x = rng.normal(size=2000)
        y = rng.normal(size=2000)
        arrays = {"x": x, "y": y}

        def map_fn(chunk):
            return float(np.dot(chunk["x"], chunk["y"]))

        def reduce_fn(parts):
            return sum(parts)

        result = MapReduceEngine(7, "serial").map_arrays(arrays, map_fn, reduce_fn)
        assert result.value == pytest.approx(float(np.dot(x, y)))

    def test_map_arrays_rejects_ragged_input(self, rng):
        with pytest.raises(ValueError):
            MapReduceEngine(2, "serial").map_arrays(
                {"a": np.zeros(5), "b": np.zeros(4)}, lambda c: 0, sum
            )

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MapReduceEngine(n_partitions=0)
        with pytest.raises(ValueError):
            MapReduceEngine(executor="spark")
        with pytest.raises(ValueError):
            MapReduceEngine(max_workers=0)

    def test_empty_input(self):
        engine = MapReduceEngine(3, "serial")
        result = engine.run(lambda: [], lambda p: len(p), lambda parts: sum(parts))
        assert result.value == 0
