"""Tests for the Sequential model: training loop, gradients, persistence hooks."""

import numpy as np
import pytest

from repro.ml.dataset import Dataset
from repro.ml.layers import Dense, ELU, Softmax
from repro.ml.losses import CategoricalCrossEntropy, FocalLoss
from repro.ml.model import Sequential
from repro.ml.optimizers import Adam, SGD


def _toy_problem(rng, n=300):
    """A linearly separable 3-class problem in 2 features."""
    X = rng.normal(size=(n, 2))
    y = np.zeros(n, dtype=int)
    y[X[:, 0] + X[:, 1] > 0.7] = 1
    y[X[:, 0] - X[:, 1] > 0.7] = 2
    return Dataset(X, y)


def _small_model(rng=0):
    return Sequential(
        [Dense(2, 16, rng=rng), ELU(), Dense(16, 3, rng=rng), Softmax()],
        n_classes=3,
    ).compile(optimizer=Adam(learning_rate=0.01), loss=CategoricalCrossEntropy())


class TestSequentialBasics:
    def test_requires_layers_and_classes(self):
        with pytest.raises(ValueError):
            Sequential([], n_classes=3)
        with pytest.raises(ValueError):
            Sequential([Dense(2, 2, rng=0)], n_classes=1)

    def test_parameter_count(self):
        model = _small_model()
        assert model.n_parameters == (2 * 16 + 16) + (16 * 3 + 3)

    def test_forward_output_is_probability(self, rng):
        model = _small_model()
        probs = model.predict_proba(rng.normal(size=(10, 2)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_training_required_before_fit(self, rng):
        model = Sequential([Dense(2, 3, rng=0), Softmax()], n_classes=3)
        with pytest.raises(RuntimeError):
            model.compute_gradients(rng.normal(size=(4, 2)), np.zeros(4, dtype=int))

    def test_get_set_weights_round_trip(self, rng):
        a = _small_model(rng=0)
        b = _small_model(rng=1)
        X = rng.normal(size=(5, 2))
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))
        b.set_weights(a.get_weights())
        np.testing.assert_allclose(a.predict_proba(X), b.predict_proba(X))

    def test_set_weights_shape_check(self):
        model = _small_model()
        weights = model.get_weights()
        with pytest.raises(ValueError):
            model.set_weights(weights[:-1])
        weights[0] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_summary_mentions_layers(self):
        text = _small_model().summary()
        assert "Dense" in text and "parameters" in text


class TestTraining:
    def test_fit_reduces_loss_and_learns(self, rng):
        data = _toy_problem(rng)
        model = _small_model()
        history = model.fit(data, epochs=15, batch_size=32, rng=0)
        assert history.loss[-1] < history.loss[0]
        assert history.accuracy[-1] > 0.85

    def test_validation_metrics_recorded(self, rng):
        data = _toy_problem(rng, n=200)
        val = _toy_problem(rng, n=80)
        model = _small_model()
        history = model.fit(data, epochs=3, batch_size=16, validation=val, rng=1)
        assert len(history.val_loss) == 3
        assert len(history.val_accuracy) == 3
        assert len(history.epoch_seconds) == 3

    def test_train_batch_equals_compute_plus_apply(self, rng):
        data = _toy_problem(rng, n=64)
        a = _small_model(rng=5)
        b = _small_model(rng=5)
        b.set_weights(a.get_weights())
        X, y = data.X[:32], data.y[:32]
        a.train_batch(X, y)
        loss, grads = b.compute_gradients(X, y)
        b.apply_gradients(grads)
        for pa, pb in zip(a.params, b.params):
            np.testing.assert_allclose(pa, pb)

    def test_gradients_match_numerical_through_full_model(self, rng):
        model = Sequential(
            [Dense(3, 4, rng=2), ELU(), Dense(4, 3, rng=3), Softmax()], n_classes=3
        ).compile(optimizer=SGD(0.1), loss=FocalLoss(gamma=2.0))
        X = rng.normal(size=(6, 3))
        y = rng.integers(0, 3, 6)
        _, grads = model.compute_gradients(X, y, training=False)

        from repro.ml.dataset import one_hot

        targets = one_hot(y, 3)
        eps = 1e-6
        # Check a sample of parameters in the first Dense layer.
        W = model.layers[0].W
        numeric = np.zeros(5)
        analytic = np.zeros(5)
        flat_idx = np.random.default_rng(0).choice(W.size, 5, replace=False)
        for k, idx in enumerate(flat_idx):
            i, j = np.unravel_index(idx, W.shape)
            orig = W[i, j]
            W[i, j] = orig + eps
            up = model.loss(model.forward(X), targets)
            W[i, j] = orig - eps
            down = model.loss(model.forward(X), targets)
            W[i, j] = orig
            numeric[k] = (up - down) / (2 * eps)
            analytic[k] = grads[0][i, j]
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_invalid_epochs_rejected(self, rng):
        with pytest.raises(ValueError):
            _small_model().fit(_toy_problem(rng, 50), epochs=0)

    def test_apply_gradients_length_check(self, rng):
        model = _small_model()
        with pytest.raises(ValueError):
            model.apply_gradients([np.zeros((2, 16))])

    def test_evaluate_returns_loss_and_accuracy(self, rng):
        data = _toy_problem(rng, 100)
        model = _small_model()
        loss, acc = model.evaluate(data)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_predict_returns_labels_in_range(self, rng):
        model = _small_model()
        labels = model.predict(rng.normal(size=(40, 2)))
        assert labels.shape == (40,)
        assert labels.min() >= 0 and labels.max() <= 2
