"""On-disk Level-3 products: strict self-description and the round trip.

Two satellite guarantees live here: products that cannot announce
themselves (bad sidecar, unknown format, truncated/corrupt npz) fail with
one actionable error type (`Level3ProductError`), and a written product
reloads **byte-identically** — property-tested over random variable sets,
dtypes and attrs with hypothesis.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import (
    L3_FORMAT,
    PRODUCT_FORMATS,
    Level3ProductError,
    load_sidecar,
    read_level3,
    write_level3,
)

HYPOTHESIS_SETTINGS = dict(max_examples=25, deadline=None)


def make_product(variables=None, attrs=None, ny=4, nx=6, seed=0):
    rng = np.random.default_rng(seed)
    grid = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=500.0, nx=nx, ny=ny)
    if variables is None:
        variables = {
            "n_segments": rng.integers(0, 5, grid.shape).astype(np.int64),
            "freeboard_mean": rng.normal(0.3, 0.1, grid.shape),
        }
    return Level3Grid(
        grid=grid,
        variables=variables,
        attrs=dict(attrs) if attrs else {},
        metadata={"kind": "granule", "granule_id": "g000", "fingerprint": "fp"},
    )


class TestSelfDescriptionErrors:
    def test_missing_sidecar_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="sidecar"):
            read_level3(tmp_path / "nope")

    def test_unparsable_sidecar(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        (tmp_path / "p.json").write_text("{ truncated")
        with pytest.raises(Level3ProductError, match="not valid JSON"):
            read_level3(tmp_path / "p")

    def test_sidecar_without_format_tag(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = json.loads((tmp_path / "p.json").read_text())
        del payload["format"]
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="no 'format' tag"):
            read_level3(tmp_path / "p")

    def test_sidecar_that_is_not_an_object(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        (tmp_path / "p.json").write_text(json.dumps(["not", "an", "object"]))
        with pytest.raises(Level3ProductError, match="no 'format' tag"):
            read_level3(tmp_path / "p")

    def test_unknown_format_version(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["format"] = "repro-l3/999"
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="repro-l3/999"):
            read_level3(tmp_path / "p")

    def test_truncated_npz(self, tmp_path):
        npz_path, _ = write_level3(make_product(), tmp_path / "p")
        raw = npz_path.read_bytes()
        npz_path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(Level3ProductError, match="truncated or corrupt"):
            read_level3(tmp_path / "p")

    def test_npz_that_is_not_a_zip(self, tmp_path):
        npz_path, _ = write_level3(make_product(), tmp_path / "p")
        npz_path.write_bytes(b"this is not a zip archive")
        with pytest.raises(Level3ProductError, match="truncated or corrupt"):
            read_level3(tmp_path / "p")

    def test_missing_npz_is_file_not_found(self, tmp_path):
        npz_path, _ = write_level3(make_product(), tmp_path / "p")
        npz_path.unlink()
        with pytest.raises(FileNotFoundError, match="arrays"):
            read_level3(tmp_path / "p")

    def test_arrays_out_of_sync_with_sidecar(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["variables"]["phantom"] = {"dtype": "float64", "shape": [4, 6]}
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="missing"):
            read_level3(tmp_path / "p")

    def test_declaration_mismatch(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["variables"]["freeboard_mean"]["dtype"] = "int8"
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="does not match"):
            read_level3(tmp_path / "p")

    def test_format_valid_sidecar_with_missing_sections(self, tmp_path):
        # A sidecar with the right format tag but no grid/variable
        # description must still raise the one actionable type, not KeyError.
        write_level3(make_product(), tmp_path / "p")
        (tmp_path / "p.json").write_text(json.dumps({"format": L3_FORMAT}))
        with pytest.raises(Level3ProductError, match="malformed"):
            read_level3(tmp_path / "p")

    def test_format_valid_sidecar_with_degenerate_grid(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["grid"]["cell_size_m"] = 0.0
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="malformed"):
            read_level3(tmp_path / "p")

    def test_error_type_is_a_value_error(self):
        # Callers that caught ValueError before the dedicated type keep working.
        assert issubclass(Level3ProductError, ValueError)

    def test_load_sidecar_happy_path(self, tmp_path):
        write_level3(make_product(), tmp_path / "p")
        payload = load_sidecar(tmp_path / "p")
        assert payload["format"] == L3_FORMAT
        assert "grid" in payload and "variables" in payload


# -- hypothesis round trip ---------------------------------------------------

_DTYPES = ("float64", "float32", "int64", "int32", "int16", "uint8", "bool")

_names = st.lists(
    st.text(
        alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz_0123456789"),
        min_size=1,
        max_size=12,
    ).filter(lambda s: not s[0].isdigit()),
    min_size=1,
    max_size=5,
    unique=True,
)

_attr_text = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)),
    max_size=20,
)


@st.composite
def products(draw):
    ny = draw(st.integers(min_value=1, max_value=5))
    nx = draw(st.integers(min_value=1, max_value=5))
    names = draw(_names)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    grid = GridDefinition(
        x_min_m=float(draw(st.integers(-10_000, 10_000))),
        y_min_m=float(draw(st.integers(-10_000, 10_000))),
        cell_size_m=float(draw(st.integers(1, 5_000))),
        nx=nx,
        ny=ny,
    )
    variables = {}
    attrs = {}
    for name in names:
        dtype = draw(st.sampled_from(_DTYPES))
        if dtype.startswith("float"):
            layer = rng.normal(0.0, 1.0, grid.shape).astype(dtype)
            # Exercise non-finite payloads too: NaN/inf must survive verbatim.
            layer.flat[:: max(layer.size // 3, 1)] = draw(
                st.sampled_from([np.nan, np.inf, -np.inf, 0.0])
            )
        elif dtype == "bool":
            layer = rng.random(grid.shape) < 0.5
        else:
            layer = rng.integers(0, 100, grid.shape).astype(dtype)
        variables[name] = layer
        attrs[name] = {
            "units": draw(_attr_text),
            "long_name": draw(_attr_text),
        }
    return Level3Grid(grid=grid, variables=variables, attrs=attrs, metadata={"kind": "granule"})


class TestRoundTrip:
    @given(product=products(), format=st.sampled_from(PRODUCT_FORMATS))
    @settings(**HYPOTHESIS_SETTINGS)
    def test_round_trip_is_byte_identical(self, product, format, tmp_path_factory):
        base = tmp_path_factory.mktemp("l3rt") / "product"
        write_level3(product, base, format=format)
        reloaded = read_level3(base)

        assert set(reloaded.variables) == set(product.variables)
        for name, original in product.variables.items():
            value = reloaded.variables[name]
            assert value.dtype == original.dtype
            assert value.shape == original.shape
            assert value.tobytes() == original.tobytes()

        assert reloaded.grid == product.grid
        assert reloaded.metadata == product.metadata
        # The writer stringifies attr values; keys and text survive exactly.
        for name, original_attrs in product.attrs.items():
            assert reloaded.attrs[name] == {
                str(k): str(v) for k, v in original_attrs.items()
            }

    def test_round_trip_accepts_either_sibling_path(self, tmp_path):
        product = make_product()
        write_level3(product, tmp_path / "p")
        for path in (tmp_path / "p", tmp_path / "p.json", tmp_path / "p.npz"):
            reloaded = read_level3(path)
            assert set(reloaded.variables) == set(product.variables)

    def test_raw_accepts_either_sibling_path(self, tmp_path):
        product = make_product()
        write_level3(product, tmp_path / "p", format="raw")
        for path in (tmp_path / "p", tmp_path / "p.json", tmp_path / "p.raw"):
            reloaded = read_level3(path)
            assert set(reloaded.variables) == set(product.variables)


class TestRawFormat:
    def test_raw_equals_npz_byte_for_byte(self, tmp_path):
        product = make_product(seed=42)
        write_level3(product, tmp_path / "npz_p", format="npz")
        write_level3(product, tmp_path / "raw_p", format="raw")
        from_npz = read_level3(tmp_path / "npz_p")
        from_raw = read_level3(tmp_path / "raw_p")
        assert set(from_raw.variables) == set(from_npz.variables)
        for name, expected in from_npz.variables.items():
            value = from_raw.variables[name]
            assert value.dtype == expected.dtype
            assert value.tobytes() == expected.tobytes()
        assert from_raw.grid == from_npz.grid
        assert from_raw.metadata == from_npz.metadata
        assert from_raw.attrs == from_npz.attrs

    def test_raw_variables_are_lazy_read_only_views(self, tmp_path):
        product = make_product(seed=3)
        write_level3(product, tmp_path / "p", format="raw")
        reloaded = read_level3(tmp_path / "p")
        for value in reloaded.variables.values():
            assert not value.flags.writeable
            assert not value.flags.owndata  # memmap-backed, not a copy
            with pytest.raises(ValueError):
                value[...] = 0

    def test_raw_views_survive_product_garbage_collection(self, tmp_path):
        product = make_product(seed=4)
        write_level3(product, tmp_path / "p", format="raw")
        reloaded = read_level3(tmp_path / "p")
        view = reloaded.variables["freeboard_mean"]
        expected = product.variables["freeboard_mean"]
        del reloaded  # the view's base chain pins the mapping
        assert view.tobytes() == expected.tobytes()

    def test_invalid_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            write_level3(make_product(), tmp_path / "p", format="parquet")

    def test_truncated_blob(self, tmp_path):
        write_level3(make_product(), tmp_path / "p", format="raw")
        raw_path = tmp_path / "p.raw"
        blob = raw_path.read_bytes()
        raw_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Level3ProductError, match="truncat"):
            read_level3(tmp_path / "p")

    def test_missing_blob_is_file_not_found(self, tmp_path):
        write_level3(make_product(), tmp_path / "p", format="raw")
        (tmp_path / "p.raw").unlink()
        with pytest.raises(FileNotFoundError):
            read_level3(tmp_path / "p")

    def test_storage_section_missing_variable(self, tmp_path):
        write_level3(make_product(), tmp_path / "p", format="raw")
        payload = json.loads((tmp_path / "p.json").read_text())
        del payload["storage"]["arrays"]["freeboard_mean"]
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="freeboard_mean"):
            read_level3(tmp_path / "p")

    def test_malformed_storage_section(self, tmp_path):
        write_level3(make_product(), tmp_path / "p", format="raw")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["storage"] = {"layout": "raw"}  # no file / arrays
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="storage"):
            read_level3(tmp_path / "p")

    def test_storage_nbytes_inconsistent_with_declaration(self, tmp_path):
        write_level3(make_product(), tmp_path / "p", format="raw")
        payload = json.loads((tmp_path / "p.json").read_text())
        payload["storage"]["arrays"]["freeboard_mean"]["nbytes"] = 1
        (tmp_path / "p.json").write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError):
            read_level3(tmp_path / "p")
