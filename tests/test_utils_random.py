"""Tests for the deterministic random-number helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.random import (
    choice_without_replacement,
    default_rng,
    derive_rng,
    spawn_rngs,
    stratified_indices,
)


class TestDefaultRng:
    def test_integer_seed_is_deterministic(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestDeriveRng:
    def test_same_key_same_stream(self):
        parent1 = default_rng(7)
        parent2 = default_rng(7)
        a = derive_rng(parent1, 3).random(4)
        b = derive_rng(parent2, 3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        parent = default_rng(7)
        a = derive_rng(parent, 0).random(4)
        parent = default_rng(7)
        b = derive_rng(parent, 1).random(4)
        assert not np.array_equal(a, b)

    def test_negative_key_rejected(self):
        with pytest.raises(ValueError):
            derive_rng(default_rng(0), -1)


class TestSpawnRngs:
    def test_deterministic_in_seed(self):
        a = [g.random() for g in spawn_rngs(5, 3)]
        b = [g.random() for g in spawn_rngs(5, 3)]
        assert a == b

    def test_streams_are_independent(self):
        gens = spawn_rngs(5, 4)
        draws = [g.random(8) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count_gives_empty_list(self):
        assert spawn_rngs(0, 0) == []


class TestChoiceWithoutReplacement:
    def test_returns_distinct_indices(self):
        idx = choice_without_replacement(default_rng(0), 100, 30)
        assert len(np.unique(idx)) == 30
        assert idx.min() >= 0 and idx.max() < 100

    def test_oversampling_rejected(self):
        with pytest.raises(ValueError):
            choice_without_replacement(default_rng(0), 5, 6)


class TestStratifiedIndices:
    def test_split_is_disjoint_and_complete(self):
        labels = np.array([0] * 50 + [1] * 30 + [2] * 20)
        train, test = stratified_indices(default_rng(0), labels, 0.2)
        assert set(train).isdisjoint(set(test))
        assert len(train) + len(test) == 100

    def test_class_proportions_roughly_preserved(self):
        labels = np.array([0] * 100 + [1] * 50 + [2] * 10)
        train, test = stratified_indices(default_rng(0), labels, 0.2)
        for cls, count in ((0, 100), (1, 50), (2, 10)):
            n_test = int(np.sum(labels[test] == cls))
            assert abs(n_test - 0.2 * count) <= 1

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            stratified_indices(default_rng(0), np.array([0, 1]), 1.5)

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            stratified_indices(default_rng(0), np.zeros((3, 2), dtype=int), 0.2)

    @given(
        counts=st.lists(st.integers(min_value=2, max_value=40), min_size=1, max_size=4),
        fraction=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_split_partitions_all_indices(self, counts, fraction, seed):
        labels = np.concatenate([np.full(c, i) for i, c in enumerate(counts)])
        train, test = stratified_indices(default_rng(seed), labels, fraction)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(labels.size))
