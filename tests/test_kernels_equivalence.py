"""Property-based equivalence tests for the vectorized kernel layer.

Every kernel in :mod:`repro.kernels` ships two backends — the original
per-window / per-bin / per-step ``reference`` loops and the ``vectorized``
rewrites.  These tests assert that on random scenes (and the degenerate
corners: empty windows, all-open-water tracks, single-photon bins, NaN
photons) the two backends agree to 1e-10.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.atl03.confidence import classify_confidence
from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE
from repro.freeboard.sea_surface import SEA_SURFACE_METHODS, estimate_sea_surface
from repro.kernels import confidence as kconf
from repro.kernels import lstm as klstm
from repro.kernels import sea_surface as ksea

HYPOTHESIS_SETTINGS = dict(max_examples=25, deadline=None)


def assert_equiv(a, b, label, atol=1e-10):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    assert a.shape == b.shape, label
    assert np.array_equal(np.isnan(a), np.isnan(b)), f"{label}: NaN pattern differs"
    assert np.allclose(a, b, atol=atol, rtol=0.0, equal_nan=True), (
        f"{label}: max |diff| = {np.nanmax(np.abs(a - b))}"
    )


# ---------------------------------------------------------------------------
# Backend switch
# ---------------------------------------------------------------------------


class TestBackendSwitch:
    def test_default_is_vectorized(self):
        assert kernels.get_backend() in kernels.KERNEL_BACKENDS

    def test_set_and_restore(self):
        original = kernels.get_backend()
        try:
            kernels.set_backend("reference")
            assert kernels.get_backend() == "reference"
        finally:
            kernels.set_backend(original)

    def test_use_backend_scopes_the_switch(self):
        original = kernels.get_backend()
        with kernels.use_backend("reference"):
            assert kernels.get_backend() == "reference"
        assert kernels.get_backend() == original

    def test_use_backend_restores_on_error(self):
        original = kernels.get_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.get_backend() == original

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.set_backend("cuda")
        with pytest.raises(ValueError):
            kernels.resolve_backend("jax")

    def test_explicit_backend_argument(self):
        along = np.arange(10.0)
        h = np.zeros(10)
        out_ref = kconf.modal_height_per_bin(
            along, h, np.array([0.0, 20.0]), 0.25, backend="reference"
        )
        out_vec = kconf.modal_height_per_bin(
            along, h, np.array([0.0, 20.0]), 0.25, backend="vectorized"
        )
        assert_equiv(out_ref, out_vec, "explicit backend")


# ---------------------------------------------------------------------------
# Windowed sea-surface estimation
# ---------------------------------------------------------------------------


def _window_grid(along, window_m=2_000.0, step_m=1_000.0):
    start = float(along.min())
    stop = float(along.max())
    n_windows = max(int(np.ceil((stop - start) / step_m)), 1)
    starts = start + np.arange(n_windows) * step_m
    stops = starts + window_m
    centers = 0.5 * (starts + stops)
    return starts, stops, centers


def _compare_sea_surface(along, height, error, method, min_segments=3):
    starts, stops, centers = _window_grid(along)
    ref = ksea.window_estimates_reference(
        along, height, error, starts, stops, centers, method, min_segments
    )
    vec = ksea.window_estimates_vectorized(
        along, height, error, starts, stops, centers, method, min_segments
    )
    assert_equiv(ref[0], vec[0], f"{method} heights")
    assert_equiv(ref[1], vec[1], f"{method} errors")
    assert np.array_equal(ref[2], vec[2]), f"{method} counts differ"


class TestSeaSurfaceKernel:
    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    @settings(**HYPOTHESIS_SETTINGS)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 400))
    def test_random_scene(self, method, seed, n):
        rng = np.random.default_rng(seed)
        along = np.sort(rng.uniform(0.0, 10_000.0, n))
        height = rng.normal(0.05, 0.5, n)
        error = np.clip(rng.uniform(0.0, 0.3, n), 0.02, None)
        _compare_sea_surface(along, height, error, method)

    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    def test_sparse_track_with_empty_windows(self, method):
        # Two dense clusters separated by a long gap: the windows in the gap
        # are empty and must be NaN with zero counts under both backends.
        rng = np.random.default_rng(7)
        along = np.sort(
            np.concatenate(
                [rng.uniform(0.0, 500.0, 40), rng.uniform(9_000.0, 10_000.0, 40)]
            )
        )
        height = rng.normal(0.0, 0.2, along.size)
        error = np.full(along.size, 0.05)
        _compare_sea_surface(along, height, error, method)

    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    def test_single_segment(self, method):
        _compare_sea_surface(
            np.array([100.0]), np.array([0.1]), np.array([0.05]), method, min_segments=1
        )

    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    def test_identical_heights(self, method):
        # Zero spread: MAD = 0, every segment within tolerance, weights collapse.
        n = 50
        along = np.linspace(0.0, 5_000.0, n)
        _compare_sea_surface(along, np.full(n, 0.07), np.full(n, 0.05), method)

    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    @settings(**HYPOTHESIS_SETTINGS)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_outlier_rejection_matches(self, method, seed):
        # Heavy-tailed heights exercise the MAD rejection branch on both sides.
        rng = np.random.default_rng(seed)
        n = 200
        along = np.sort(rng.uniform(0.0, 6_000.0, n))
        height = rng.normal(0.0, 0.1, n)
        outliers = rng.random(n) < 0.1
        height[outliers] -= rng.uniform(2.0, 30.0, int(outliers.sum()))
        error = np.clip(rng.uniform(0.0, 0.2, n), 0.02, None)
        _compare_sea_surface(along, height, error, method)

    @pytest.mark.parametrize("method", SEA_SURFACE_METHODS)
    def test_all_open_water_end_to_end(self, method):
        # estimate_sea_surface on a fully open-water track must be identical
        # under both backends.
        rng = np.random.default_rng(3)
        n = 3_000
        along = np.arange(n) * 2.0
        height = rng.normal(0.05, 0.03, n)
        error = np.full(n, 0.05)
        labels = np.full(n, CLASS_OPEN_WATER, dtype=np.int8)
        with kernels.use_backend("reference"):
            ref = estimate_sea_surface(along, height, error, labels, method=method)
        with kernels.use_backend("vectorized"):
            vec = estimate_sea_surface(along, height, error, labels, method=method)
        assert_equiv(ref.heights_m, vec.heights_m, f"{method} end-to-end heights")
        assert_equiv(ref.errors_m, vec.errors_m, f"{method} end-to-end errors")

    def test_no_open_water_fallback_path(self):
        # With zero classified open water the lowest-quantile fallback kicks
        # in; both backends must agree through it.
        rng = np.random.default_rng(11)
        n = 2_000
        along = np.arange(n) * 2.0
        height = rng.normal(0.45, 0.05, n)
        labels = np.full(n, CLASS_THICK_ICE, dtype=np.int8)
        error = np.full(n, 0.05)
        with kernels.use_backend("reference"):
            ref = estimate_sea_surface(along, height, error, labels, method="nasa")
        with kernels.use_backend("vectorized"):
            vec = estimate_sea_surface(along, height, error, labels, method="nasa")
        assert_equiv(ref.heights_m, vec.heights_m, "fallback heights")


# ---------------------------------------------------------------------------
# ATL03 confidence binning
# ---------------------------------------------------------------------------


def _compare_confidence(along, height, bin_length_m=20.0, resolution=0.25):
    start = float(np.nanmin(along))
    stop = float(np.nanmax(along))
    n_bins = max(int(np.ceil((stop - start) / bin_length_m)), 1)
    bin_edges = start + np.arange(n_bins + 1) * bin_length_m
    ref = kconf.modal_height_per_bin_reference(along, height, bin_edges, resolution)
    vec = kconf.modal_height_per_bin_vectorized(along, height, bin_edges, resolution)
    assert_equiv(ref, vec, "modal heights")


class TestConfidenceKernel:
    @settings(**HYPOTHESIS_SETTINGS)
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 2_000))
    def test_random_photon_cloud(self, seed, n):
        rng = np.random.default_rng(seed)
        along = rng.uniform(0.0, 2_000.0, n)
        surface = rng.random(n) < 0.7
        height = np.where(
            surface, rng.normal(0.0, 0.2, n), rng.uniform(-30.0, 30.0, n)
        )
        _compare_confidence(along, height)

    def test_single_photon_bins(self):
        # One photon per bin: the modal height is that photon's height and
        # np.histogram is never consulted.
        along = np.arange(5) * 100.0 + 10.0
        height = np.array([0.1, -3.0, 7.5, 0.0, 2.25])
        _compare_confidence(along, height, bin_length_m=20.0)
        ref = kconf.modal_height_per_bin_reference(
            along, height, np.arange(0.0, 440.0, 20.0), 0.25
        )
        occupied = ~np.isnan(ref)
        assert np.allclose(ref[occupied], height)

    def test_nan_heights_are_excluded(self):
        # NaN photons must neither crash the histogram nor poison the bin.
        along = np.concatenate([np.full(50, 10.0), np.full(50, 30.0)])
        rng = np.random.default_rng(0)
        height = rng.normal(0.0, 1.0, 100)
        height[::7] = np.nan
        _compare_confidence(along, height)
        conf = classify_confidence(along, height)
        assert np.all(conf[np.isnan(height)] == 0)

    def test_all_nan_heights(self):
        along = np.arange(10.0)
        height = np.full(10, np.nan)
        bin_edges = np.array([0.0, 20.0])
        for backend in kernels.KERNEL_BACKENDS:
            out = kconf.modal_height_per_bin(along, height, bin_edges, 0.25, backend=backend)
            assert np.isnan(out).all()
        assert np.all(classify_confidence(along, height) == 0)

    def test_constant_heights(self):
        # Zero span in every bin: median path, bit-equal backends.
        along = np.linspace(0.0, 500.0, 300)
        height = np.full(300, 1.5)
        _compare_confidence(along, height)

    @settings(**HYPOTHESIS_SETTINGS)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_edge_aligned_heights(self, seed):
        # Heights engineered to land exactly on histogram cell edges: the
        # vectorized cell assignment replicates np.histogram's corrections.
        rng = np.random.default_rng(seed)
        n = 500
        along = rng.uniform(0.0, 100.0, n)
        height = rng.integers(-8, 8, n) * 0.25
        _compare_confidence(along, height)

    def test_classify_confidence_backends_agree(self):
        rng = np.random.default_rng(5)
        n = 20_000
        along = rng.uniform(0.0, 5_000.0, n)
        height = np.where(
            rng.random(n) < 0.8, rng.normal(0.0, 0.15, n), rng.uniform(-40.0, 40.0, n)
        )
        with kernels.use_backend("reference"):
            ref = classify_confidence(along, height)
        with kernels.use_backend("vectorized"):
            vec = classify_confidence(along, height)
        assert np.array_equal(ref, vec)


# ---------------------------------------------------------------------------
# LSTM forward/backward
# ---------------------------------------------------------------------------


def _random_lstm(rng, batch, T, n_in, n_units):
    x = rng.normal(size=(batch, T, n_in))
    W = rng.normal(size=(n_in, 4 * n_units)) * 0.3
    U = rng.normal(size=(n_units, 4 * n_units)) * 0.3
    b = rng.normal(size=4 * n_units) * 0.1
    return x, W, U, b


class TestLSTMKernel:
    @pytest.mark.parametrize("activation", klstm.LSTM_ACTIVATIONS)
    @settings(**HYPOTHESIS_SETTINGS)
    @given(
        seed=st.integers(0, 2**32 - 1),
        batch=st.integers(1, 16),
        T=st.integers(1, 8),
    )
    def test_forward_backward_equivalence(self, activation, seed, batch, T):
        rng = np.random.default_rng(seed)
        x, W, U, b = _random_lstm(rng, batch, T, 6, 16)
        ref_f = klstm.lstm_forward_reference(x, W, U, b, activation)
        vec_f = klstm.lstm_forward_vectorized(x, W, U, b, activation)
        for name, r, v in zip(("hs", "cs", "gates"), ref_f, vec_f):
            assert_equiv(r, v, f"forward {name}")
        dh_seq = rng.normal(size=(batch, T, 16))
        ref_b = klstm.lstm_backward_reference(dh_seq, x, *ref_f, W, U, activation)
        vec_b = klstm.lstm_backward_vectorized(dh_seq, x, *vec_f, W, U, activation)
        for name, r, v in zip(("dx", "dW", "dU", "db"), ref_b, vec_b):
            assert_equiv(r, v, f"backward {name}")

    def test_empty_batch(self):
        x, W, U, b = _random_lstm(np.random.default_rng(0), 1, 3, 6, 8)
        x = x[:0]
        for backend in kernels.KERNEL_BACKENDS:
            hs, cs, gates = klstm.lstm_forward(x, W, U, b, "elu", backend=backend)
            assert hs.shape == (0, 4, 8)
            assert gates.shape == (0, 3, 32)

    def test_invalid_activation(self):
        x, W, U, b = _random_lstm(np.random.default_rng(0), 2, 3, 6, 8)
        with pytest.raises(ValueError):
            klstm.lstm_forward_vectorized(x, W, U, b, "relu")
        with pytest.raises(ValueError):
            klstm.lstm_forward_reference(x, W, U, b, "relu")

    def test_layer_training_matches_across_backends(self):
        # One full forward/backward through the LSTM layer class under each
        # backend yields the same gradients.
        from repro.ml.lstm import LSTM

        rng = np.random.default_rng(9)
        x = rng.normal(size=(12, 5, 6))
        grad = rng.normal(size=(12, 16))
        results = {}
        for backend in kernels.KERNEL_BACKENDS:
            with kernels.use_backend(backend):
                layer = LSTM(6, 16, activation="elu", rng=123)
                out = layer.forward(x, training=True)
                dx = layer.backward(grad)
                results[backend] = (out, dx, [g.copy() for g in layer.grads])
        ref_out, ref_dx, ref_grads = results["reference"]
        vec_out, vec_dx, vec_grads = results["vectorized"]
        assert_equiv(ref_out, vec_out, "layer output")
        assert_equiv(ref_dx, vec_dx, "layer dx")
        for i, (rg, vg) in enumerate(zip(ref_grads, vec_grads)):
            assert_equiv(rg, vg, f"layer grad {i}")


# ---------------------------------------------------------------------------
# Pooled batched inference
# ---------------------------------------------------------------------------


class TestPredictBatched:
    def _model(self):
        from repro.ml.layers import Dense, Softmax
        from repro.ml.model import Sequential

        model = Sequential([Dense(4, 8, rng=0), Dense(8, 3, rng=1), Softmax()], n_classes=3)
        return model.compile()

    def test_matches_per_array_predictions(self):
        rng = np.random.default_rng(1)
        model = self._model()
        arrays = [rng.normal(size=(n, 4)) for n in (17, 0, 5, 120)]
        batched = model.predict_batched(arrays)
        assert len(batched) == len(arrays)
        for a, probs in zip(arrays, batched):
            assert probs.shape == (a.shape[0], 3)
            if a.shape[0]:
                assert_equiv(model.predict_proba(a), probs, "pooled probs")

    def test_empty_inputs(self):
        model = self._model()
        assert model.predict_batched([]) == []
        out = model.predict_batched([np.empty((0, 4))])
        assert out[0].shape == (0, 3)
