"""Tests for the map-reduce-parallel freeboard job."""

import numpy as np
import pytest

from repro.distributed.mapreduce import MapReduceEngine
from repro.freeboard.freeboard import compute_freeboard
from repro.freeboard.parallel import parallel_freeboard


class TestParallelFreeboard:
    @pytest.mark.parametrize("n_partitions", [1, 3, 8])
    def test_matches_serial_reference(self, segments, n_partitions):
        labels = segments.truth_class
        serial = compute_freeboard(segments, labels)
        engine = MapReduceEngine(n_partitions=n_partitions, executor="serial")
        parallel, mr = parallel_freeboard(segments, labels, engine)
        np.testing.assert_allclose(parallel.freeboard_m, serial.freeboard_m, atol=1e-12)
        np.testing.assert_allclose(parallel.sea_surface_m, serial.sea_surface_m, atol=1e-12)
        np.testing.assert_array_equal(parallel.labels, serial.labels)
        assert mr.n_partitions == n_partitions

    def test_thread_executor_matches(self, segments):
        labels = segments.truth_class
        serial = compute_freeboard(segments, labels)
        engine = MapReduceEngine(n_partitions=4, executor="thread")
        parallel, _ = parallel_freeboard(segments, labels, engine)
        np.testing.assert_allclose(parallel.freeboard_m, serial.freeboard_m, atol=1e-12)

    def test_timings_recorded(self, segments):
        engine = MapReduceEngine(n_partitions=2, executor="serial")
        _, mr = parallel_freeboard(segments, segments.truth_class, engine)
        assert mr.map_seconds > 0.0
        assert mr.load_seconds >= 0.0

    def test_label_length_mismatch_rejected(self, segments):
        engine = MapReduceEngine(n_partitions=2, executor="serial")
        with pytest.raises(ValueError):
            parallel_freeboard(segments, segments.truth_class[:-1], engine)

    def test_order_preserved(self, segments):
        engine = MapReduceEngine(n_partitions=5, executor="serial")
        parallel, _ = parallel_freeboard(segments, segments.truth_class, engine)
        np.testing.assert_array_equal(parallel.along_track_m, segments.center_along_track_m)
