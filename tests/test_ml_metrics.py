"""Tests for the classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)


class TestConfusionMatrix:
    def test_simple_case(self):
        y_true = np.array([0, 0, 1, 1, 2, 2])
        y_pred = np.array([0, 1, 1, 1, 2, 0])
        cm = confusion_matrix(y_true, y_pred, n_classes=3)
        expected = np.array([[1, 1, 0], [0, 2, 0], [1, 0, 1]])
        np.testing.assert_array_equal(cm, expected)

    def test_total_equals_sample_count(self, rng):
        y_true = rng.integers(0, 3, 100)
        y_pred = rng.integers(0, 3, 100)
        assert confusion_matrix(y_true, y_pred, 3).sum() == 100

    def test_negative_labels_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([-1, 0]), np.array([0, 0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0, 1]), np.array([0]))


class TestScores:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 1, 0])
        assert accuracy_score(y, y) == 1.0
        assert precision_score(y, y) == 1.0
        assert recall_score(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_known_binary_values(self):
        y_true = np.array([0, 0, 0, 0, 1, 1])
        y_pred = np.array([0, 0, 1, 1, 1, 0])
        # Class 0: P=2/3, R=2/4; class 1: P=1/3, R=1/2.
        assert precision_score(y_true, y_pred, average="macro") == pytest.approx((2 / 3 + 1 / 3) / 2)
        assert recall_score(y_true, y_pred, average="macro") == pytest.approx(0.5)

    def test_micro_average_equals_accuracy(self, rng):
        y_true = rng.integers(0, 3, 200)
        y_pred = rng.integers(0, 3, 200)
        assert precision_score(y_true, y_pred, average="micro") == pytest.approx(
            accuracy_score(y_true, y_pred)
        )

    def test_weighted_average_respects_support(self):
        y_true = np.array([0] * 90 + [1] * 10)
        y_pred = np.array([0] * 90 + [0] * 10)  # class 1 always missed
        weighted = recall_score(y_true, y_pred, average="weighted")
        macro = recall_score(y_true, y_pred, average="macro")
        assert weighted == pytest.approx(0.9)
        assert macro == pytest.approx(0.5)

    def test_unknown_average_rejected(self):
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            f1_score(y, y, average="median")

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([]), np.array([]))

    @given(
        n=st.integers(min_value=5, max_value=100),
        k=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_scores_bounded(self, n, k, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, k, n)
        y_pred = rng.integers(0, k, n)
        for score in (accuracy_score, precision_score, recall_score, f1_score):
            value = score(y_true, y_pred)
            assert 0.0 <= value <= 1.0


class TestClassificationReport:
    def test_report_fields(self, rng):
        y_true = rng.integers(0, 3, 300)
        y_pred = y_true.copy()
        flip = rng.random(300) < 0.1
        y_pred[flip] = (y_pred[flip] + 1) % 3
        report = classification_report(y_true, y_pred, n_classes=3)
        assert report.accuracy == pytest.approx(1.0 - flip.mean(), abs=1e-9)
        assert len(report.per_class_accuracy) == 3
        assert report.confusion.shape == (3, 3)

    def test_as_row_formats_percent(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        report = classification_report(y, y, n_classes=3)
        row = report.as_row("LSTM")
        assert row["Model"] == "LSTM"
        assert row["Accuracy"] == 100.0

    def test_normalized_confusion_rows_sum_to_one(self, rng):
        y_true = rng.integers(0, 3, 150)
        y_pred = rng.integers(0, 3, 150)
        report = classification_report(y_true, y_pred, n_classes=3)
        norm = report.normalized_confusion()
        np.testing.assert_allclose(norm.sum(axis=1), 1.0)
