"""Tracer: nesting, deterministic ids, virtual-clock durations, ring buffer."""

from __future__ import annotations

import asyncio

import pytest

from repro.config import ObsConfig
from repro.obs.core import Obs, default_obs, set_default_obs
from repro.obs.trace import NullTracer, Tracer
from repro.serve.clock import VirtualClock


class TestSpanNesting:
    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None
        assert inner.trace_id == outer.trace_id
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_ids_are_deterministic(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        assert (a.span_id, a.trace_id) == ("s0001", "t0001")
        assert (b.span_id, b.trace_id) == ("s0002", "t0001")

    def test_exception_is_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            with tracer.span("boom"):
                raise KeyError("x")
        (span,) = tracer.spans("boom")
        assert span.attributes["error"] == "KeyError"
        assert span.finished

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("op", a=1) as span:
            span.set(b=2).set(c=3)
        assert span.attributes == {"a": 1, "b": 2, "c": 3}

    def test_nesting_follows_asyncio_awaits(self):
        tracer = Tracer()

        async def handler():
            with tracer.span("request"):
                await asyncio.sleep(0)
                with tracer.span("stage"):
                    await asyncio.sleep(0)

        asyncio.run(handler())
        (stage,) = tracer.spans("stage")
        (request,) = tracer.spans("request")
        assert stage.parent_id == request.span_id

    def test_concurrent_tasks_do_not_cross_parent(self):
        tracer = Tracer()

        async def one(name):
            with tracer.span(name):
                await asyncio.sleep(0)
                with tracer.span(f"{name}.child"):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(one("a"), one("b"))

        asyncio.run(main())
        (a,) = tracer.spans("a")
        (a_child,) = tracer.spans("a.child")
        (b,) = tracer.spans("b")
        (b_child,) = tracer.spans("b.child")
        assert a_child.parent_id == a.span_id
        assert b_child.parent_id == b.span_id
        assert a.trace_id != b.trace_id


class TestVirtualClockDurations:
    def test_durations_are_exact(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.tick(0.010)
            with tracer.span("inner"):
                clock.tick(0.004)
        (inner,) = tracer.spans("inner")
        (outer,) = tracer.spans("outer")
        assert inner.duration == 0.004
        assert outer.duration == 0.014
        assert inner.start == 0.010

    def test_record_anchors_before_now(self):
        clock = VirtualClock(start=5.0)
        tracer = Tracer(clock=clock)
        span = tracer.record("task", 0.25, index=3)
        assert span.finished
        assert span.end == 5.0
        assert span.start == 4.75
        assert span.attributes == {"index": 3}

    def test_record_parents_under_current_span(self):
        tracer = Tracer(clock=VirtualClock())
        with tracer.span("driver") as driver:
            child = tracer.record("task", 0.1)
        assert child.parent_id == driver.span_id
        assert child.trace_id == driver.trace_id

    def test_record_rejects_negative(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.record("task", -0.1)

    def test_explicit_start_wins(self):
        clock = VirtualClock(start=2.0)
        tracer = Tracer(clock=clock)
        span = tracer.record("task", 0.5, start=1.0)
        assert span.start == 1.0
        assert span.end == 1.5


class TestRingBuffer:
    def test_oldest_spans_drop_and_are_counted(self):
        tracer = Tracer(buffer_size=3)
        for i in range(5):
            with tracer.span(f"op{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["op2", "op3", "op4"]
        assert tracer.n_dropped == 2

    def test_clear(self):
        tracer = Tracer(buffer_size=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.spans() == ()
        assert tracer.n_dropped == 0

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            Tracer(buffer_size=0)

    def test_trace_and_children_lookup(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("left"):
                pass
            with tracer.span("right"):
                pass
        spans = tracer.trace(root.trace_id)
        assert [s.name for s in spans] == ["left", "right", "root"]
        assert {s.name for s in tracer.children(root)} == {"left", "right"}


class TestObsFacade:
    def test_disabled_obs_uses_null_twins(self):
        obs = Obs.disabled()
        assert not obs.enabled
        assert isinstance(obs.tracer, NullTracer)
        with obs.span("anything") as span:
            span.set(ignored=True)
        assert obs.tracer.spans() == ()
        obs.counter("x").inc()
        assert obs.registry.total("x") == 0.0

    def test_null_span_context_is_reusable_singleton(self):
        obs = Obs.disabled()
        assert obs.span("a") is obs.span("b")

    def test_default_obs_swap_restores(self):
        original = default_obs()
        private = Obs(ObsConfig(trace_buffer_size=8))
        previous = set_default_obs(private)
        try:
            assert default_obs() is private
        finally:
            set_default_obs(previous)
        assert default_obs() is original

    def test_obs_config_validation(self):
        with pytest.raises(ValueError):
            ObsConfig(trace_buffer_size=0)
        with pytest.raises(ValueError):
            ObsConfig(latency_buckets_s=(0.1, 0.1))
