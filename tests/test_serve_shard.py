"""Property tests for the sharded catalog: total, stable, order-preserving.

The contracts under test are exactly what lets the router treat shards as
interchangeable with the unsharded catalog: every bbox maps to one shard,
the mapping survives catalog rebuilds in any registration order, and a
query against the sharded catalog returns the same products — and hence
resolves to the same winner — as the unsharded one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.catalog import CatalogEntry, ProductCatalog
from repro.serve.query import TileRequest, select_entry
from repro.serve.shard import ShardedCatalog, shard_index


def make_entry(i: int, bbox, kind: str = "mosaic") -> CatalogEntry:
    """A synthetic catalog entry (metadata only, no files on disk)."""
    x0, y0, x1, y1 = bbox
    return CatalogEntry(
        base_path=f"/products/p{i}",
        kind=kind,
        fingerprint=f"fp-{i}",
        granule_ids=(f"g{i:03d}",),
        variables=("freeboard_mean", "n_segments"),
        servable=("freeboard_mean",),
        x_min_m=float(x0),
        y_min_m=float(y0),
        x_max_m=float(x1),
        y_max_m=float(y1),
        cell_size_m=100.0,
        shape=(max(int((y1 - y0) // 100), 1), max(int((x1 - x0) // 100), 1)),
    )


coordinates = st.floats(
    min_value=-1e7, max_value=1e7, allow_nan=False, allow_subnormal=False
)
extents = st.floats(min_value=1.0, max_value=1e6, allow_subnormal=False)


@st.composite
def bboxes(draw):
    x0 = draw(coordinates)
    y0 = draw(coordinates)
    return (x0, y0, x0 + draw(extents), y0 + draw(extents))


class TestShardIndex:
    @given(bbox=bboxes(), n_shards=st.integers(min_value=1, max_value=64))
    def test_total_in_range_and_deterministic(self, bbox, n_shards):
        index = shard_index(bbox, n_shards)
        assert 0 <= index < n_shards
        assert shard_index(bbox, n_shards) == index

    @given(bbox=bboxes())
    def test_single_shard_is_identity(self, bbox):
        assert shard_index(bbox, 1) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="n_shards"):
            shard_index((0.0, 0.0, 1.0, 1.0), 0)

    def test_known_vectors_are_frozen(self):
        # The assignment function is a persistence contract: per-shard tile
        # caches stay valid across restarts only while these hold.  Changing
        # the hash (or its packing) must fail loudly here.
        assert shard_index((0.0, 0.0, 4800.0, 3200.0), 4) == 0
        assert shard_index((0.0, 0.0, 4800.0, 3200.0), 7) == 6
        assert shard_index((-1e6, 2.5, 1e6, 9000.0), 4) == 2

    @given(bbox=bboxes(), n_shards=st.integers(min_value=2, max_value=16))
    def test_independent_of_entry_identity(self, bbox, n_shards):
        # Two products with the same footprint land on the same shard, so
        # one shard's cache sees all traffic for that footprint.
        a, b = make_entry(1, bbox), make_entry(2, bbox, kind="granule")
        catalog = ShardedCatalog(n_shards, [a, b])
        assert catalog.shard_of(a.key) == catalog.shard_of(b.key)


@st.composite
def entry_sets(draw):
    boxes = draw(
        st.lists(bboxes(), min_size=1, max_size=10, unique_by=lambda b: b)
    )
    return [make_entry(i, bbox) for i, bbox in enumerate(boxes)]


class TestShardedCatalog:
    @given(entries=entry_sets(), n_shards=st.integers(min_value=1, max_value=8))
    def test_every_entry_on_exactly_one_shard(self, entries, n_shards):
        catalog = ShardedCatalog(n_shards, entries)
        assert sum(catalog.counts()) == len(entries)
        for entry in entries:
            owner = catalog.shard_of(entry.key)
            assert [entry.key in shard for shard in catalog.shards] == [
                index == owner for index in range(n_shards)
            ]

    @given(
        entries=entry_sets(),
        n_shards=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_assignment_stable_across_rebuild_order(self, entries, n_shards, seed):
        shuffled = list(entries)
        np.random.default_rng(seed).shuffle(shuffled)
        first = ShardedCatalog(n_shards, entries)
        rebuilt = ShardedCatalog(n_shards, shuffled)
        assert {e.key: first.shard_of(e.key) for e in entries} == {
            e.key: rebuilt.shard_of(e.key) for e in entries
        }

    @given(entries=entry_sets(), n_shards=st.integers(min_value=1, max_value=8))
    def test_entries_preserve_registration_order(self, entries, n_shards):
        catalog = ShardedCatalog(n_shards, entries)
        assert catalog.entries == tuple(entries)

    @given(
        entries=entry_sets(),
        n_shards=st.integers(min_value=1, max_value=8),
        query_bbox=bboxes(),
    )
    def test_query_matches_unsharded_catalog(self, entries, n_shards, query_bbox):
        flat = ProductCatalog(entries)
        sharded = ShardedCatalog(n_shards, entries)
        expected = flat.query(bbox=query_bbox, variable="freeboard_mean")
        assert sharded.query(bbox=query_bbox, variable="freeboard_mean") == expected

    @given(
        entries=entry_sets(),
        n_shards=st.integers(min_value=1, max_value=8),
        query_bbox=bboxes(),
    )
    def test_resolution_matches_unsharded_catalog(self, entries, n_shards, query_bbox):
        # The winner under select_entry is identical — the property that
        # makes routing to the owning shard semantics-preserving.
        request = TileRequest(bbox=query_bbox, variable="freeboard_mean")
        flat = ProductCatalog(entries)
        sharded = ShardedCatalog(n_shards, entries)
        try:
            expected = select_entry(flat.query(bbox=query_bbox, variable="freeboard_mean"), request)
        except LookupError:
            with pytest.raises(LookupError):
                select_entry(
                    sharded.query(bbox=query_bbox, variable="freeboard_mean"), request
                )
            return
        got = select_entry(sharded.query(bbox=query_bbox, variable="freeboard_mean"), request)
        assert got.key == expected.key
        assert sharded.shard_of(got.key) == shard_index(got.bbox, n_shards)

    def test_rehoming_a_changed_footprint(self):
        # Same key, different bbox (the sidecars disagree): the entry moves
        # to the new footprint's shard instead of existing on two shards.
        from dataclasses import replace

        old = make_entry(0, (0.0, 0.0, 1000.0, 1000.0))
        new = replace(old, x_max_m=2000.0)
        catalog = ShardedCatalog(16, [old])
        catalog.add(new)
        assert len(catalog) == 1
        assert catalog.shard_of(new.key) == shard_index(new.bbox, 16)
        assert sum(catalog.counts()) == 1

    def test_empty_catalog_has_no_extent(self):
        with pytest.raises(ValueError, match="empty"):
            ShardedCatalog(4).extent()

    def test_scan_collects_skipped_files(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        catalog = ShardedCatalog(2)
        registered, skipped = catalog.scan(tmp_path)
        assert registered == [] and len(skipped) == 1


@pytest.fixture(scope="module")
def product_archive(tmp_path_factory):
    """Two real overlapping products on disk plus their flat catalog."""
    root = tmp_path_factory.mktemp("shard-products")
    rng = np.random.default_rng(7)
    catalog = ProductCatalog()
    for name, origin in (("mosaic-a", (0.0, 0.0)), ("mosaic-b", (2000.0, 1000.0))):
        grid = GridDefinition(
            x_min_m=origin[0], y_min_m=origin[1], cell_size_m=100.0, nx=48, ny=32
        )
        n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
        product = Level3Grid(
            grid=grid,
            variables={
                "n_segments": n_seg,
                "freeboard_mean": np.where(
                    n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan
                ),
            },
            metadata={
                "kind": "mosaic",
                "granule_ids": [name],
                "fingerprint": f"fp-{name}",
            },
        )
        _, json_path = write_level3(product, root / name)
        catalog.register(json_path)
    return catalog


class TestEngineFanOutEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        x0=st.floats(min_value=0.0, max_value=5000.0, allow_subnormal=False),
        y0=st.floats(min_value=0.0, max_value=3000.0, allow_subnormal=False),
        zoom=st.integers(min_value=0, max_value=2),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    def test_router_tiles_bit_identical_to_unsharded_engine(
        self, product_archive, x0, y0, zoom, n_shards
    ):
        from repro.config import ServeConfig
        from repro.serve.query import QueryEngine
        from repro.serve.router import RequestRouter

        serve = ServeConfig(tile_size=8, tile_cache_size=64)
        request = TileRequest(
            bbox=(x0, y0, x0 + 1500.0, y0 + 1200.0),
            variable="freeboard_mean",
            zoom=zoom,
        )
        engine = QueryEngine(product_archive, serve=serve)
        router = RequestRouter(
            ShardedCatalog.from_catalog(product_archive, n_shards), serve=serve
        )
        expected = engine.query(request)
        routed = router.serve([request])[0]
        assert routed.response.product == expected.product
        assert routed.response.zoom == expected.zoom
        assert routed.shard == router.catalog.shard_of(expected.product)
        assert set(routed.response.tiles) == set(expected.tiles)
        for address, tile in expected.tiles.items():
            np.testing.assert_array_equal(routed.response.tiles[address], tile)
