"""Shared fixtures: a small Ross Sea scene, a simulated beam and labelled segments.

The fixtures are session-scoped because scene generation and photon
simulation are the slowest steps; all tests treat them as read-only inputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the test suite from a source checkout without installing.
_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.atl03.simulator import ATL03SimulatorConfig, simulate_beam, simulate_granule
from repro.resampling.window import resample_fixed_window
from repro.sentinel2.scene import S2SceneConfig, render_scene
from repro.sentinel2.segmentation import segment_image
from repro.surface.scene import SceneConfig, generate_scene
from repro.surface.track import generate_track


@pytest.fixture(scope="session")
def scene():
    """A 8 km x 8 km synthetic Ross Sea scene with leads and ridges."""
    return generate_scene(SceneConfig(width_m=8_000.0, height_m=8_000.0, seed=3))


@pytest.fixture(scope="session")
def track(scene):
    """A ~6 km track through the session scene."""
    return generate_track(scene, length_m=6_000.0, rng=5)


@pytest.fixture(scope="session")
def beam(scene, track):
    """One simulated strong beam along the session track."""
    return simulate_beam(scene, track, config=ATL03SimulatorConfig(), rng=11)


@pytest.fixture(scope="session")
def granule(scene):
    """A simulated single-beam granule (kept small for speed)."""
    return simulate_granule(scene, n_beams=1, track_length_m=6_000.0, rng=13)


@pytest.fixture(scope="session")
def segments(beam):
    """2 m resampled segments of the session beam."""
    return resample_fixed_window(beam)


@pytest.fixture(scope="session")
def s2_image(scene):
    """A simulated Sentinel-2 acquisition of the session scene (no drift)."""
    return render_scene(scene, config=S2SceneConfig(seed=21), drift_offset_m=(0.0, 0.0), rng=21)


@pytest.fixture(scope="session")
def s2_segmentation(s2_image):
    """Color-based segmentation of the session S2 image."""
    return segment_image(s2_image)


@pytest.fixture(scope="session")
def labeled_segments(segments):
    """(segments, labels) where labels are the simulator ground truth.

    Using the truth labels keeps the classifier tests independent of the
    auto-labeling quality.
    """
    return segments, segments.truth_class.copy()


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
