"""Campaign-level Level-3 tests: ``to_l3``, stage-granular invalidation,
product provenance and the on-disk round trip.

The acceptance criterion under test: a warm-cache campaign re-run after a
grid-resolution-only config change re-executes **only** the
``grid_granule``/``mosaic_campaign`` stages, and a written L3 product
reloads bit-identically.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import L3GridConfig
from repro.l3 import read_level3, write_level3
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
    l3=L3GridConfig(cell_size_m=1_000.0),
)

GRID = {"cloud_fraction": (0.1, 0.35)}


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("l3-cache"))


@pytest.fixture(scope="module")
def config(cache_dir):
    return CampaignConfig(base=BASE, grid=GRID, seed=33, cache_dir=cache_dir)


@pytest.fixture(scope="module")
def first_run(config):
    runner = CampaignRunner(config)
    result = runner.run()
    return runner.to_l3(result)


class TestToL3:
    def test_products_cover_the_fleet(self, config, first_run):
        specs = config.expand()
        assert list(first_run.granules) == [spec.granule_id for spec in specs]
        assert first_run.mosaic.kind == "mosaic"
        assert first_run.mosaic.metadata["granule_ids"] == [
            spec.granule_id for spec in specs
        ]
        assert first_run.mosaic.variable("n_granules").max() >= 1
        assert 0.0 < first_run.mosaic.coverage_fraction() <= 1.0

    def test_first_run_misses_only_l3_stages(self, first_run):
        kinds = {key.rsplit("-", 1)[0] for key in first_run.stage_misses}
        assert kinds == {"grid_granule", "mosaic_campaign"}

    def test_products_carry_provenance(self, first_run):
        assert first_run.fingerprint
        for product in first_run.granules.values():
            assert product.metadata["fingerprint"]
            assert product.metadata["kernel_backend"] in ("reference", "vectorized")
        assert first_run.mosaic.metadata["fingerprint"] == first_run.fingerprint

    def test_warm_rerun_is_pure_cache(self, config, first_run):
        runner = CampaignRunner(config)
        again = runner.to_l3(runner.run())
        assert again.stage_misses == ()
        kinds = {key.rsplit("-", 1)[0] for key in again.stage_hits}
        assert {"grid_granule", "mosaic_campaign"} <= kinds
        for gid, product in first_run.granules.items():
            for name, arr in product.variables.items():
                np.testing.assert_array_equal(arr, again.granules[gid].variables[name])
        np.testing.assert_array_equal(
            first_run.mosaic.variable("freeboard_mean"),
            again.mosaic.variable("freeboard_mean"),
        )

    def test_to_l3_without_cache_matches_cached_run(self, first_run):
        uncached = CampaignRunner(
            CampaignConfig(base=BASE, grid=GRID, seed=33, cache_dir=None)
        )
        result = uncached.to_l3()
        assert result.stage_hits == () and result.stage_misses == ()
        assert result.fingerprint == ""
        np.testing.assert_array_equal(
            result.mosaic.variable("freeboard_mean"),
            first_run.mosaic.variable("freeboard_mean"),
        )


class TestGridResolutionInvalidation:
    """The acceptance criterion: an l3-only change re-runs only the L3 stages."""

    def test_only_grid_and_mosaic_stages_rerun(self, config, first_run):
        changed = CampaignConfig(
            base=replace(BASE, l3=L3GridConfig(cell_size_m=500.0)),
            grid=GRID,
            seed=33,
            cache_dir=config.cache_dir,
        )
        runner = CampaignRunner(changed)
        result = runner.run()
        # The campaign itself is untouched: every stage of every granule is
        # served from the shared stage tier.
        assert result.stage_misses == ()

        l3 = runner.to_l3(result)
        missed = {key.rsplit("-", 1)[0] for key in l3.stage_misses}
        assert missed == {"grid_granule", "mosaic_campaign"}, l3.stage_misses
        # The finer grid really is finer, and the products differ.
        assert l3.mosaic.grid.shape == (12, 12)
        assert first_run.mosaic.grid.shape == (6, 6)
        # The coarse products are still cached: re-running the original
        # config grids nothing.
        original = CampaignRunner(config)
        warm = original.to_l3(original.run())
        assert warm.stage_misses == ()

    def test_l3_axis_rejected_as_scenario(self):
        with pytest.raises(ValueError, match="campaign-wide"):
            CampaignConfig(base=BASE, grid={"l3.cell_size_m": (500.0, 1000.0)})


class TestProductRoundTrip:
    def test_written_mosaic_reloads_bit_identically(self, first_run, tmp_path):
        write_level3(first_run.mosaic, tmp_path / "mosaic")
        reloaded = read_level3(tmp_path / "mosaic")
        assert reloaded.grid == first_run.mosaic.grid
        for name, arr in first_run.mosaic.variables.items():
            loaded = reloaded.variables[name]
            assert loaded.dtype == arr.dtype, name
            assert loaded.tobytes() == arr.tobytes(), name
        assert reloaded.metadata["fingerprint"] == first_run.fingerprint

    def test_written_granule_grid_reloads_bit_identically(self, first_run, tmp_path):
        gid, product = next(iter(first_run.granules.items()))
        write_level3(product, tmp_path / gid)
        reloaded = read_level3(tmp_path / gid)
        for name, arr in product.variables.items():
            assert reloaded.variables[name].tobytes() == arr.tobytes(), name
        assert reloaded.metadata["granule_id"] == gid


class TestServe:
    def test_serve_returns_an_engine_over_exactly_the_written_fleet(
        self, config, first_run, tmp_path
    ):
        import json

        from repro.serve import TileRequest

        products = tmp_path / "products"
        products.mkdir()
        # Pre-existing junk in the directory must never be catalogued: only
        # the products this serve() call writes belong to the campaign.
        (products / "foreign.json").write_text(json.dumps({"hello": 1}))
        (products / "stale.json").write_text(json.dumps({"format": "other/9"}))

        runner = CampaignRunner(config)
        engine = runner.serve(str(products), l3=first_run)
        assert len(engine.catalog) == first_run.n_granules + 1
        assert {entry.kind for entry in engine.catalog} == {"granule", "mosaic"}
        served_ids = {gid for e in engine.catalog for gid in e.granule_ids}
        assert served_ids == set(first_run.granules)

        # End to end: a region query resolves to the mosaic, and its repeat
        # is pure tile cache (no second decode of any product file).
        x0, y0, _, _ = engine.catalog.extent()
        request = TileRequest(bbox=(x0, y0, x0 + 2_000.0, y0 + 2_000.0), zoom=0)
        first = engine.query(request)
        assert engine.catalog.get(first.product).kind == "mosaic"
        loads = engine.loader.n_loads
        repeat = engine.query(request)
        assert repeat.from_cache
        assert engine.loader.n_loads == loads
