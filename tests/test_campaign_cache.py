"""Unit tests for the on-disk campaign artifact cache."""

import numpy as np
import pytest

from repro.campaign.cache import CampaignCache


@pytest.fixture
def cache(tmp_path):
    return CampaignCache(tmp_path, "abc123")


class TestCampaignCache:
    def test_roundtrip(self, cache):
        value = {"x": np.arange(5), "name": "g000"}
        cache.store("g000.curated", value)
        loaded = cache.load("g000.curated")
        assert loaded["name"] == "g000"
        np.testing.assert_array_equal(loaded["x"], np.arange(5))

    def test_miss_returns_default(self, cache):
        assert cache.load("nothing") is None
        assert cache.load("nothing", default=42) == 42
        assert not cache.has("nothing")

    def test_corrupt_entry_is_a_miss(self, cache):
        cache.store("bad", [1, 2, 3])
        cache.path("bad").write_bytes(b"not a pickle")
        assert cache.load("bad", default="miss") == "miss"

    def test_fingerprint_namespacing(self, tmp_path):
        a = CampaignCache(tmp_path, "aaaa")
        b = CampaignCache(tmp_path, "bbbb")
        a.store("k", 1)
        assert b.load("k") is None
        assert a.load("k") == 1

    def test_keys_sorted_and_no_temp_leftovers(self, cache):
        cache.store("b", 2)
        cache.store("a", 1)
        assert cache.keys() == ["a", "b"]
        leftovers = [p for p in cache.dir.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_clear(self, cache):
        cache.store("a", 1)
        cache.store("b", 2)
        assert cache.clear() == 2
        assert cache.keys() == []
        assert cache.load("a") is None

    def test_invalid_keys_rejected(self, cache):
        for key in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid cache key"):
                cache.path(key)

    def test_empty_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fingerprint"):
            CampaignCache(tmp_path, "")

    def test_overwrite_replaces_value(self, cache):
        cache.store("k", "old")
        cache.store("k", "new")
        assert cache.load("k") == "new"


class TestMissSentinel:
    """Regression: a legitimately cached ``None`` must not read as a miss."""

    def test_cached_none_is_a_hit_with_sentinel(self, cache):
        from repro.campaign.cache import _MISS

        assert cache.load("absent", _MISS) is _MISS
        cache.store("absent", None)
        assert cache.load("absent", _MISS) is None

    def test_sentinel_is_shared_with_pipeline_tier(self):
        from repro.campaign.cache import _MISS
        from repro.pipeline.cache import MISS

        assert _MISS is MISS
