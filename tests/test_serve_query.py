"""The query engine: LRU tile cache, per-product decode batching, fan-out.

The acceptance-critical property lives here: a repeated region query is
served from the LRU tile cache **without re-reading the npz**, asserted via
the instrumented loader (`n_loads` / `loaded`).
"""

import numpy as np
import pytest

from repro.config import ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.catalog import ProductCatalog
from repro.serve.query import ProductLoader, QueryEngine, TileRequest, _LRUCache

SERVE = ServeConfig(tile_size=8, tile_cache_size=64)


def write_product(path, kind="mosaic", fingerprint="fp-m", x_min=0.0, nx=40, ny=24,
                  cell=100.0, seed=0, variables=("freeboard_mean", "thickness_mean"),
                  format="npz"):
    rng = np.random.default_rng(seed)
    grid = GridDefinition(x_min_m=x_min, y_min_m=0.0, cell_size_m=cell, nx=nx, ny=ny)
    n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
    layers = {"n_segments": n_seg}
    for name in variables:
        layers[name] = np.where(n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan)
    metadata = {"kind": kind, "fingerprint": fingerprint}
    if kind == "mosaic":
        metadata["granule_ids"] = ["g000"]
    else:
        metadata["granule_id"] = "g000"
    write_level3(
        Level3Grid(grid=grid, variables=layers, metadata=metadata), path, format=format
    )


@pytest.fixture()
def engine(tmp_path):
    write_product(tmp_path / "mosaic")
    catalog = ProductCatalog()
    catalog.scan(tmp_path)
    return QueryEngine(catalog, loader=ProductLoader(SERVE), serve=SERVE)


class TestTileRequestValidation:
    def test_degenerate_bbox(self):
        with pytest.raises(ValueError, match="positive width"):
            TileRequest(bbox=(0, 0, 0, 10))

    def test_negative_zoom(self):
        with pytest.raises(ValueError, match="zoom"):
            TileRequest(bbox=(0, 0, 1, 1), zoom=-1)


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = _LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            _LRUCache(0)


class TestServing:
    def test_repeated_query_served_from_cache_without_reread(self, engine):
        request = TileRequest(bbox=(0.0, 0.0, 1500.0, 1500.0), zoom=0)
        first = engine.query(request)
        assert first.n_computed == first.n_tiles and first.n_cached == 0
        assert engine.loader.n_loads == 1
        assert engine.loader.loaded == ["fp-m"]

        repeat = engine.query(request)
        assert repeat.from_cache
        assert repeat.n_cached == repeat.n_tiles
        assert engine.loader.n_loads == 1, "repeat must not re-read the npz"
        for key in first.tiles:
            np.testing.assert_array_equal(first.tiles[key], repeat.tiles[key])

    def test_batch_decodes_each_product_once(self, tmp_path):
        write_product(tmp_path / "a", fingerprint="fp-a", x_min=0.0, seed=1)
        write_product(tmp_path / "b", fingerprint="fp-b", x_min=50_000.0, seed=2)
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        engine = QueryEngine(catalog, loader=ProductLoader(SERVE), serve=SERVE)
        requests = [
            TileRequest(bbox=(0.0, 0.0, 900.0, 900.0)),
            TileRequest(bbox=(1000.0, 1000.0, 1900.0, 1900.0)),
            TileRequest(bbox=(0.0, 0.0, 1900.0, 1900.0)),
            TileRequest(bbox=(50_000.0, 0.0, 50_900.0, 900.0)),
        ]
        responses = engine.query_batch(requests)
        # Three requests hit fp-a, one hits fp-b: exactly two decodes total.
        assert engine.loader.n_loads == 2
        assert sorted(engine.loader.loaded) == ["fp-a", "fp-b"]
        assert [r.product for r in responses] == ["fp-a", "fp-a", "fp-a", "fp-b"]

    def test_mosaic_preferred_over_granule(self, tmp_path):
        write_product(tmp_path / "granule", kind="granule", fingerprint="fp-g", seed=1)
        write_product(tmp_path / "mosaic", kind="mosaic", fingerprint="fp-m", seed=2)
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        engine = QueryEngine(catalog, serve=SERVE)
        assert engine.resolve(TileRequest(bbox=(0, 0, 1000, 1000))).kind == "mosaic"

    def test_unresolvable_request_raises(self, engine):
        with pytest.raises(LookupError, match="no catalogued product"):
            engine.query(TileRequest(bbox=(9e6, 9e6, 9.1e6, 9.1e6)))
        with pytest.raises(LookupError, match="nope"):
            engine.query(TileRequest(bbox=(0, 0, 100, 100), variable="nope"))

    def test_non_servable_variable_rejected_before_decode(self, engine):
        # n_segments is in every sidecar but is a reduction weight, not a
        # pyramid value layer: the engine must refuse cleanly at resolution
        # instead of decoding and crashing with a KeyError.
        with pytest.raises(LookupError, match="not a servable pyramid layer"):
            engine.query(TileRequest(bbox=(0, 0, 1000, 1000), variable="n_segments"))
        assert engine.loader.n_loads == 0

    def test_loader_pickles_without_its_lock(self, engine):
        import pickle

        engine.query(TileRequest(bbox=(0.0, 0.0, 700.0, 700.0)))
        clone = pickle.loads(pickle.dumps(engine.loader))
        assert clone.n_loads == engine.loader.n_loads
        assert clone.serve == engine.loader.serve
        # The worker-side copy still counts loads (fresh lock reconstructed).
        clone.load(engine.catalog.entries[0])
        assert clone.n_loads == engine.loader.n_loads + 1

    def test_loader_with_mismatched_geometry_rejected(self, engine):
        with pytest.raises(ValueError, match="ServeConfig mismatch"):
            QueryEngine(
                engine.catalog,
                loader=ProductLoader(ServeConfig(tile_size=64)),
                serve=SERVE,
            )

    def test_zoom_clamped_to_pyramid_depth(self, engine):
        response = engine.query(TileRequest(bbox=(0.0, 0.0, 900.0, 900.0), zoom=99))
        # 40x24 at tile_size 8 -> levels 0..3 (5x3 fits one 8-tile at zoom 3).
        assert response.zoom == engine._plan(
            TileRequest(bbox=(0.0, 0.0, 900.0, 900.0), zoom=99)
        ).zoom
        assert response.zoom < 99

    def test_tiles_match_direct_pyramid_extraction(self, engine, tmp_path):
        from repro.l3.writer import read_level3
        from repro.serve.pyramid import build_pyramid

        request = TileRequest(bbox=(800.0, 800.0, 2300.0, 1500.0), zoom=1)
        response = engine.query(request)
        entry = engine.catalog.get(response.product)
        pyramid = build_pyramid(read_level3(entry.base_path), serve=SERVE)
        for (row, col), tile in response.tiles.items():
            np.testing.assert_array_equal(
                tile, pyramid.tile(request.variable, response.zoom, row, col)
            )

    def test_mosaic_array_stitches_window(self, engine):
        response = engine.query(TileRequest(bbox=(0.0, 0.0, 3000.0, 1500.0), zoom=0))
        stitched = response.mosaic_array()
        rows = {row for row, _ in response.tiles}
        cols = {col for _, col in response.tiles}
        assert stitched.shape == (len(rows) * 8, len(cols) * 8)

    def test_stats_accumulate(self, engine):
        request = TileRequest(bbox=(0.0, 0.0, 1500.0, 1500.0))
        engine.query(request)
        engine.query(request)
        assert engine.stats.requests == 2
        assert engine.stats.batches == 2
        assert engine.stats.loads == 1
        assert engine.stats.tile_hits > 0 and engine.stats.tile_misses > 0
        assert 0.0 < engine.stats.hit_rate < 1.0

    def test_eviction_causes_reload(self, tmp_path):
        write_product(tmp_path / "mosaic")
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        tiny = ServeConfig(tile_size=8, tile_cache_size=1)
        engine = QueryEngine(catalog, loader=ProductLoader(tiny), serve=tiny)
        a = TileRequest(bbox=(0.0, 0.0, 700.0, 700.0), zoom=0)
        b = TileRequest(bbox=(900.0, 900.0, 1500.0, 1500.0), zoom=0)
        engine.query(a)
        engine.query(b)  # evicts a's tile
        engine.query(a)  # must decode again
        assert engine.loader.n_loads == 3

    def test_thread_executor_fans_out(self, tmp_path):
        write_product(tmp_path / "a", fingerprint="fp-a", x_min=0.0, seed=1)
        write_product(tmp_path / "b", fingerprint="fp-b", x_min=50_000.0, seed=2)
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        serial = QueryEngine(catalog, loader=ProductLoader(SERVE), serve=SERVE)
        threaded = QueryEngine(
            catalog, loader=ProductLoader(SERVE), serve=SERVE,
            n_workers=2, executor="thread",
        )
        requests = [
            TileRequest(bbox=(0.0, 0.0, 1900.0, 1900.0)),
            TileRequest(bbox=(50_000.0, 0.0, 51_900.0, 1900.0)),
        ]
        expected = serial.query_batch(requests)
        actual = threaded.query_batch(requests)
        assert threaded.stats.loads == 2
        for want, got in zip(expected, actual):
            assert want.product == got.product
            for key in want.tiles:
                np.testing.assert_array_equal(want.tiles[key], got.tiles[key])

    def test_invalid_engine_parameters(self, engine):
        with pytest.raises(ValueError, match="executor"):
            QueryEngine(engine.catalog, executor="bogus")
        with pytest.raises(ValueError, match="n_workers"):
            QueryEngine(engine.catalog, n_workers=0)


class _DecodeCountingLoader(ProductLoader):
    """Counts full pyramid decodes separately from window-read loads."""

    def __init__(self, serve):
        super().__init__(serve)
        self.n_decodes = 0

    def decode(self, entry):
        self.n_decodes += 1
        return super().decode(entry)


class TestRawProducts:
    def _engine(self, directory, format):
        write_product(directory / "mosaic", format=format)
        catalog = ProductCatalog()
        catalog.scan(directory)
        return QueryEngine(catalog, loader=_DecodeCountingLoader(SERVE), serve=SERVE)

    def test_raw_responses_match_npz_byte_for_byte(self, tmp_path):
        npz_engine = self._engine(tmp_path / "npz", "npz")
        raw_engine = self._engine(tmp_path / "raw", "raw")
        for zoom in (0, 1):
            request = TileRequest(bbox=(0.0, 0.0, 3000.0, 2000.0), zoom=zoom)
            want = npz_engine.query(request)
            got = raw_engine.query(request)
            assert set(got.tiles) == set(want.tiles)
            for key in want.tiles:
                assert got.tiles[key].tobytes() == want.tiles[key].tobytes()
            assert got.fingerprints == want.fingerprints

    def test_zoom0_raw_query_skips_pyramid_build(self, tmp_path):
        engine = self._engine(tmp_path, "raw")
        response = engine.query(TileRequest(bbox=(0.0, 0.0, 1500.0, 1500.0), zoom=0))
        assert response.n_computed == response.n_tiles
        assert engine.loader.n_loads == 1  # the windowed read counts as a load
        assert engine.loader.n_decodes == 0  # ...but built no pyramid

    def test_overview_zoom_still_decodes_pyramid(self, tmp_path):
        engine = self._engine(tmp_path, "raw")
        engine.query(TileRequest(bbox=(0.0, 0.0, 3000.0, 2000.0), zoom=1))
        assert engine.loader.n_decodes == 1

    def test_served_tiles_are_immutable(self, tmp_path):
        for format in ("npz", "raw"):
            engine = self._engine(tmp_path / format, format)
            request = TileRequest(bbox=(0.0, 0.0, 1500.0, 1500.0), zoom=0)
            first = engine.query(request)
            for tile in first.tiles.values():
                assert not tile.flags.writeable
                with pytest.raises(ValueError):
                    tile[0, 0] = 1e9
            # The failed writes above corrupted nothing: a cached repeat
            # serves the same bytes.
            repeat = engine.query(request)
            assert repeat.from_cache
            for key in first.tiles:
                assert repeat.tiles[key].tobytes() == first.tiles[key].tobytes()
