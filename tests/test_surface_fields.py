"""Tests for the random-field helpers behind the scene generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.surface.fields import add_linear_leads, gaussian_random_field, smooth_threshold_classes


class TestGaussianRandomField:
    def test_shape_and_normalisation(self):
        field = gaussian_random_field((64, 80), 8.0, rng=0)
        assert field.shape == (64, 80)
        assert abs(field.mean()) < 1e-8
        assert field.std() == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_in_seed(self):
        a = gaussian_random_field((32, 32), 4.0, rng=7)
        b = gaussian_random_field((32, 32), 4.0, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_larger_correlation_is_smoother(self):
        rough = gaussian_random_field((128, 128), 2.0, rng=1)
        smooth = gaussian_random_field((128, 128), 20.0, rng=1)
        # Mean squared nearest-neighbour difference is smaller for the
        # longer correlation length.
        assert np.mean(np.diff(smooth, axis=0) ** 2) < np.mean(np.diff(rough, axis=0) ** 2)

    @pytest.mark.parametrize("shape", [(0, 10), (10, 0)])
    def test_empty_shape_rejected(self, shape):
        with pytest.raises(ValueError):
            gaussian_random_field(shape, 4.0)

    def test_nonpositive_correlation_rejected(self):
        with pytest.raises(ValueError):
            gaussian_random_field((8, 8), 0.0)

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError):
            gaussian_random_field((8, 8, 8), 2.0)  # type: ignore[arg-type]


class TestSmoothThresholdClasses:
    def test_fractions_respected(self):
        field = gaussian_random_field((200, 200), 5.0, rng=3)
        classes = smooth_threshold_classes(field, (0.1, 0.2, 0.7))
        fractions = np.bincount(classes.ravel(), minlength=3) / classes.size
        assert fractions[0] == pytest.approx(0.1, abs=0.02)
        assert fractions[1] == pytest.approx(0.2, abs=0.02)
        assert fractions[2] == pytest.approx(0.7, abs=0.02)

    def test_class_order_follows_field_values(self):
        field = np.linspace(0, 1, 100).reshape(10, 10)
        classes = smooth_threshold_classes(field, (0.5, 0.5))
        assert classes.ravel()[0] == 0
        assert classes.ravel()[-1] == 1

    def test_unnormalised_fractions_are_normalised(self):
        field = gaussian_random_field((50, 50), 3.0, rng=4)
        a = smooth_threshold_classes(field, (1.0, 1.0))
        b = smooth_threshold_classes(field, (0.5, 0.5))
        np.testing.assert_array_equal(a, b)

    def test_invalid_fractions_rejected(self):
        field = np.zeros((4, 4))
        with pytest.raises(ValueError):
            smooth_threshold_classes(field, ())
        with pytest.raises(ValueError):
            smooth_threshold_classes(field, (-0.1, 1.1))
        with pytest.raises(ValueError):
            smooth_threshold_classes(field, (0.0, 0.0))

    @given(
        n_classes=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_all_classes_within_range(self, n_classes, seed):
        field = gaussian_random_field((40, 40), 4.0, rng=seed)
        fractions = tuple(1.0 / n_classes for _ in range(n_classes))
        classes = smooth_threshold_classes(field, fractions)
        assert classes.min() >= 0
        assert classes.max() <= n_classes - 1


class TestAddLinearLeads:
    def test_leads_add_target_class(self):
        base = np.zeros((100, 100), dtype=np.int8)
        out = add_linear_leads(base, n_leads=5, lead_class=2, width_px=3, rng=0)
        assert (out == 2).any()
        # The input is not modified.
        assert not (base == 2).any()

    def test_zero_leads_is_identity(self):
        base = np.ones((20, 20), dtype=np.int8)
        out = add_linear_leads(base, 0, 2, 3, rng=0)
        np.testing.assert_array_equal(out, base)

    def test_lead_pixels_are_narrow(self):
        base = np.zeros((200, 200), dtype=np.int8)
        out = add_linear_leads(base, n_leads=1, lead_class=1, width_px=2, rng=5)
        # A single 2-pixel-wide lead across a 200x200 grid covers a small fraction.
        assert 0 < (out == 1).mean() < 0.05

    def test_invalid_arguments_rejected(self):
        base = np.zeros((10, 10), dtype=np.int8)
        with pytest.raises(ValueError):
            add_linear_leads(base, -1, 1, 1)
        with pytest.raises(ValueError):
            add_linear_leads(base, 1, 1, 0)
