"""Tests for dataset utilities: one-hot, splitting, batching, sharding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.dataset import Dataset, one_hot, train_test_split


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestTrainTestSplit:
    def test_sizes_and_disjointness(self, rng):
        X = rng.normal(size=(100, 4))
        y = rng.integers(0, 3, 100)
        X_tr, y_tr, X_te, y_te = train_test_split(X, y, test_fraction=0.2, rng=0)
        assert len(X_tr) + len(X_te) == 100
        assert len(X_te) == pytest.approx(20, abs=3)
        assert X_tr.shape[1] == 4

    def test_stratification_preserves_rare_class(self, rng):
        y = np.array([0] * 95 + [2] * 5)
        X = rng.normal(size=(100, 2))
        _, y_tr, _, y_te = train_test_split(X, y, test_fraction=0.2, stratify=True, rng=1)
        assert (y_te == 2).sum() >= 1
        assert (y_tr == 2).sum() >= 1

    def test_non_stratified_split(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.integers(0, 2, 50)
        X_tr, y_tr, X_te, y_te = train_test_split(X, y, test_fraction=0.3, stratify=False, rng=2)
        assert len(X_te) == 15

    def test_invalid_arguments(self, rng):
        X = rng.normal(size=(10, 2))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, np.zeros(9, dtype=int), test_fraction=0.2)


class TestDataset:
    def test_length_and_features(self, rng):
        ds = Dataset(rng.normal(size=(20, 6)), rng.integers(0, 3, 20))
        assert len(ds) == 20
        assert ds.n_features == 6

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError):
            Dataset(rng.normal(size=(5, 2)), np.zeros(4))

    def test_batches_cover_everything_in_order(self, rng):
        X = np.arange(25, dtype=float).reshape(25, 1)
        ds = Dataset(X, np.zeros(25, dtype=int))
        batches = list(ds.batches(batch_size=10))
        assert [len(b[0]) for b in batches] == [10, 10, 5]
        np.testing.assert_array_equal(np.concatenate([b[0] for b in batches]), X)

    def test_invalid_batch_size(self, rng):
        ds = Dataset(rng.normal(size=(5, 2)), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            list(ds.batches(0))

    def test_shuffled_is_permutation(self, rng):
        X = np.arange(30, dtype=float).reshape(30, 1)
        ds = Dataset(X, np.arange(30))
        shuffled = ds.shuffled(rng=3)
        assert not np.array_equal(shuffled.X, X)
        np.testing.assert_array_equal(np.sort(shuffled.X, axis=0), X)
        # Labels stay paired with their features.
        np.testing.assert_array_equal(shuffled.X[:, 0].astype(int), shuffled.y)

    def test_shards_are_disjoint_and_complete(self, rng):
        ds = Dataset(rng.normal(size=(103, 2)), np.arange(103))
        shards = [ds.shard(r, 4) for r in range(4)]
        all_labels = np.sort(np.concatenate([s.y for s in shards]))
        np.testing.assert_array_equal(all_labels, np.arange(103))
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_shard_argument_validation(self, rng):
        ds = Dataset(rng.normal(size=(10, 2)), np.zeros(10, dtype=int))
        with pytest.raises(ValueError):
            ds.shard(4, 4)
        with pytest.raises(ValueError):
            ds.shard(0, 0)

    def test_class_counts(self):
        ds = Dataset(np.zeros((6, 1)), np.array([0, 0, 1, 2, 2, 2]))
        np.testing.assert_array_equal(ds.class_counts(3), [2, 1, 3])

    @given(
        n=st.integers(min_value=1, max_value=200),
        world=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sharding_partitions_dataset(self, n, world):
        ds = Dataset(np.zeros((n, 1)), np.arange(n))
        shards = [ds.shard(r, world) for r in range(world)]
        assert sum(len(s) for s in shards) == n
