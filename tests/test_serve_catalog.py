"""The product catalog: sidecar-only indexing, queries, strict registration."""

import json

import numpy as np
import pytest

from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import Level3ProductError, write_level3
from repro.serve.catalog import CatalogEntry, ProductCatalog


def write_product(path, kind="granule", granule_ids=("g000",), fingerprint="fp0",
                  x_min=0.0, y_min=0.0, nx=20, ny=10, cell=100.0, seed=0,
                  format="npz"):
    rng = np.random.default_rng(seed)
    grid = GridDefinition(x_min_m=x_min, y_min_m=y_min, cell_size_m=cell, nx=nx, ny=ny)
    n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
    metadata = {"kind": kind, "fingerprint": fingerprint, "kernel_backend": "vectorized"}
    if kind == "mosaic":
        metadata["granule_ids"] = list(granule_ids)
    else:
        metadata["granule_id"] = granule_ids[0]
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan),
        },
        metadata=metadata,
    )
    return write_level3(product, path, format=format)


class TestRegistration:
    def test_register_reads_sidecar_only(self, tmp_path):
        npz_path, json_path = write_product(tmp_path / "p0")
        npz_path.unlink()  # arrays gone: indexing must still work
        entry = ProductCatalog().register(json_path)
        assert entry.kind == "granule"
        assert entry.fingerprint == "fp0"
        assert entry.granule_ids == ("g000",)
        assert "freeboard_mean" in entry.variables
        assert entry.bbox == (0.0, 0.0, 2000.0, 1000.0)
        assert entry.shape == (10, 20)
        assert entry.kernel_backend == "vectorized"

    def test_register_accepts_base_or_either_sibling(self, tmp_path):
        write_product(tmp_path / "p0")
        catalog = ProductCatalog()
        for path in (tmp_path / "p0", tmp_path / "p0.json", tmp_path / "p0.npz"):
            assert catalog.register(path).key == "fp0"
        assert len(catalog) == 1  # same fingerprint: one entry

    def test_register_rejects_foreign_json(self, tmp_path):
        (tmp_path / "foreign.json").write_text(json.dumps({"hello": 1}))
        with pytest.raises(Level3ProductError, match="format"):
            ProductCatalog().register(tmp_path / "foreign.json")

    def test_register_rejects_malformed_grid(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0")
        payload = json.loads(json_path.read_text())
        del payload["grid"]["cell_size_m"]
        json_path.write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="malformed"):
            ProductCatalog().register(json_path)

    def test_scan_collects_skipped_instead_of_raising(self, tmp_path):
        write_product(tmp_path / "good", fingerprint="fp-good")
        (tmp_path / "corrupt.json").write_text("{ not json")
        (tmp_path / "foreign.json").write_text(json.dumps({"format": "other/9"}))
        catalog = ProductCatalog()
        registered, skipped = catalog.scan(tmp_path)
        assert [entry.fingerprint for entry in registered] == ["fp-good"]
        assert sorted(path.name for path in skipped) == ["corrupt.json", "foreign.json"]
        assert len(catalog) == 1

    def test_missing_fingerprint_keys_by_path(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0", fingerprint="")
        entry = ProductCatalog().register(json_path)
        assert entry.key.startswith("path:")


class TestAppend:
    """append = register + npz validation, no directory re-scan (ingest path)."""

    def test_append_validates_and_indexes_one_product(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0")
        write_product(tmp_path / "unrelated", fingerprint="fp9")
        catalog = ProductCatalog()
        entry = catalog.append(json_path)
        assert entry.key == "fp0"
        # Only the appended product is indexed -- no sibling was scanned.
        assert [e.key for e in catalog.entries] == ["fp0"]

    def test_append_rejects_missing_npz(self, tmp_path):
        npz_path, json_path = write_product(tmp_path / "p0")
        npz_path.unlink()
        with pytest.raises(Level3ProductError, match="missing array file"):
            ProductCatalog().append(json_path)

    def test_append_rejects_corrupt_npz(self, tmp_path):
        npz_path, json_path = write_product(tmp_path / "p0")
        npz_path.write_bytes(b"not a zip archive")
        with pytest.raises(Level3ProductError, match="unreadable"):
            ProductCatalog().append(json_path)

    def test_append_rejects_sidecar_declaring_absent_variables(self, tmp_path):
        npz_path, json_path = write_product(tmp_path / "p0")
        payload = json.loads(json_path.read_text())
        payload["variables"]["thickness_mean"] = dict(
            payload["variables"]["freeboard_mean"]
        )
        json_path.write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="thickness_mean"):
            ProductCatalog().append(json_path)

    def test_append_accepts_raw_product(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0", format="raw")
        catalog = ProductCatalog()
        entry = catalog.append(json_path)
        assert entry.storage == "raw"
        assert entry.array_path == tmp_path / "p0.raw"

    def test_append_rejects_missing_raw_blob(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0", format="raw")
        (tmp_path / "p0.raw").unlink()
        with pytest.raises(Level3ProductError, match="missing array file"):
            ProductCatalog().append(json_path)

    def test_append_rejects_truncated_raw_blob(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0", format="raw")
        raw_path = tmp_path / "p0.raw"
        blob = raw_path.read_bytes()
        raw_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Level3ProductError, match="truncated"):
            ProductCatalog().append(json_path)

    def test_append_rejects_raw_storage_missing_a_variable(self, tmp_path):
        _, json_path = write_product(tmp_path / "p0", format="raw")
        payload = json.loads(json_path.read_text())
        del payload["storage"]["arrays"]["freeboard_mean"]
        json_path.write_text(json.dumps(payload))
        with pytest.raises(Level3ProductError, match="freeboard_mean"):
            ProductCatalog().append(json_path)

    def test_register_accepts_raw_sibling_path(self, tmp_path):
        write_product(tmp_path / "p0", format="raw")
        catalog = ProductCatalog()
        for path in (tmp_path / "p0", tmp_path / "p0.json", tmp_path / "p0.raw"):
            assert catalog.register(path).key == "fp0"
        assert len(catalog) == 1

    def test_sharded_append_routes_to_the_bbox_shard(self, tmp_path):
        from repro.serve.shard import ShardedCatalog, shard_index

        _, json_path = write_product(tmp_path / "p0")
        sharded = ShardedCatalog(n_shards=4)
        entry = sharded.append(json_path)
        assert sharded.shard_of(entry.key) == shard_index(entry.bbox, 4)

    def test_sharded_remove_deindexes(self, tmp_path):
        from repro.serve.shard import ShardedCatalog

        _, json_path = write_product(tmp_path / "p0")
        sharded = ShardedCatalog(n_shards=4)
        entry = sharded.append(json_path)
        removed = sharded.remove(entry.key)
        assert removed.key == entry.key
        assert len(sharded) == 0
        with pytest.raises(KeyError):
            sharded.shard_of(entry.key)


class TestQueries:
    @pytest.fixture()
    def catalog(self, tmp_path):
        write_product(tmp_path / "g000", granule_ids=("g000",), fingerprint="fp-a",
                      x_min=0.0, seed=1)
        write_product(tmp_path / "g001", granule_ids=("g001",), fingerprint="fp-b",
                      x_min=1500.0, seed=2)
        write_product(tmp_path / "mosaic", kind="mosaic",
                      granule_ids=("g000", "g001"), fingerprint="fp-m",
                      x_min=0.0, nx=35, seed=3)
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        return catalog

    def test_query_without_filters_returns_everything(self, catalog):
        assert len(catalog.query()) == 3

    def test_query_by_kind_and_granule(self, catalog):
        assert [e.fingerprint for e in catalog.query(kind="mosaic")] == ["fp-m"]
        covered = {e.fingerprint for e in catalog.query(granule_id="g001")}
        assert covered == {"fp-b", "fp-m"}

    def test_query_by_bbox_intersection(self, catalog):
        right = catalog.query(bbox=(2600.0, 0.0, 3000.0, 500.0))
        assert {e.fingerprint for e in right} == {"fp-b", "fp-m"}
        nowhere = catalog.query(bbox=(1e6, 1e6, 2e6, 2e6))
        assert nowhere == []

    def test_bbox_edge_touch_is_not_intersection(self, catalog):
        # g000 spans x in [0, 2000): a bbox starting exactly at 2000 misses it.
        touching = catalog.query(bbox=(2000.0, 0.0, 2100.0, 500.0))
        assert "fp-a" not in {e.fingerprint for e in touching}

    def test_query_by_variable(self, catalog):
        assert len(catalog.query(variable="freeboard_mean")) == 3
        assert catalog.query(variable="thickness_mean") == []

    def test_conjunctive_filters(self, catalog):
        out = catalog.query(
            bbox=(0.0, 0.0, 100.0, 100.0), variable="freeboard_mean", kind="granule"
        )
        assert [e.fingerprint for e in out] == ["fp-a"]

    def test_extent_is_union(self, catalog):
        assert catalog.extent() == (0.0, 0.0, 3500.0, 1000.0)

    def test_get_unknown_key(self, catalog):
        with pytest.raises(KeyError, match="no product"):
            catalog.get("nope")

    def test_empty_catalog_extent(self):
        with pytest.raises(ValueError, match="empty"):
            ProductCatalog().extent()

    def test_reregistration_replaces_indexes(self, tmp_path, catalog):
        # Re-register fp-a under a different kind: old index entries go away.
        write_product(tmp_path / "v2", kind="mosaic", granule_ids=("g000",),
                      fingerprint="fp-a", seed=9)
        catalog.register(tmp_path / "v2.json")
        assert len(catalog) == 3
        assert {e.fingerprint for e in catalog.query(kind="mosaic")} == {"fp-m", "fp-a"}


class TestEntryHelpers:
    def test_paths_and_intersects(self, tmp_path):
        write_product(tmp_path / "p0")
        entry = CatalogEntry.from_sidecar(tmp_path / "p0.json")
        assert entry.npz_path.name == "p0.npz"
        assert entry.json_path.name == "p0.json"
        assert entry.intersects((-100, -100, 50, 50))
        assert not entry.intersects((-100, -100, 0, 0))
