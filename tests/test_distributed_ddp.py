"""Tests for the synchronous data-parallel trainer and its timing model."""

import numpy as np
import pytest

from repro.distributed.ddp import DDPTimingModel, DistributedTrainer
from repro.ml.dataset import Dataset
from repro.ml.layers import Dense, ELU, Softmax
from repro.ml.losses import CategoricalCrossEntropy
from repro.ml.model import Sequential
from repro.ml.optimizers import SGD


def _model_builder(rng=None):
    """A small deterministic model without dropout (so replicas are exact)."""
    seed = 0
    return Sequential(
        [Dense(4, 8, rng=seed), ELU(), Dense(8, 3, rng=seed + 1), Softmax()],
        n_classes=3,
    ).compile(optimizer=SGD(learning_rate=0.05), loss=CategoricalCrossEntropy())


def _toy_dataset(rng, n=256):
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] > 0).astype(int) + (X[:, 1] > 0.5).astype(int)
    return Dataset(X, y)


class TestDistributedTrainer:
    def test_replicas_stay_synchronised(self, rng):
        trainer = DistributedTrainer(_model_builder, n_gpus=4, seed=0)
        trainer.train(_toy_dataset(rng), epochs=2, batch_size=16, shuffle=False)
        reference = trainer.replicas[0].get_weights()
        for replica in trainer.replicas[1:]:
            for a, b in zip(reference, replica.get_weights()):
                np.testing.assert_allclose(a, b, atol=1e-12)

    def test_multi_gpu_matches_single_gpu_with_global_batch(self, rng):
        """2 ranks x batch 8 must equal 1 rank x batch 16 when sharding is
        deterministic and shuffling is off (gradient averaging over the same
        global batch)."""
        data = _toy_dataset(rng, n=64)
        single = DistributedTrainer(_model_builder, n_gpus=1, seed=0)
        single.train(data, epochs=1, batch_size=16, shuffle=False)

        # Build the equivalent interleaved dataset for 2 shards of batch 8:
        # shard r takes samples r::2, so the global step-0 batch is samples
        # {0..15} — the same 16 samples the single run used.
        double = DistributedTrainer(_model_builder, n_gpus=2, seed=0)
        double.train(data, epochs=1, batch_size=8, shuffle=False)

        for a, b in zip(single.model.get_weights(), double.model.get_weights()):
            np.testing.assert_allclose(a, b, atol=1e-8)

    def test_training_learns(self, rng):
        trainer = DistributedTrainer(_model_builder, n_gpus=2, seed=1)
        result = trainer.train(_toy_dataset(rng, 300), epochs=6, batch_size=16)
        assert result.history.accuracy[-1] > 0.6
        assert result.history.loss[-1] < result.history.loss[0]

    def test_validation_metrics(self, rng):
        trainer = DistributedTrainer(_model_builder, n_gpus=2, seed=2)
        result = trainer.train(
            _toy_dataset(rng, 128), epochs=2, batch_size=16, validation=_toy_dataset(rng, 64)
        )
        assert len(result.history.val_accuracy) == 2

    def test_invalid_arguments(self, rng):
        with pytest.raises(ValueError):
            DistributedTrainer(_model_builder, n_gpus=0)
        trainer = DistributedTrainer(_model_builder, n_gpus=1)
        with pytest.raises(ValueError):
            trainer.train(_toy_dataset(rng), epochs=0)
        with pytest.raises(RuntimeError):
            DistributedTrainer(_model_builder, n_gpus=1).model


class TestDDPTimingModel:
    def test_epoch_time_decreases_with_gpus(self):
        model = DDPTimingModel()
        times = [model.epoch_seconds(14.0, n, 50_000, 100) for n in (1, 2, 4, 8)]
        assert times[0] > times[1] > times[2] > times[3]

    def test_speedup_is_sublinear(self):
        model = DDPTimingModel()
        t1 = model.epoch_seconds(14.0, 1, 50_000, 100)
        t8 = model.epoch_seconds(14.0, 8, 50_000, 12)
        assert 5.0 < t1 / t8 < 8.0

    def test_allreduce_cost_zero_for_single_gpu(self):
        assert DDPTimingModel().allreduce_seconds_per_step(1, 1_000_000) == 0.0

    def test_allreduce_cost_grows_with_parameters(self):
        model = DDPTimingModel()
        assert model.allreduce_seconds_per_step(4, 10_000_000) > model.allreduce_seconds_per_step(4, 1_000)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DDPTimingModel(input_pipeline_fraction=1.0)
        with pytest.raises(ValueError):
            DDPTimingModel(allreduce_bandwidth_gb_s=0.0)
        with pytest.raises(ValueError):
            DDPTimingModel().epoch_seconds(0.0, 2, 100, 10)


class TestScalingTable:
    def test_reproduces_table4_shape(self):
        trainer = DistributedTrainer(_model_builder, n_gpus=1)
        rows = trainer.scaling_table(
            single_gpu_total_s=280.72, n_samples=3222, epochs=20, batch_size=32,
            n_parameters=50_000,
        )
        assert [r.n_gpus for r in rows] == [1, 2, 4, 6, 8]
        assert rows[0].speedup == pytest.approx(1.0)
        # Paper: 1.96x at 2 GPUs, 7.25x at 8 GPUs.
        assert rows[1].speedup == pytest.approx(1.96, abs=0.15)
        assert rows[-1].speedup == pytest.approx(7.25, abs=0.6)
        # Throughput grows monotonically.
        throughput = [r.samples_per_second for r in rows]
        assert all(b > a for a, b in zip(throughput, throughput[1:]))

    def test_total_time_matches_baseline(self):
        trainer = DistributedTrainer(_model_builder, n_gpus=1)
        rows = trainer.scaling_table(280.72, 3222, n_parameters=50_000)
        assert rows[0].total_time_s == pytest.approx(280.72, rel=0.02)

    def test_invalid_baseline_rejected(self):
        trainer = DistributedTrainer(_model_builder, n_gpus=1)
        with pytest.raises(ValueError):
            trainer.scaling_table(0.0, 100)
