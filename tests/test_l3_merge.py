"""Online mosaic merging: the bit-identity contract of MosaicAccumulator.

The load-bearing property (Hypothesis-tested): N granules ingested in **any
order** produce a mosaic byte-identical to the batch
``Level3Processor.mosaic`` over the same fleet.  Everything the live-ingest
tier serves rests on this — incremental products are not approximations of
the batch products, they *are* the batch products.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy.grid import GridDefinition
from repro.l3.merge import (
    MERGED_COUNT_LAYERS,
    MERGED_MEAN_LAYERS,
    MosaicAccumulator,
)
from repro.l3.processor import Level3Processor, mean_and_std_across
from repro.l3.product import Level3Grid

GRID = GridDefinition.from_extent(
    x_min_m=0.0, x_max_m=4_000.0, y_min_m=0.0, y_max_m=3_000.0, cell_size_m=500.0
)


def synthetic_granule(
    granule_id: str,
    rng: np.random.Generator,
    grid: GridDefinition = GRID,
    coverage: float = 0.5,
) -> Level3Grid:
    """A per-granule grid with a random sparse footprint, batch-shaped.

    Mirrors exactly the layers ``Level3Processor.mosaic`` consumes: integer
    count layers, NaN-masked float statistics, class fractions defined only
    on observed cells.
    """
    ny, nx = grid.shape
    n_segments = rng.integers(1, 6, size=(ny, nx)).astype(np.int64)
    n_segments[rng.random((ny, nx)) >= coverage] = 0
    observed = n_segments > 0
    n_freeboard = np.where(observed, rng.integers(1, 4, size=(ny, nx)), 0).astype(
        np.int64
    )

    def masked() -> np.ndarray:
        return np.where(observed, rng.normal(0.25, 0.1, size=(ny, nx)), np.nan)

    thick = rng.random((ny, nx))
    thin = rng.random((ny, nx)) * (1.0 - thick)
    variables = {
        "n_segments": n_segments,
        "n_freeboard_segments": n_freeboard,
        "freeboard_mean": masked(),
        "freeboard_median": masked(),
        "thickness_mean": masked(),
        "class_fraction_thick_ice": np.where(observed, thick, np.nan),
        "class_fraction_thin_ice": np.where(observed, thin, np.nan),
        "class_fraction_open_water": np.where(observed, 1.0 - thick - thin, np.nan),
    }
    return Level3Grid(
        grid=grid,
        variables=variables,
        metadata={"granule_id": granule_id, "kind": "granule"},
    )


def assert_products_byte_identical(live: Level3Grid, batch: Level3Grid) -> None:
    assert set(live.variables) == set(batch.variables)
    assert list(live.variables) == list(batch.variables)  # insertion order too
    for name, expected in batch.variables.items():
        got = live.variables[name]
        assert got.dtype == expected.dtype, name
        assert got.tobytes() == expected.tobytes(), name


class TestAnyOrderBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_ingest_order_never_changes_a_byte(self, data):
        """Core acceptance property: any ingest order == batch, byte for byte."""
        n = data.draw(st.integers(min_value=1, max_value=5), label="n_granules")
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1), label="seed")
        coverage = data.draw(
            st.floats(min_value=0.0, max_value=1.0), label="coverage"
        )
        order = data.draw(st.permutations(list(range(n))), label="order")

        rng = np.random.default_rng(seed)
        granules = [synthetic_granule(f"g{i:03d}", rng, coverage=coverage) for i in range(n)]
        batch = Level3Processor(GRID).mosaic(granules)

        accumulator = MosaicAccumulator(GRID)
        for index in order:
            dirty = accumulator.add(granules[index])
            observed = np.flatnonzero(granules[index].variable("n_segments").ravel() > 0)
            assert np.array_equal(dirty, observed)

        assert_products_byte_identical(accumulator.snapshot(), batch)

    def test_incremental_snapshots_match_growing_batches(self):
        """Every intermediate snapshot equals the batch mosaic of its prefix."""
        rng = np.random.default_rng(11)
        granules = [synthetic_granule(f"g{i:03d}", rng) for i in range(4)]
        accumulator = MosaicAccumulator(GRID)
        for count, granule in enumerate(granules, start=1):
            accumulator.add(granule)
            batch = Level3Processor(GRID).mosaic(granules[:count])
            assert_products_byte_identical(accumulator.snapshot(), batch)

    def test_metadata_matches_the_batch_mosaic(self):
        rng = np.random.default_rng(3)
        granules = [synthetic_granule(f"g{i:03d}", rng) for i in range(3)]
        batch = Level3Processor(GRID).mosaic(granules)
        accumulator = MosaicAccumulator(GRID)
        for granule in reversed(granules):
            accumulator.add(granule)
        snapshot = accumulator.snapshot()
        assert snapshot.metadata["kind"] == "mosaic"
        assert snapshot.metadata["granule_ids"] == batch.metadata["granule_ids"]
        assert snapshot.metadata["n_granules"] == batch.metadata["n_granules"]
        assert snapshot.metadata["n_segments_total"] == batch.metadata["n_segments_total"]


class TestDirtyCellAccounting:
    def test_dirty_cells_are_exactly_the_observed_footprint(self):
        rng = np.random.default_rng(5)
        granule = synthetic_granule("g000", rng, coverage=0.3)
        accumulator = MosaicAccumulator(GRID)
        dirty = accumulator.add(granule)
        assert np.array_equal(
            dirty, np.flatnonzero(granule.variable("n_segments").ravel() > 0)
        )

    def test_empty_footprint_still_counts_toward_coverage(self):
        rng = np.random.default_rng(5)
        observed = synthetic_granule("g000", rng, coverage=1.0)
        empty = synthetic_granule("g001", rng, coverage=0.0)
        accumulator = MosaicAccumulator(GRID)
        accumulator.add(observed)
        dirty = accumulator.add(empty)
        assert dirty.size == 0
        snapshot = accumulator.snapshot()
        batch = Level3Processor(GRID).mosaic([observed, empty])
        assert_products_byte_identical(snapshot, batch)
        assert snapshot.variable("coverage_fraction").max() == pytest.approx(0.5)


class TestValidation:
    def test_rejects_mismatched_grid(self):
        rng = np.random.default_rng(0)
        other = GridDefinition.from_extent(
            x_min_m=0.0, x_max_m=2_000.0, y_min_m=0.0, y_max_m=2_000.0, cell_size_m=500.0
        )
        accumulator = MosaicAccumulator(GRID)
        with pytest.raises(ValueError, match="grid"):
            accumulator.add(synthetic_granule("g000", rng, grid=other))

    def test_rejects_duplicate_granule_id(self):
        rng = np.random.default_rng(0)
        accumulator = MosaicAccumulator(GRID)
        accumulator.add(synthetic_granule("g000", rng))
        with pytest.raises(ValueError, match="g000"):
            accumulator.add(synthetic_granule("g000", rng))

    def test_rejects_missing_granule_id(self):
        rng = np.random.default_rng(0)
        granule = synthetic_granule("g000", rng)
        granule.metadata.pop("granule_id")
        with pytest.raises(ValueError, match="granule_id"):
            MosaicAccumulator(GRID).add(granule)

    def test_snapshot_of_empty_accumulator_raises(self):
        with pytest.raises(ValueError):
            MosaicAccumulator(GRID).snapshot()

    def test_introspection(self):
        rng = np.random.default_rng(0)
        accumulator = MosaicAccumulator(GRID)
        accumulator.add(synthetic_granule("g001", rng))
        accumulator.add(synthetic_granule("g000", rng))
        assert len(accumulator) == 2
        assert "g001" in accumulator
        assert accumulator.granule_ids == ("g000", "g001")  # sorted stacking order


class TestSharedMergeMath:
    def test_layer_constants_cover_the_mosaic_variables(self):
        assert set(MERGED_COUNT_LAYERS) == {"n_segments", "n_freeboard_segments"}
        assert "freeboard_mean" in MERGED_MEAN_LAYERS
        assert any(name.startswith("class_fraction_") for name in MERGED_MEAN_LAYERS)

    def test_mean_and_std_across_is_the_batch_helper(self):
        """The public helper is the same object the batch mosaic path uses."""
        from repro.l3 import processor

        assert processor._mean_and_std_across is mean_and_std_across
        stacked = np.array([[1.0, np.nan], [3.0, np.nan]])
        mean, std = mean_and_std_across(stacked)
        assert mean[0] == pytest.approx(2.0)
        assert np.isnan(mean[1])
        assert std[0] == pytest.approx(np.sqrt(2.0))
