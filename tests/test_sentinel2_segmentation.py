"""Tests for the color-based segmentation with cloud/shadow filtering."""

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.sentinel2.cloud import CloudConfig
from repro.sentinel2.scene import S2SceneConfig, render_scene
from repro.sentinel2.segmentation import (
    SegmentationConfig,
    detect_shadows,
    detect_thin_clouds,
    segment_image,
)


class TestSegmentationConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            SegmentationConfig(thick_ice_brightness=0.2, thin_ice_brightness=0.5)

    def test_shadow_recovery_range(self):
        with pytest.raises(ValueError):
            SegmentationConfig(shadow_recovery=1.0)


class TestSegmentImage:
    def test_overall_accuracy_against_truth(self, s2_image, s2_segmentation):
        truth = s2_image.truth_class_map
        acc = (s2_segmentation.class_map == truth).mean()
        assert acc > 0.80

    def test_clear_sky_accuracy_is_higher(self, scene):
        clear = render_scene(
            scene,
            config=S2SceneConfig(cloud=CloudConfig(thin_cloud_fraction=0.0, shadow_fraction=0.0)),
            rng=6,
        )
        result = segment_image(clear)
        acc = (result.class_map == clear.truth_class_map).mean()
        assert acc > 0.9

    def test_per_class_recall(self, s2_image, s2_segmentation):
        truth = s2_image.truth_class_map
        pred = s2_segmentation.class_map
        for cls in (CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_OPEN_WATER):
            mask = truth == cls
            if mask.any():
                assert (pred[mask] == cls).mean() > 0.4

    def test_class_map_values_valid(self, s2_segmentation):
        assert set(np.unique(s2_segmentation.class_map)).issubset(
            {CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_OPEN_WATER}
        )

    def test_result_fractions_sum_to_one(self, s2_segmentation):
        fractions = s2_segmentation.class_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_invalid_band_stack_rejected(self, s2_image):
        import dataclasses

        broken = dataclasses.replace(s2_image)
        broken.bands = np.zeros((2, 4, 4))
        with pytest.raises(ValueError):
            segment_image(broken)


class TestCloudShadowDetection:
    def test_cloud_detection_overlaps_true_clouds(self, scene):
        cloudy = render_scene(
            scene,
            config=S2SceneConfig(cloud=CloudConfig(thin_cloud_fraction=0.35, max_optical_depth=0.7)),
            rng=8,
        )
        result = segment_image(cloudy)
        true_cloud = cloudy.cloud_optical_depth > 0.3
        if true_cloud.any() and result.cloud_mask.any():
            # Detected clouds should be enriched in truly cloudy pixels
            # compared to the overall cloud fraction.
            precision = true_cloud[result.cloud_mask].mean()
            assert precision > true_cloud.mean()

    def test_detect_shadows_flags_dark_high_nir(self):
        cfg = SegmentationConfig()
        bands = np.zeros((4, 4, 4))
        bands[:3, 0, 0] = 0.1   # dark visible
        bands[3, 0, 0] = 0.09   # relatively high NIR -> shadowed ice
        bands[:3, 1, 1] = 0.06  # dark visible
        bands[3, 1, 1] = 0.005  # black NIR -> open water, not shadow
        shadows = detect_shadows(bands, cfg)
        assert bool(shadows[0, 0])
        assert not bool(shadows[1, 1])

    def test_detect_thin_clouds_requires_flat_spectrum(self):
        cfg = SegmentationConfig()
        bands = np.zeros((4, 2, 2))
        # Spectrally flat, moderately bright, NIR-bright: thin cloud.
        bands[:, 0, 0] = [0.45, 0.45, 0.44, 0.40]
        # Equally bright but spectrally tilted: not a cloud.
        bands[:, 1, 1] = [0.60, 0.45, 0.30, 0.28]
        clouds = detect_thin_clouds(bands, cfg)
        assert bool(clouds[0, 0])
        assert not bool(clouds[1, 1])
