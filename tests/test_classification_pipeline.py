"""Tests for classifier training and the Fig. 3 inference pipeline."""

import numpy as np
import pytest

from repro.classification.pipeline import InferencePipeline, train_classifier
from repro.config import TrainingConfig


@pytest.fixture(scope="module")
def quick_training():
    return TrainingConfig(learning_rate=0.003, batch_size=32, epochs=3)


@pytest.fixture(scope="module")
def trained_mlp(labeled_segments, quick_training):
    segments, labels = labeled_segments
    return train_classifier(segments, labels, kind="mlp", training=quick_training, epochs=3, rng=0)


@pytest.fixture(scope="module")
def trained_lstm(labeled_segments, quick_training):
    segments, labels = labeled_segments
    return train_classifier(segments, labels, kind="lstm", training=quick_training, epochs=3, rng=0)


class TestTrainClassifier:
    def test_mlp_reaches_reasonable_accuracy(self, trained_mlp):
        assert trained_mlp.accuracy > 0.7
        assert trained_mlp.kind == "mlp"
        assert trained_mlp.sequence_length == 1

    def test_lstm_reaches_reasonable_accuracy(self, trained_lstm):
        assert trained_lstm.accuracy > 0.75
        assert trained_lstm.sequence_length == 5

    def test_report_contains_all_metrics(self, trained_lstm):
        row = trained_lstm.report.as_row("LSTM")
        for key in ("Accuracy", "Precision", "Recall", "F1 score"):
            assert 0.0 <= row[key] <= 100.0

    def test_history_length_matches_epochs(self, trained_mlp):
        assert trained_mlp.history.n_epochs == 3

    def test_unlabeled_segments_excluded(self, labeled_segments, quick_training):
        segments, labels = labeled_segments
        partial = labels.copy()
        partial[::2] = -1  # drop half the labels
        clf = train_classifier(segments, partial, kind="mlp", training=quick_training, epochs=1, rng=1)
        assert clf.accuracy > 0.4

    def test_invalid_kind_rejected(self, labeled_segments):
        segments, labels = labeled_segments
        with pytest.raises(ValueError):
            train_classifier(segments, labels, kind="cnn")

    def test_label_length_mismatch_rejected(self, labeled_segments):
        segments, labels = labeled_segments
        with pytest.raises(ValueError):
            train_classifier(segments, labels[:-1])

    def test_too_few_labels_rejected(self, labeled_segments):
        segments, labels = labeled_segments
        empty = np.full(segments.n_segments, -1, dtype=np.int8)
        with pytest.raises(ValueError):
            train_classifier(segments, empty)


class TestInferencePipeline:
    def test_classify_beam_labels_every_segment(self, trained_mlp, beam):
        pipeline = InferencePipeline(trained_mlp)
        track = pipeline.classify_beam(beam)
        assert track.n_segments == track.segments.n_segments
        assert track.probabilities.shape == (track.n_segments, 3)
        np.testing.assert_allclose(track.probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_classification_agrees_with_truth(self, trained_lstm, beam):
        pipeline = InferencePipeline(trained_lstm)
        track = pipeline.classify_beam(beam)
        truth = track.segments.truth_class
        valid = truth >= 0
        accuracy = (track.labels[valid] == truth[valid]).mean()
        assert accuracy > 0.8

    def test_lstm_denser_product_than_atl07_comparison(self, trained_lstm, beam):
        from repro.resampling.photon_agg import aggregate_photons

        pipeline = InferencePipeline(trained_lstm)
        track = pipeline.classify_beam(beam)
        atl07_style = aggregate_photons(beam, photons_per_segment=150)
        assert track.n_segments > atl07_style.n_segments * 10

    def test_classify_granule_covers_all_beams(self, trained_mlp, granule):
        pipeline = InferencePipeline(trained_mlp)
        result = pipeline.classify_granule(granule)
        assert set(result) == set(granule.beam_names)

    def test_class_fractions_sum_to_one(self, trained_mlp, beam):
        track = InferencePipeline(trained_mlp).classify_beam(beam)
        assert sum(track.class_fractions().values()) == pytest.approx(1.0)
