"""Tests for sea-surface window interpolation and evaluation."""

import numpy as np
import pytest

from repro.freeboard.interpolation import interpolate_missing_windows, sea_surface_at
from repro.freeboard.sea_surface import SeaSurfaceEstimate, WindowSeaSurface


def _estimate(heights, centers=None, errors=None):
    if centers is None:
        centers = np.arange(len(heights)) * 5_000.0 + 5_000.0
    if errors is None:
        errors = [0.05 if np.isfinite(h) else np.nan for h in heights]
    windows = [
        WindowSeaSurface(
            center_m=c, start_m=c - 5_000.0, stop_m=c + 5_000.0,
            height_m=h, error_m=e, n_open_water=0 if np.isnan(h) else 5,
        )
        for c, h, e in zip(centers, heights, errors)
    ]
    return SeaSurfaceEstimate(method="nasa", windows=windows)


class TestInterpolateMissingWindows:
    def test_linear_interpolation_between_anchors(self):
        estimate = _estimate([0.0, np.nan, 0.2])
        filled = interpolate_missing_windows(estimate)
        assert filled.heights_m[1] == pytest.approx(0.1)
        assert filled.windows[1].interpolated
        assert not filled.windows[0].interpolated

    def test_constant_extrapolation_at_edges(self):
        estimate = _estimate([np.nan, 0.1, np.nan])
        filled = interpolate_missing_windows(estimate)
        assert filled.heights_m[0] == pytest.approx(0.1)
        assert filled.heights_m[2] == pytest.approx(0.1)

    def test_no_missing_windows_returns_same_estimate(self):
        estimate = _estimate([0.0, 0.1])
        assert interpolate_missing_windows(estimate) is estimate

    def test_interpolated_errors_inflated(self):
        estimate = _estimate([0.0, np.nan, 0.2])
        filled = interpolate_missing_windows(estimate)
        assert filled.errors_m[1] > np.nanmean([0.05, 0.05])

    def test_all_missing_rejected(self):
        with pytest.raises(ValueError, match="no leads"):
            interpolate_missing_windows(_estimate([np.nan, np.nan]))

    def test_original_not_mutated(self):
        estimate = _estimate([0.0, np.nan, 0.2])
        interpolate_missing_windows(estimate)
        assert np.isnan(estimate.heights_m[1])


class TestSeaSurfaceAt:
    def test_interpolates_between_window_centres(self):
        estimate = _estimate([0.0, 0.2])
        # Centres are at 5 km and 10 km.
        value = sea_surface_at(estimate, np.array([7_500.0]))
        assert value[0] == pytest.approx(0.1)

    def test_clamps_outside_range(self):
        estimate = _estimate([0.1, 0.3])
        values = sea_surface_at(estimate, np.array([0.0, 50_000.0]))
        assert values[0] == pytest.approx(0.1)
        assert values[1] == pytest.approx(0.3)

    def test_skips_nan_windows(self):
        estimate = _estimate([0.0, np.nan, 0.2])
        value = sea_surface_at(estimate, np.array([10_000.0]))
        # The NaN middle window is ignored; interpolation runs between the
        # valid anchors at 5 km and 15 km.
        assert value[0] == pytest.approx(0.1)

    def test_no_valid_windows_rejected(self):
        with pytest.raises(ValueError):
            sea_surface_at(_estimate([np.nan]), np.array([0.0]))
