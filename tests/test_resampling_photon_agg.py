"""Tests for the 150-photon aggregation (ATL07-style baseline)."""

import numpy as np
import pytest

from repro.resampling.photon_agg import aggregate_photons
from repro.resampling.window import resample_fixed_window


class TestAggregatePhotons:
    def test_every_segment_has_exactly_n_photons(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=150)
        assert np.all(segments.n_photons == 150)

    def test_segment_count_matches_photon_budget(self, beam):
        n_signal = int((beam.signal_conf >= 3).sum())
        segments = aggregate_photons(beam, photons_per_segment=150)
        assert segments.n_segments == n_signal // 150

    def test_variable_segment_lengths(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=150)
        assert segments.length_m.min() > 0.0
        # Over bright ice with ~4 photons/shot a 150-photon segment spans
        # roughly 25-40 m; over water it stretches much longer.
        assert segments.length_m.max() > segments.length_m.min()

    def test_resolution_much_coarser_than_2m_windows(self, beam):
        agg = aggregate_photons(beam, photons_per_segment=150)
        fine = resample_fixed_window(beam, window_length_m=2.0)
        assert agg.mean_length_m() > 10.0
        assert fine.n_segments > agg.n_segments * 10

    def test_centres_are_monotonic(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=150)
        assert np.all(np.diff(segments.center_along_track_m) > 0)

    def test_majority_truth_class(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=150)
        assert np.all(segments.truth_class >= 0)
        assert np.all(segments.truth_class <= 2)

    def test_small_photon_count(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=10)
        assert segments.photons_per_segment == 10
        assert segments.n_segments > 0

    def test_too_few_photons_yields_empty_product(self, beam):
        tiny = beam.select(np.arange(beam.n_photons) < 20)
        segments = aggregate_photons(tiny, photons_per_segment=150)
        assert segments.n_segments == 0
        assert segments.mean_length_m() == 0.0

    def test_invalid_count_rejected(self, beam):
        with pytest.raises(ValueError):
            aggregate_photons(beam, photons_per_segment=0)

    def test_height_statistics_match_reference(self, beam):
        segments = aggregate_photons(beam, photons_per_segment=100)
        signal = beam.select(beam.signal_conf >= 3)
        first = signal.height_m[:100]
        assert segments.height_mean_m[0] == pytest.approx(first.mean())
        assert segments.height_std_m[0] == pytest.approx(first.std())
        assert segments.height_min_m[0] == pytest.approx(first.min())
