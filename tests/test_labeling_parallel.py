"""Tests for the map-reduce-parallel auto-labeling job."""

import numpy as np
import pytest

from repro.distributed.mapreduce import MapReduceEngine
from repro.labeling.autolabel import auto_label_segments
from repro.labeling.parallel import parallel_autolabel


class TestParallelAutolabel:
    @pytest.mark.parametrize("n_partitions", [1, 2, 4, 7])
    def test_matches_serial_reference(self, segments, s2_image, s2_segmentation, n_partitions):
        serial = auto_label_segments(segments, s2_image, s2_segmentation)
        engine = MapReduceEngine(n_partitions=n_partitions, executor="serial")
        parallel, mr = parallel_autolabel(segments, s2_image, s2_segmentation, engine)
        np.testing.assert_array_equal(parallel.labels, serial.labels)
        np.testing.assert_array_equal(parallel.in_image, serial.in_image)
        np.testing.assert_array_equal(parallel.cloudy, serial.cloudy)
        assert mr.n_partitions == n_partitions

    def test_thread_executor_matches(self, segments, s2_image, s2_segmentation):
        serial = auto_label_segments(segments, s2_image, s2_segmentation)
        engine = MapReduceEngine(n_partitions=3, executor="thread")
        parallel, _ = parallel_autolabel(segments, s2_image, s2_segmentation, engine)
        np.testing.assert_array_equal(parallel.labels, serial.labels)

    def test_timing_stages_recorded(self, segments, s2_image, s2_segmentation):
        engine = MapReduceEngine(n_partitions=2, executor="serial")
        _, mr = parallel_autolabel(segments, s2_image, s2_segmentation, engine)
        assert mr.load_seconds >= 0.0
        assert mr.map_seconds > 0.0
        assert mr.reduce_seconds >= 0.0
        assert mr.total_seconds == pytest.approx(
            mr.load_seconds + mr.map_seconds + mr.reduce_seconds
        )
