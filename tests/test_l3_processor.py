"""Tests for the Level-3 processor, mosaic edge cases and the product writer.

The processor is duck-typed over the per-beam retrieval artifacts (it reads
``segments.x_m``/``y_m``, ``labels`` and ``freeboard_m``), so these tests
drive it with small synthetic tracks where every expected per-cell value is
known in closed form.  Mosaic conventions under test: empty cells stay NaN,
a granule wholly outside the grid contributes nothing (but does not error),
and single-contributor cells report NaN mosaic std — never garbage.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.config import (
    CLASS_OPEN_WATER,
    CLASS_THICK_ICE,
    CLASS_THIN_ICE,
    L3GridConfig,
)
from repro.geodesy.grid import GridDefinition
from repro.l3 import Level3Processor, read_level3, write_level3
from repro.l3.writer import L3_FORMAT


@dataclass
class _Segments:
    x_m: np.ndarray
    y_m: np.ndarray


@dataclass
class _Track:
    segments: _Segments
    labels: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.labels.shape[0])


@dataclass
class _Freeboard:
    freeboard_m: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(self.freeboard_m.shape[0])


def make_beam(x, y, labels, freeboard):
    x = np.asarray(x, dtype=float)
    track = _Track(
        segments=_Segments(x_m=x, y_m=np.asarray(y, dtype=float)),
        labels=np.asarray(labels),
    )
    return track, _Freeboard(freeboard_m=np.asarray(freeboard, dtype=float))


@pytest.fixture()
def grid():
    return GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=4, ny=3)


class TestGridGranule:
    def test_known_cell_statistics(self, grid):
        # Three ice segments in cell (0, 0), one open-water segment in cell
        # (0, 1); the rest of the grid stays empty.
        track, fb = make_beam(
            x=[10.0, 20.0, 30.0, 150.0],
            y=[10.0, 20.0, 30.0, 50.0],
            labels=[CLASS_THICK_ICE, CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_OPEN_WATER],
            freeboard=[0.2, 0.4, 0.3, 0.0],
        )
        product = Level3Processor(grid).grid_granule(
            {"gt1l": track}, {"gt1l": fb}, granule_id="g-test"
        )
        assert product.kind == "granule"
        assert product.metadata["granule_id"] == "g-test"
        n = product.variable("n_segments")
        assert n[0, 0] == 3 and n[0, 1] == 1
        assert n.sum() == 4
        assert product.variable("freeboard_mean")[0, 0] == pytest.approx(0.3)
        assert product.variable("freeboard_median")[0, 0] == pytest.approx(0.3)
        # Open water contributes to class fractions but not to freeboard.
        assert product.variable("n_freeboard_segments")[0, 1] == 0
        assert np.isnan(product.variable("freeboard_mean")[0, 1])
        assert product.variable("class_fraction_open_water")[0, 1] == 1.0
        assert product.variable("class_fraction_thick_ice")[0, 0] == pytest.approx(2 / 3)
        # Empty cells: count 0 and NaN statistics.
        assert n[2, 3] == 0
        assert np.isnan(product.variable("freeboard_mean")[2, 3])

    def test_segments_outside_grid_are_dropped(self, grid):
        track, fb = make_beam(
            x=[-50.0, 10.0, 10_000.0],
            y=[10.0, 10.0, 10.0],
            labels=[CLASS_THICK_ICE] * 3,
            freeboard=[0.5, 0.2, 0.9],
        )
        product = Level3Processor(grid).grid_granule({"b": track}, {"b": fb})
        assert product.variable("n_segments").sum() == 1
        assert product.variable("freeboard_mean")[0, 0] == pytest.approx(0.2)

    def test_granule_wholly_outside_grid_is_empty_not_an_error(self, grid):
        track, fb = make_beam(
            x=[-1e6, -2e6], y=[-1e6, -2e6],
            labels=[CLASS_THICK_ICE, CLASS_THIN_ICE], freeboard=[0.1, 0.2],
        )
        product = Level3Processor(grid).grid_granule({"b": track}, {"b": fb})
        assert product.variable("n_segments").sum() == 0
        assert product.coverage_fraction() == 0.0
        assert np.isnan(product.variable("freeboard_mean")).all()

    def test_min_segments_floor_masks_sparse_cells(self, grid):
        track, fb = make_beam(
            x=[10.0, 20.0, 150.0],
            y=[10.0, 20.0, 50.0],
            labels=[CLASS_THICK_ICE] * 3,
            freeboard=[0.2, 0.4, 0.3],
        )
        product = Level3Processor(grid, min_segments=2).grid_granule({"b": track}, {"b": fb})
        assert product.variable("freeboard_mean")[0, 0] == pytest.approx(0.3)
        # The single-contributor cell is below the floor: NaN stats, count kept.
        assert np.isnan(product.variable("freeboard_mean")[0, 1])
        assert product.variable("n_freeboard_segments")[0, 1] == 1

    def test_nan_freeboard_segments_are_excluded(self, grid):
        track, fb = make_beam(
            x=[10.0, 20.0], y=[10.0, 20.0],
            labels=[CLASS_THICK_ICE, CLASS_THICK_ICE], freeboard=[0.4, np.nan],
        )
        product = Level3Processor(grid).grid_granule({"b": track}, {"b": fb})
        assert product.variable("n_segments")[0, 0] == 2
        assert product.variable("n_freeboard_segments")[0, 0] == 1
        assert product.variable("freeboard_mean")[0, 0] == pytest.approx(0.4)

    def test_mismatched_beams_rejected(self, grid):
        track, fb = make_beam([10.0], [10.0], [CLASS_THICK_ICE], [0.2])
        with pytest.raises(ValueError, match="same beams"):
            Level3Processor(grid).grid_granule({"a": track}, {"b": fb})

    def test_from_config_defaults_to_scene_extent(self):
        from repro.surface.scene import SceneConfig

        scene = SceneConfig(width_m=8_000.0, height_m=6_000.0)
        proc = Level3Processor.from_config(L3GridConfig(cell_size_m=2_000.0), scene=scene)
        assert proc.grid.x_min_m == scene.origin_x_m
        assert proc.grid.shape == (3, 4)
        with pytest.raises(ValueError, match="no scene config"):
            Level3Processor.from_config(L3GridConfig())

    def test_from_config_explicit_extent_overrides_scene(self):
        cfg = L3GridConfig(
            cell_size_m=500.0, x_min_m=0.0, y_min_m=0.0, width_m=2_000.0, height_m=1_000.0
        )
        proc = Level3Processor.from_config(cfg)
        assert proc.grid.shape == (2, 4)
        assert proc.grid.x_min_m == 0.0


class TestMosaic:
    def _granule(self, grid, x, freeboard, label=CLASS_THICK_ICE):
        track, fb = make_beam(
            x=x, y=[50.0] * len(x), labels=[label] * len(x), freeboard=freeboard
        )
        return Level3Processor(grid).grid_granule({"b": track}, {"b": fb})

    def test_two_contributors_mean_and_sample_std(self, grid):
        a = self._granule(grid, x=[10.0], freeboard=[0.2])
        b = self._granule(grid, x=[20.0], freeboard=[0.4])
        mosaic = Level3Processor(grid).mosaic([a, b])
        assert mosaic.kind == "mosaic"
        assert mosaic.variable("n_granules")[0, 0] == 2
        assert mosaic.variable("coverage_fraction")[0, 0] == 1.0
        assert mosaic.variable("freeboard_mean")[0, 0] == pytest.approx(0.3)
        # Sample std of the two granule means (ddof=1).
        assert mosaic.variable("freeboard_std")[0, 0] == pytest.approx(
            np.std([0.2, 0.4], ddof=1)
        )

    def test_single_contributor_cells_have_nan_std_by_convention(self, grid):
        a = self._granule(grid, x=[10.0], freeboard=[0.2])        # cell (0, 0)
        b = self._granule(grid, x=[150.0], freeboard=[0.4])       # cell (0, 1)
        mosaic = Level3Processor(grid).mosaic([a, b])
        assert mosaic.variable("n_granules")[0, 0] == 1
        assert mosaic.variable("freeboard_mean")[0, 0] == pytest.approx(0.2)
        assert np.isnan(mosaic.variable("freeboard_std")[0, 0])
        assert np.isnan(mosaic.variable("freeboard_std")[0, 1])
        assert mosaic.variable("coverage_fraction")[0, 0] == 0.5

    def test_empty_cells_stay_nan_with_zero_counts(self, grid):
        a = self._granule(grid, x=[10.0], freeboard=[0.2])
        mosaic = Level3Processor(grid).mosaic([a])
        assert mosaic.variable("n_segments")[2, 3] == 0
        assert mosaic.variable("n_granules")[2, 3] == 0
        assert np.isnan(mosaic.variable("freeboard_mean")[2, 3])
        assert np.isnan(mosaic.variable("class_fraction_thick_ice")[2, 3])

    def test_granule_wholly_outside_contributes_nothing(self, grid):
        inside = self._granule(grid, x=[10.0], freeboard=[0.2])
        outside_track, outside_fb = make_beam(
            x=[-1e6], y=[-1e6], labels=[CLASS_THICK_ICE], freeboard=[0.9]
        )
        outside = Level3Processor(grid).grid_granule({"b": outside_track}, {"b": outside_fb})
        mosaic = Level3Processor(grid).mosaic([inside, outside])
        assert mosaic.metadata["n_granules"] == 2
        assert mosaic.variable("n_granules")[0, 0] == 1
        assert mosaic.variable("freeboard_mean")[0, 0] == pytest.approx(0.2)
        assert mosaic.variable("coverage_fraction").max() == pytest.approx(0.5)

    def test_class_fractions_average_over_observers_only(self, grid):
        a = self._granule(grid, x=[10.0], freeboard=[0.2], label=CLASS_THICK_ICE)
        b = self._granule(grid, x=[20.0], freeboard=[0.3], label=CLASS_THIN_ICE)
        mosaic = Level3Processor(grid).mosaic([a, b])
        assert mosaic.variable("class_fraction_thick_ice")[0, 0] == pytest.approx(0.5)
        assert mosaic.variable("class_fraction_thin_ice")[0, 0] == pytest.approx(0.5)

    def test_mismatched_grids_rejected(self, grid):
        other = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=50.0, nx=8, ny=6)
        a = self._granule(grid, x=[10.0], freeboard=[0.2])
        b = self._granule(other, x=[10.0], freeboard=[0.2])
        with pytest.raises(ValueError, match="share one GridDefinition"):
            Level3Processor(grid).mosaic([a, b])

    def test_empty_fleet_rejected(self, grid):
        with pytest.raises(ValueError, match="zero grids"):
            Level3Processor(grid).mosaic([])


class TestWriterRoundTrip:
    def _product(self, grid):
        track, fb = make_beam(
            x=[10.0, 20.0, 150.0],
            y=[10.0, 20.0, 50.0],
            labels=[CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_OPEN_WATER],
            freeboard=[0.2, 0.4, 0.0],
        )
        return Level3Processor(grid).grid_granule({"b": track}, {"b": fb}, granule_id="g7")

    def test_round_trip_is_byte_identical(self, grid, tmp_path):
        product = self._product(grid)
        product.metadata["fingerprint"] = "abc123"
        npz_path, json_path = write_level3(product, tmp_path / "prod")
        assert npz_path.is_file() and json_path.is_file()
        reloaded = read_level3(tmp_path / "prod")
        assert reloaded.grid == product.grid
        assert set(reloaded.variables) == set(product.variables)
        for name, original in product.variables.items():
            loaded = reloaded.variables[name]
            assert loaded.dtype == original.dtype
            assert loaded.tobytes() == original.tobytes()
        assert reloaded.metadata["fingerprint"] == "abc123"
        assert reloaded.metadata["granule_id"] == "g7"
        assert reloaded.attrs["freeboard_mean"]["units"] == "m"

    def test_reader_accepts_base_or_sibling_paths(self, grid, tmp_path):
        product = self._product(grid)
        write_level3(product, tmp_path / "prod")
        for path in (tmp_path / "prod", tmp_path / "prod.npz", tmp_path / "prod.json"):
            assert read_level3(path).grid == product.grid

    def test_missing_sidecar_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_level3(tmp_path / "nothing")

    def test_wrong_format_tag_rejected(self, grid, tmp_path):
        import json

        product = self._product(grid)
        _, json_path = write_level3(product, tmp_path / "prod")
        payload = json.loads(json_path.read_text())
        payload["format"] = "repro-l3/999"
        json_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported"):
            read_level3(tmp_path / "prod")
        assert L3_FORMAT == "repro-l3/1"

    def test_shape_mismatch_detected(self, grid, tmp_path):
        import json

        product = self._product(grid)
        _, json_path = write_level3(product, tmp_path / "prod")
        payload = json.loads(json_path.read_text())
        payload["variables"]["freeboard_mean"]["shape"] = [1, 1]
        json_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="does not match"):
            read_level3(tmp_path / "prod")
