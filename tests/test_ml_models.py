"""Tests for the paper's LSTM and MLP classifier architectures."""

import numpy as np
import pytest

from repro.config import LSTMConfig, MLPConfig, TrainingConfig
from repro.ml.dataset import Dataset
from repro.ml.layers import Dense, Dropout
from repro.ml.lstm import LSTM
from repro.ml.models import build_lstm_classifier, build_mlp_classifier


class TestLSTMClassifier:
    def test_architecture_matches_paper(self):
        model = build_lstm_classifier(rng=0)
        lstm_layers = [l for l in model.layers if isinstance(l, LSTM)]
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        dropouts = [l for l in model.layers if isinstance(l, Dropout)]
        assert len(lstm_layers) == 1
        assert lstm_layers[0].n_units == 16
        assert lstm_layers[0].activation == "elu"
        # Seven hidden dense layers plus the softmax head.
        assert [d.W.shape[1] for d in dense_layers] == [32, 96, 32, 16, 112, 48, 64, 3]
        assert len(dropouts) == 1 and dropouts[0].rate == pytest.approx(0.2)

    def test_expects_sequence_input(self, rng):
        model = build_lstm_classifier(rng=0)
        probs = model.predict_proba(rng.normal(size=(8, 5, 6)))
        assert probs.shape == (8, 3)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_compiled_with_adam_and_focal_loss(self):
        from repro.ml.losses import FocalLoss
        from repro.ml.optimizers import Adam

        model = build_lstm_classifier(training=TrainingConfig())
        assert isinstance(model.optimizer, Adam)
        assert model.optimizer.learning_rate == pytest.approx(0.003)
        assert isinstance(model.loss, FocalLoss)

    def test_deterministic_in_seed(self, rng):
        x = rng.normal(size=(4, 5, 6))
        a = build_lstm_classifier(rng=3).predict_proba(x)
        b = build_lstm_classifier(rng=3).predict_proba(x)
        np.testing.assert_allclose(a, b)

    def test_learns_a_sequence_pattern(self, rng):
        """The LSTM must learn a pattern defined by the sequence centre value."""
        n = 400
        X = rng.normal(size=(n, 5, 6))
        # Class depends on the centre step's first feature (like elevation).
        centre = X[:, 2, 0]
        y = np.digitize(centre, [-0.5, 0.5])
        cfg = LSTMConfig(dense_units=(16,), dropout=0.0)
        model = build_lstm_classifier(cfg, TrainingConfig(learning_rate=0.01), rng=1)
        model.fit(Dataset(X, y), epochs=12, batch_size=32, rng=2)
        acc = (model.predict(X) == y).mean()
        assert acc > 0.75


class TestMLPClassifier:
    def test_architecture_matches_paper(self):
        model = build_mlp_classifier(rng=0)
        dense_layers = [l for l in model.layers if isinstance(l, Dense)]
        assert [d.W.shape[1] for d in dense_layers] == [32, 3]
        assert dense_layers[0].W.shape[0] == 6

    def test_flat_feature_input(self, rng):
        model = build_mlp_classifier(rng=0)
        probs = model.predict_proba(rng.normal(size=(10, 6)))
        assert probs.shape == (10, 3)

    def test_learns_threshold_pattern(self, rng):
        n = 500
        X = rng.normal(size=(n, 6))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        model = build_mlp_classifier(
            MLPConfig(dropout=0.0), TrainingConfig(learning_rate=0.01), rng=4
        )
        model.fit(Dataset(X, y), epochs=20, batch_size=32, rng=5)
        assert (model.predict(X) == y).mean() > 0.85

    def test_class_weights_accepted(self):
        model = build_mlp_classifier(class_weights=np.array([1.0, 2.0, 3.0]))
        assert model.loss.alpha is not None

    def test_lstm_has_more_parameters_than_mlp(self):
        lstm = build_lstm_classifier(rng=0)
        mlp = build_mlp_classifier(rng=0)
        assert lstm.n_parameters > mlp.n_parameters
