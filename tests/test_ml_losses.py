"""Tests for the loss functions and their fused-softmax gradients."""

import numpy as np
import pytest

from repro.ml.layers import Softmax
from repro.ml.losses import CategoricalCrossEntropy, FocalLoss, class_balanced_alpha


def _random_problem(rng, n=8, k=3):
    logits = rng.normal(size=(n, k))
    probs = Softmax().forward(logits)
    labels = rng.integers(0, k, n)
    targets = np.zeros((n, k))
    targets[np.arange(n), labels] = 1.0
    return logits, probs, targets


def numerical_logit_gradient(loss_fn, logits, targets, eps=1e-6):
    grad = np.zeros_like(logits)
    softmax = Softmax()
    it = np.nditer(logits, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = logits[idx]
        logits[idx] = orig + eps
        f_plus = loss_fn(softmax.forward(logits), targets)
        logits[idx] = orig - eps
        f_minus = loss_fn(softmax.forward(logits), targets)
        logits[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestCategoricalCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        targets = np.eye(3)
        probs = np.clip(targets, 1e-7, 1.0)
        assert CategoricalCrossEntropy()(probs, targets) < 1e-5

    def test_uniform_prediction_loss_is_log_k(self):
        targets = np.eye(4)
        probs = np.full((4, 4), 0.25)
        assert CategoricalCrossEntropy()(probs, targets) == pytest.approx(np.log(4), abs=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = CategoricalCrossEntropy()
        logits, probs, targets = _random_problem(rng)
        analytic = loss.gradient(probs, targets)
        numeric = numerical_logit_gradient(loss, logits, targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_class_weights_scale_loss(self, rng):
        _, probs, targets = _random_problem(rng)
        unweighted = CategoricalCrossEntropy()(probs, targets)
        doubled = CategoricalCrossEntropy(class_weights=np.full(3, 2.0))(probs, targets)
        assert doubled == pytest.approx(2 * unweighted)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CategoricalCrossEntropy()(np.zeros((2, 3)), np.zeros((3, 3)))


class TestFocalLoss:
    def test_gamma_zero_equals_cross_entropy(self, rng):
        _, probs, targets = _random_problem(rng)
        focal = FocalLoss(gamma=0.0)(probs, targets)
        ce = CategoricalCrossEntropy()(probs, targets)
        assert focal == pytest.approx(ce, rel=1e-6)

    def test_down_weights_easy_examples(self):
        targets = np.array([[1.0, 0.0]])
        easy = np.array([[0.95, 0.05]])
        hard = np.array([[0.55, 0.45]])
        focal = FocalLoss(gamma=2.0)
        ce = CategoricalCrossEntropy()
        # The focal loss reduces the easy example's contribution much more
        # than the hard example's.
        assert focal(easy, targets) / ce(easy, targets) < focal(hard, targets) / ce(hard, targets)

    @pytest.mark.parametrize("gamma", [0.5, 1.0, 2.0])
    def test_gradient_matches_numerical(self, rng, gamma):
        loss = FocalLoss(gamma=gamma)
        logits, probs, targets = _random_problem(rng)
        analytic = loss.gradient(probs, targets)
        numeric = numerical_logit_gradient(loss, logits, targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_alpha_weights_gradient_matches_numerical(self, rng):
        alpha = np.array([0.5, 1.0, 2.0])
        loss = FocalLoss(gamma=2.0, alpha=alpha)
        logits, probs, targets = _random_problem(rng)
        analytic = loss.gradient(probs, targets)
        numeric = numerical_logit_gradient(loss, logits, targets)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            FocalLoss(gamma=-1.0)

    def test_wrong_alpha_length_rejected(self, rng):
        _, probs, targets = _random_problem(rng)
        with pytest.raises(ValueError):
            FocalLoss(alpha=np.ones(5))(probs, targets)


class TestClassBalancedAlpha:
    def test_rare_classes_get_higher_weight(self):
        labels = np.array([0] * 90 + [1] * 9 + [2] * 1)
        alpha = class_balanced_alpha(labels, 3)
        assert alpha[2] > alpha[1] > alpha[0]
        assert alpha.mean() == pytest.approx(1.0)

    def test_unlabeled_entries_ignored(self):
        labels = np.array([0, 0, 1, -1, -1])
        alpha = class_balanced_alpha(labels, 3)
        assert alpha.shape == (3,)
        assert np.all(np.isfinite(alpha))

    def test_missing_class_does_not_blow_up(self):
        labels = np.array([0, 0, 1, 1])
        alpha = class_balanced_alpha(labels, 3)
        assert np.all(np.isfinite(alpha))
        assert np.all(alpha > 0)
