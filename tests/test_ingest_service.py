"""Live ingest: dirty-tile-only rebuilds, targeted invalidation, SWR serving.

Two tiers of coverage:

* synthetic (fast): a ServeHandle over hand-built granules, asserting the
  sharp guarantees — only tiles overlapping the new granule's footprint are
  rebuilt, only their cache entries are invalidated, responses inside the
  rebuild window carry ``stale=True``, and the live pyramid stays
  byte-identical to a from-scratch build;
* end-to-end (one small campaign): ``runner.serve(...).with_router()
  .with_ingest()`` ingests a granule the original fleet never saw, with
  ``verify_merge=True`` cross-checking bit-identity against the batch
  mosaic, and the router serves the updated tiles without a restart.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.config import IngestConfig, RouterConfig, ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.serve import ServeHandle, TileRequest, build_pyramid
from repro.serve.catalog import ProductCatalog
from repro.serve.pyramid import tiles_for_cells

from tests.test_l3_merge import synthetic_granule

GRID = GridDefinition.from_extent(
    x_min_m=0.0, x_max_m=4_000.0, y_min_m=0.0, y_max_m=4_000.0, cell_size_m=250.0
)
SERVE = ServeConfig(tile_size=4)
FULL_BBOX = (0.0, 0.0, 4_000.0, 4_000.0)


def localized_granule(granule_id: str, rows: slice, cols: slice, seed: int = 0) -> Level3Grid:
    """A granule observing only the given block of base-grid cells."""
    rng = np.random.default_rng(seed)
    granule = synthetic_granule(granule_id, rng, grid=GRID, coverage=1.0)
    mask = np.zeros(GRID.shape, dtype=bool)
    mask[rows, cols] = True
    for name, layer in granule.variables.items():
        if layer.dtype.kind == "i":
            layer[~mask] = 0
        else:
            layer[~mask] = np.nan
    return granule


def seeded_handle(tmp_path, rows=slice(0, 16), cols=slice(0, 16), **ingest_kwargs):
    """A bare-engine handle over two synthetic granules, ingest attached."""
    granules = {
        gid: localized_granule(gid, rows, cols, seed=seed)
        for gid, seed in (("g000", 1), ("g001", 2))
    }
    seed_l3 = SimpleNamespace(mosaic=_batch(granules), granules=granules, fingerprint="seedfp")
    handle = ServeHandle(
        ProductCatalog(), serve=SERVE, products_dir=tmp_path, seed_l3=seed_l3
    )
    return handle.with_ingest(
        config=IngestConfig(verify_merge=True), **ingest_kwargs
    )


def _batch(granules: dict) -> Level3Grid:
    from repro.l3.processor import Level3Processor

    return Level3Processor(GRID).mosaic(list(granules.values()))


class TestDirtyTileRebuild:
    def test_only_overlapping_tiles_are_rebuilt(self, tmp_path):
        """The instrumented-builder guarantee: rebuilt == dirty footprint."""
        handle = seeded_handle(tmp_path)
        service = handle.ingest_service
        # New granule touches only the top-left 2x2 cell block.
        report = service.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))

        assert report.granule_id == "g002"
        assert report.n_dirty_cells == 4
        dirty = np.array([0, 1, GRID.shape[1], GRID.shape[1] + 1])
        expected = [
            (zoom, row, col)
            for zoom in range(service.builder.pyramid.n_levels)
            for row, col in tiles_for_cells(dirty, GRID.shape, zoom, SERVE.tile_size)
        ]
        assert list(report.rebuilt_tiles) == expected
        # One tile per level here — and the untouched zoom-0 tiles stay put.
        n_zoom0 = sum(1 for z, _, _ in report.rebuilt_tiles if z == 0)
        assert n_zoom0 == 1
        assert service.builder.revisions[(0, 0, 0)] == 1
        assert (0, 3, 3) not in service.builder.revisions

    def test_live_pyramid_matches_a_full_rebuild(self, tmp_path):
        handle = seeded_handle(tmp_path)
        service = handle.ingest_service
        service.ingest(localized_granule("g002", slice(3, 9), slice(5, 12), seed=3))
        service.ingest(localized_granule("g003", slice(10, 16), slice(0, 6), seed=4))

        snapshot = service.accumulator.snapshot()
        snapshot.metadata["fingerprint"] = service.key
        full = build_pyramid(snapshot, serve=SERVE)
        live = service.builder.pyramid
        assert live.n_levels == full.n_levels
        for level_live, level_full in zip(live.levels, full.levels):
            for name in level_full.variables:
                assert level_live.variables[name].tobytes() == level_full.variables[name].tobytes()
                assert level_live.weights[name].tobytes() == level_full.weights[name].tobytes()
            assert level_live.coverage.tobytes() == level_full.coverage.tobytes()

    def test_verify_merge_crosschecks_against_batch(self, tmp_path):
        """verify_merge recomputes the batch mosaic each ingest — and passes."""
        handle = seeded_handle(tmp_path)
        report = handle.ingest(localized_granule("g002", slice(2, 7), slice(2, 7), seed=9))
        assert report.n_granules == 3  # no RuntimeError: bytes matched


class TestTargetedInvalidation:
    def test_untouched_tiles_stay_cached_across_an_ingest(self, tmp_path):
        handle = seeded_handle(tmp_path)
        request = TileRequest(bbox=FULL_BBOX, variable="freeboard_mean", zoom=0)
        first = handle.query(request)
        assert not first.from_cache
        warm = handle.query(request)
        assert warm.from_cache

        report = handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        rebuilt_zoom0 = [t for t in report.rebuilt_tiles if t[0] == 0]
        assert report.n_invalidated > 0

        after = handle.query(request)
        # Exactly the invalidated tiles recompute; every other tile is warm.
        assert after.n_computed == len(rebuilt_zoom0)
        assert after.n_cached == after.n_tiles - len(rebuilt_zoom0)

    def test_rebuilt_tiles_advance_their_fingerprint_revision(self, tmp_path):
        handle = seeded_handle(tmp_path)
        request = TileRequest(bbox=FULL_BBOX, variable="freeboard_mean", zoom=0)
        before = handle.query(request).fingerprints
        assert all(fp.endswith("#r0") for fp in before.values())

        handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        after = handle.query(request).fingerprints
        assert after[(0, 0)] == before[(0, 0)].replace("#r0", "#r1")
        unchanged = [(r, c) for (r, c) in after if (r, c) != (0, 0)]
        assert unchanged
        assert all(after[rc] == before[rc] for rc in unchanged)


class TestStaleWhileRevalidate:
    def test_responses_in_the_rebuild_window_are_flagged_stale(self, tmp_path):
        observed = []

        def on_rebuild(service):
            response = service.handle.query(
                TileRequest(bbox=FULL_BBOX, variable="freeboard_mean", zoom=0)
            )
            observed.append(response.stale)

        handle = seeded_handle(tmp_path, on_rebuild=on_rebuild)
        before = handle.query(TileRequest(bbox=FULL_BBOX, variable="freeboard_mean", zoom=0))
        assert not before.stale

        handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        assert observed == [True]  # served mid-rebuild, old revision, flagged

        after = handle.query(TileRequest(bbox=FULL_BBOX, variable="freeboard_mean", zoom=0))
        assert not after.stale


class TestPublication:
    def test_live_mosaic_replaces_the_batch_entry_under_a_stable_key(self, tmp_path):
        handle = seeded_handle(tmp_path)
        service = handle.ingest_service
        mosaics = [e for e in handle.catalog.entries if e.kind == "mosaic"]
        assert [e.key for e in mosaics] == ["live:seedfp"]

        handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        mosaics = [e for e in handle.catalog.entries if e.kind == "mosaic"]
        assert [e.key for e in mosaics] == ["live:seedfp"]  # key stable across ingests
        assert set(mosaics[0].granule_ids) == {"g000", "g001", "g002"}
        assert service.n_ingested == 1

    def test_granule_products_are_appended_not_rescanned(self, tmp_path):
        handle = seeded_handle(tmp_path)
        handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        granule_entries = [e for e in handle.catalog.entries if e.kind == "granule"]
        assert {"g002"} == {gid for e in granule_entries for gid in e.granule_ids}
        assert (tmp_path / "g002.npz").is_file()
        assert (tmp_path / "g002.json").is_file()

    def test_write_granule_products_false_skips_the_granule_file(self, tmp_path):
        granules = {
            gid: localized_granule(gid, slice(0, 16), slice(0, 16), seed=seed)
            for gid, seed in (("g000", 1), ("g001", 2))
        }
        seed_l3 = SimpleNamespace(
            mosaic=_batch(granules), granules=granules, fingerprint="seedfp"
        )
        handle = ServeHandle(
            ProductCatalog(), serve=SERVE, products_dir=tmp_path, seed_l3=seed_l3
        ).with_ingest(config=IngestConfig(write_granule_products=False))
        report = handle.ingest(localized_granule("g002", slice(0, 2), slice(0, 2), seed=3))
        assert len(report.products) == 1
        assert not (tmp_path / "g002.npz").exists()

    def test_spec_ingest_without_gridder_raises(self, tmp_path):
        handle = seeded_handle(tmp_path)
        with pytest.raises(RuntimeError, match="gridder"):
            handle.ingest(object())


class TestEndToEndCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        from repro.campaign import CampaignConfig, CampaignRunner
        from repro.config import L3GridConfig
        from repro.surface.scene import SceneConfig
        from repro.workflow.end_to_end import ExperimentConfig

        base = ExperimentConfig(
            scene=SceneConfig(
                width_m=6_000.0,
                height_m=6_000.0,
                open_water_fraction=0.12,
                thin_ice_fraction=0.18,
                thick_ice_fraction=0.70,
                n_leads=8,
            ),
            epochs=2,
            model_kind="mlp",
            drift_m=(120.0, 180.0),
            l3=L3GridConfig(cell_size_m=1_000.0),
            serve=ServeConfig(tile_size=4, router=RouterConfig(n_shards=2)),
        )
        cache_dir = str(tmp_path_factory.mktemp("ingest-cache"))
        config = CampaignConfig(
            base=base, grid={"cloud_fraction": (0.1, 0.35)}, seed=33, cache_dir=cache_dir
        )
        # The "future" granule: same campaign, one more scenario point — its
        # spec is what arrives after the fleet is already serving.
        wider = CampaignConfig(
            base=base,
            grid={"cloud_fraction": (0.1, 0.35, 0.5)},
            seed=33,
            cache_dir=cache_dir,
        )
        runner = CampaignRunner(config)
        result = runner.run()
        return SimpleNamespace(
            runner=runner, result=result, new_spec=wider.expand()[2]
        )

    def test_router_serves_updated_tiles_without_restart(self, campaign, tmp_path):
        handle = (
            campaign.runner.serve(
                str(tmp_path / "products"), result=campaign.result
            )
            .with_router()
            .with_ingest(config=IngestConfig(verify_merge=True))
        )
        x0, y0, x1, y1 = handle.catalog.extent()
        request = TileRequest(bbox=(x0, y0, x1, y1), variable="freeboard_mean", zoom=0)

        before = handle.query(request)
        assert before.product == handle.ingest_service.key
        assert before.shard is not None  # served through the router

        report = handle.ingest(campaign.new_spec)
        assert report.granule_id == campaign.new_spec.granule_id
        assert report.n_granules == 3  # verify_merge passed: bytes == batch
        assert report.rebuilt_tiles

        after = handle.query(request)
        assert after.product == handle.ingest_service.key
        # Same serving stack, no restart — and the merged granule's footprint
        # changed the served payload.
        changed = any(
            not np.array_equal(after.tiles[rc], before.tiles[rc], equal_nan=True)
            for rc in after.tiles
        )
        assert changed
        assert {gid for e in handle.catalog.entries for gid in e.granule_ids} >= {
            report.granule_id
        }

    def test_second_ingest_of_same_granule_id_is_rejected(self, campaign, tmp_path):
        handle = campaign.runner.serve(
            str(tmp_path / "products2"), result=campaign.result
        ).with_ingest()
        handle.ingest(campaign.new_spec)
        with pytest.raises(ValueError, match="granule"):
            handle.ingest(campaign.new_spec)
