"""Tests for the 2 m fixed-window resampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resampling.window import resample_fixed_window


class TestResampleFixedWindow:
    def test_segment_spacing_is_window_length(self, segments):
        diffs = np.diff(segments.center_along_track_m)
        np.testing.assert_allclose(diffs, 2.0)

    def test_covers_beam_extent(self, beam, segments):
        assert segments.start_along_track_m[0] <= beam.along_track_m[0]
        assert segments.start_along_track_m[-1] + 2.0 >= beam.along_track_m[-1]

    def test_photon_counts_conserved(self, beam, segments):
        n_signal = int((beam.signal_conf >= 3).sum())
        assert int(segments.n_photons.sum()) == n_signal

    def test_heights_bracketed_by_min_max(self, segments):
        valid = segments.valid_mask()
        assert np.all(segments.height_min_m[valid] <= segments.height_mean_m[valid] + 1e-9)
        assert np.all(segments.height_mean_m[valid] <= segments.height_max_m[valid] + 1e-9)
        assert np.all(segments.height_min_m[valid] <= segments.height_median_m[valid] + 1e-9)

    def test_std_non_negative(self, segments):
        valid = segments.valid_mask()
        assert np.all(segments.height_std_m[valid] >= 0.0)

    def test_empty_segments_have_nan_stats_and_zero_counts(self, segments):
        empty = ~segments.valid_mask()
        if empty.any():
            assert np.all(np.isnan(segments.height_mean_m[empty]))
            assert np.all(segments.n_photons[empty] == 0)
            # but interpolated coordinates remain finite
            assert np.all(np.isfinite(segments.x_m[empty]))

    def test_against_bruteforce_reference(self, beam):
        """The vectorised grouped statistics must match a naive loop."""
        segments = resample_fixed_window(beam, window_length_m=10.0)
        signal = beam.select(beam.signal_conf >= 3)
        for i in np.random.default_rng(0).choice(segments.n_segments, 15, replace=False):
            lo = segments.start_along_track_m[i]
            hi = lo + 10.0
            mask = (signal.along_track_m >= lo) & (signal.along_track_m < hi)
            if mask.sum() == 0:
                assert segments.n_photons[i] == 0
                continue
            assert segments.n_photons[i] == mask.sum()
            assert segments.height_mean_m[i] == pytest.approx(signal.height_m[mask].mean())
            assert segments.height_median_m[i] == pytest.approx(np.median(signal.height_m[mask]))
            assert segments.height_std_m[i] == pytest.approx(signal.height_m[mask].std(), abs=1e-9)

    def test_window_length_affects_count(self, beam):
        fine = resample_fixed_window(beam, window_length_m=2.0)
        coarse = resample_fixed_window(beam, window_length_m=20.0)
        assert fine.n_segments > coarse.n_segments * 5

    def test_truth_class_majority(self, segments):
        valid = segments.valid_mask()
        assert np.all(segments.truth_class[valid] >= 0)

    def test_invalid_window_rejected(self, beam):
        with pytest.raises(ValueError):
            resample_fixed_window(beam, window_length_m=0.0)

    def test_empty_beam_rejected(self, beam):
        empty = beam.select(np.zeros(beam.n_photons, dtype=bool))
        with pytest.raises(ValueError):
            resample_fixed_window(empty)

    def test_select_subsets(self, segments):
        mask = segments.n_photons > 0
        subset = segments.select(mask)
        assert subset.n_segments == int(mask.sum())
        with pytest.raises(ValueError):
            segments.select(mask[:-1])

    def test_height_error_behaviour(self, segments):
        err = segments.height_error_m()
        valid = segments.valid_mask()
        assert np.all(err[valid] > 0.0)
        assert np.all(np.isnan(err[~valid]))
        # More photons -> smaller error, on average.
        many = segments.n_photons >= 8
        few = (segments.n_photons >= 1) & (segments.n_photons <= 2)
        if many.any() and few.any():
            assert np.nanmean(err[many]) < np.nanmean(err[few])

    @given(window=st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=10, deadline=None)
    def test_property_photon_conservation(self, beam, window):
        segments = resample_fixed_window(beam, window_length_m=window)
        assert int(segments.n_photons.sum()) == int((beam.signal_conf >= 3).sum())
