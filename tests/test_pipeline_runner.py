"""Execution tests for the graph runner: caching, partial recompute, executors."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import SeaSurfaceConfig
from repro.pipeline import (
    MISS,
    ArtifactStore,
    GraphRunner,
    StageCache,
    default_graph,
    external_artifact,
)
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

CONFIG = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    seed=13,
    drift_m=(120.0, 180.0),
)

TARGETS = (
    "experiment_data",
    "classifier",
    "classified",
    "freeboard",
    "atl07",
    "atl10",
    "granule_metrics",
)


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("stage-cache")


@pytest.fixture(scope="module")
def first_run(cache_root):
    runner = GraphRunner(default_graph(), cache=StageCache(cache_root))
    return runner.run(CONFIG, targets=TARGETS)


#: Stages that execute every run by design: pure assembly of cached inputs.
ASSEMBLY_STAGES = {"curate", "training_set"}


class TestCachedExecution:
    def test_cold_run_executes_every_required_stage(self, first_run):
        assert set(first_run.executed_stages) == {
            s.name for s in default_graph().required_stages(TARGETS)
        }
        assert first_run.cache_hits == ()
        # Every cacheable stage was a (stored) miss; assembly stages are
        # deliberately uncached and never counted.
        cacheable = [e for e in first_run.executions if e.cacheable]
        assert len(first_run.cache_misses) == len(cacheable)
        assert {e.stage for e in first_run.executions if not e.cacheable} == ASSEMBLY_STAGES

    def test_warm_rerun_is_pure_cache(self, cache_root, first_run):
        runner = GraphRunner(default_graph(), cache=StageCache(cache_root))
        second = runner.run(CONFIG, targets=TARGETS)
        # Only the uncached assembly stages re-run (cheaply, from cached
        # inputs); every computing stage is served from the cache and the
        # demand-driven runner never even probes undemanded intermediates.
        assert set(second.executed_stages) <= ASSEMBLY_STAGES
        assert second.cache_misses == ()
        assert set(second.cache_hits) <= set(first_run.cache_misses)
        for name in first_run.value("freeboard"):
            np.testing.assert_array_equal(
                first_run.value("freeboard")[name].freeboard_m,
                second.value("freeboard")[name].freeboard_m,
            )
        for a, b in zip(
            first_run.value("classifier").model.get_weights(),
            second.value("classifier").model.get_weights(),
        ):
            np.testing.assert_array_equal(a, b)

    def test_sea_surface_change_recomputes_only_downstream(self, cache_root, first_run):
        runner = GraphRunner(default_graph(), cache=StageCache(cache_root))
        changed = replace(CONFIG, sea_surface=SeaSurfaceConfig(method="average"))
        result = runner.run(changed, targets=TARGETS)
        downstream = {"sea_surface", "freeboard", "atl07", "atl10", "metrics"}
        assert {k.rsplit("-", 1)[0] for k in result.cache_misses} == downstream
        assert downstream <= set(result.executed_stages)
        assert set(result.executed_stages) <= downstream | ASSEMBLY_STAGES
        # Upstream artifacts are cache hits with unchanged fingerprints.
        assert result.artifacts["classifier"].from_cache
        assert (
            result.artifacts["classifier"].fingerprint
            == first_run.artifacts["classifier"].fingerprint
        )
        assert (
            result.artifacts["freeboard"].fingerprint
            != first_run.artifacts["freeboard"].fingerprint
        )

    def test_corrupt_stage_entry_is_recomputed(self, cache_root, first_run):
        # Corrupt a demanded bundle: the stage reads as a miss, demands its
        # (intact) inputs and recomputes the identical values.
        cache = StageCache(cache_root)
        execution = next(e for e in first_run.executions if e.stage == "freeboard")
        cache.store.path(execution.cache_key).write_bytes(b"garbage")
        runner = GraphRunner(default_graph(), cache=cache)
        result = runner.run(CONFIG, targets=TARGETS)
        assert "freeboard" in result.executed_stages
        assert set(result.executed_stages) <= {"freeboard"} | ASSEMBLY_STAGES
        for name in first_run.value("freeboard"):
            np.testing.assert_array_equal(
                first_run.value("freeboard")[name].freeboard_m,
                result.value("freeboard")[name].freeboard_m,
            )

    def test_uncached_runner_reports_no_cache_keys(self):
        result = GraphRunner(default_graph()).run(CONFIG, targets=("segments",))
        assert result.cache_hits == ()
        assert result.cache_misses == ()
        assert "resample" in result.executed_stages


class TestPrecomputedArtifacts:
    def test_injected_classifier_skips_training(self, first_run):
        runner = GraphRunner(default_graph())
        precomputed = {
            "granule": external_artifact("granule", first_run.value("experiment_data").granule),
            "segments": external_artifact("segments", first_run.value("experiment_data").segments),
            "classifier": external_artifact("classifier", first_run.value("classifier")),
        }
        result = runner.run(
            CONFIG, targets=("classified", "freeboard"), precomputed=precomputed
        )
        assert "train" not in result.executed_stages
        assert "scene" not in result.executed_stages
        for name in first_run.value("classified"):
            np.testing.assert_array_equal(
                first_run.value("classified")[name].labels,
                result.value("classified")[name].labels,
            )


class TestExecutorParity:
    def test_process_fan_out_matches_serial(self, first_run):
        config = replace(CONFIG, n_beams=2)
        serial = GraphRunner(default_graph()).run(config, targets=("freeboard",))
        process = GraphRunner(default_graph(), executor="process", n_workers=2).run(
            config, targets=("freeboard",)
        )
        assert sorted(serial.value("freeboard")) == sorted(process.value("freeboard"))
        for name in serial.value("freeboard"):
            np.testing.assert_array_equal(
                serial.value("freeboard")[name].freeboard_m,
                process.value("freeboard")[name].freeboard_m,
            )


class TestArtifactStoreSentinel:
    def test_cached_none_is_distinguishable_from_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, "ns")
        assert store.load("k", MISS) is MISS
        store.store("k", None)
        assert store.load("k", MISS) is None
        assert store.load("k") is None  # plain default stays None-compatible
