"""Tests for the coincident-pair catalogue (Table I)."""

from datetime import datetime, timedelta, timezone

import pytest

from repro.labeling.pairs import TABLE_I_PAIRS, CoincidentPair, find_coincident_pairs, table_i_rows


class TestTableIPairs:
    def test_eight_pairs(self):
        assert len(TABLE_I_PAIRS) == 8

    def test_all_pairs_within_two_hours(self):
        for pair in TABLE_I_PAIRS:
            assert pair.time_difference_minutes < 120.0

    def test_known_time_differences(self):
        # Spot-check against the paper's Table I values.
        assert TABLE_I_PAIRS[0].time_difference_minutes == pytest.approx(9.55, abs=0.1)
        assert TABLE_I_PAIRS[2].time_difference_minutes == pytest.approx(35.9, abs=0.1)
        assert TABLE_I_PAIRS[7].time_difference_minutes == pytest.approx(24.75, abs=0.1)

    def test_shift_vectors_match_direction(self):
        nw_pair = TABLE_I_PAIRS[0]  # 550 m NW
        dx, dy = nw_pair.shift_vector_m
        assert dx < 0 and dy > 0
        assert (dx**2 + dy**2) ** 0.5 == pytest.approx(550.0)
        zero_pair = TABLE_I_PAIRS[1]
        assert zero_pair.shift_vector_m == (0.0, 0.0)

    def test_drift_speed_plausible(self):
        # Sea ice drift of hundreds of metres over tens of minutes:
        # below ~1 km/h (17 m/min).
        for pair in TABLE_I_PAIRS:
            assert pair.implied_drift_speed_m_per_min < 60.0

    def test_invalid_pair_rejected(self):
        t = datetime(2019, 11, 3, tzinfo=timezone.utc)
        with pytest.raises(ValueError):
            CoincidentPair(1, t, t, -5.0, "N")
        with pytest.raises(ValueError):
            CoincidentPair(1, t, t, 100.0, "NNW")

    def test_table_rows_printable(self):
        rows = table_i_rows()
        assert len(rows) == 8
        assert rows[0]["shift_direction"] == "NW"
        assert rows[1]["shift_m"] == 0.0


class TestFindCoincidentPairs:
    def _times(self, *minutes):
        base = datetime(2019, 11, 4, 19, 0, 0, tzinfo=timezone.utc)
        return [base + timedelta(minutes=m) for m in minutes]

    def test_matches_nearest_within_window(self):
        is2 = self._times(0, 100, 300)
        s2 = self._times(10, 95, 500)
        matches = find_coincident_pairs(is2, s2, max_minutes=80)
        assert (0, 0, 10.0) in [(m[0], m[1], round(m[2], 1)) for m in matches]
        assert (1, 1, 5.0) in [(m[0], m[1], round(m[2], 1)) for m in matches]
        # The third IS2 pass has no S2 partner within 80 minutes.
        assert all(m[0] != 2 for m in matches)

    def test_empty_s2_archive(self):
        assert find_coincident_pairs(self._times(0, 1), [], max_minutes=80) == []

    def test_one_s2_can_serve_multiple_is2(self):
        is2 = self._times(0, 30)
        s2 = self._times(15)
        matches = find_coincident_pairs(is2, s2, max_minutes=80)
        assert len(matches) == 2
        assert all(m[1] == 0 for m in matches)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            find_coincident_pairs(self._times(0), self._times(1), max_minutes=0.0)

    def test_table_i_is_reproduced_by_the_matcher(self):
        is2 = [p.is2_time for p in TABLE_I_PAIRS]
        s2 = [p.s2_time for p in TABLE_I_PAIRS]
        matches = find_coincident_pairs(is2, s2, max_minutes=80)
        assert len(matches) == 8
        for i, j, dt in matches:
            assert i == j
            assert dt == pytest.approx(TABLE_I_PAIRS[i].time_difference_minutes, abs=0.05)
