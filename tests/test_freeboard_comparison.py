"""Tests for the ATL03-vs-baseline freeboard comparison utilities."""

import numpy as np
import pytest

from repro.freeboard.comparison import compare_freeboards, point_density
from repro.freeboard.freeboard import compute_freeboard
from repro.products.atl07 import generate_atl07
from repro.products.atl10 import generate_atl10


class TestPointDensity:
    def test_uniform_samples(self):
        along = np.arange(0.0, 10_000.0, 2.0)
        assert point_density(along) == pytest.approx(500.2, rel=0.01)

    def test_explicit_track_length(self):
        along = np.array([0.0, 100.0])
        assert point_density(along, track_length_m=1_000.0) == pytest.approx(2.0)

    def test_empty_input(self):
        assert point_density(np.array([])) == 0.0

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            point_density(np.array([0.0, 1.0]), track_length_m=0.0)


class TestCompareFreeboards:
    @pytest.fixture(scope="class")
    def comparison(self, segments, beam):
        atl03 = compute_freeboard(segments, segments.truth_class)
        atl07 = generate_atl07(beam)
        atl10 = generate_atl10(atl07)
        return compare_freeboards(
            atl03, atl10.along_track_m, atl10.freeboard_m, baseline_sea_surface_m=atl10.sea_surface_m
        ), atl03, atl10

    def test_atl03_product_is_denser(self, comparison):
        result, _, _ = comparison
        assert result.density_ratio > 5.0
        assert result.atl03_points_per_km > result.baseline_points_per_km

    def test_mean_freeboards_same_order_of_magnitude(self, comparison):
        result, _, _ = comparison
        assert 0.0 < result.baseline_mean_freeboard_m < 1.5
        assert 0.0 < result.atl03_mean_freeboard_m < 1.5
        # The fixture track is lead-poor, so the ATL07 baseline's diluted
        # open-water segments overestimate the sea surface and underestimate
        # freeboard relative to the 2 m product — the direction the paper
        # argues for.  Only the order of magnitude is asserted here; the
        # lead-rich benchmark scenes give much closer agreement.
        ratio = result.atl03_mean_freeboard_m / result.baseline_mean_freeboard_m
        assert 0.2 < ratio < 5.0
        assert result.atl03_mean_freeboard_m >= result.baseline_mean_freeboard_m

    def test_sea_surface_difference_bounded(self, comparison):
        """The paper reports ~0.1 m agreement on its lead-rich tracks; on this
        lead-poor fixture track the ATL07 dilution effect dominates, so only a
        coarse bound is asserted (the Fig. 8/9 benchmark checks the lead-rich
        case)."""
        result, _, _ = comparison
        assert result.sea_surface_mean_abs_difference_m < 0.6

    def test_as_dict_keys(self, comparison):
        result, _, _ = comparison
        d = result.as_dict()
        assert "density_ratio" in d and "atl03_mode_freeboard_m" in d

    def test_length_mismatch_rejected(self, comparison):
        _, atl03, atl10 = comparison
        with pytest.raises(ValueError):
            compare_freeboards(atl03, atl10.along_track_m, atl10.freeboard_m[:-1])

    def test_without_baseline_sea_surface(self, comparison):
        _, atl03, atl10 = comparison
        result = compare_freeboards(atl03, atl10.along_track_m, atl10.freeboard_m)
        assert np.isnan(result.sea_surface_mean_abs_difference_m)
