"""Tests for the ATL03 photon containers."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.atl03.granule import BeamData, Granule


def _make_beam(n=20, name="gt1r"):
    along = np.linspace(0.0, 100.0, n)
    return BeamData(
        name=name,
        along_track_m=along,
        height_m=np.linspace(0.0, 1.0, n),
        lat_deg=np.full(n, -75.0),
        lon_deg=np.full(n, -170.0),
        x_m=np.linspace(0.0, 100.0, n),
        y_m=np.zeros(n),
        delta_time_s=along / 7000.0,
        signal_conf=np.full(n, 4, dtype=np.int8),
        is_signal=np.ones(n, dtype=bool),
        background_rate_hz=np.full(n, 1e5),
    )


class TestBeamData:
    def test_basic_properties(self):
        beam = _make_beam(20)
        assert beam.n_photons == 20
        assert beam.length_m == pytest.approx(100.0)
        assert beam.truth_class.shape == (20,)
        assert np.all(beam.truth_class == -1)

    def test_rejects_unsorted_photons(self):
        beam_kwargs = _make_beam(5).as_dict()
        beam_kwargs["along_track_m"] = beam_kwargs["along_track_m"][::-1].copy()
        with pytest.raises(ValueError, match="sorted"):
            BeamData(name="gt1r", **beam_kwargs)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            BeamData(
                name="gt1r",
                along_track_m=np.arange(3, dtype=float),
                height_m=np.zeros(4),
                lat_deg=np.zeros(3),
                lon_deg=np.zeros(3),
                x_m=np.zeros(3),
                y_m=np.zeros(3),
                delta_time_s=np.zeros(3),
                signal_conf=np.zeros(3, dtype=np.int8),
                is_signal=np.zeros(3, dtype=bool),
                background_rate_hz=np.zeros(3),
            )

    def test_select_subsets_all_fields(self):
        beam = _make_beam(10)
        mask = np.zeros(10, dtype=bool)
        mask[2:5] = True
        sub = beam.select(mask)
        assert sub.n_photons == 3
        np.testing.assert_array_equal(sub.along_track_m, beam.along_track_m[2:5])
        np.testing.assert_array_equal(sub.truth_class, beam.truth_class[2:5])

    def test_select_rejects_bad_mask(self):
        beam = _make_beam(10)
        with pytest.raises(ValueError):
            beam.select(np.ones(5, dtype=bool))
        with pytest.raises(ValueError):
            beam.select(np.ones(10, dtype=int))

    def test_slice_along_track(self):
        beam = _make_beam(101)
        sub = beam.slice_along_track(10.0, 20.0)
        assert np.all(sub.along_track_m >= 10.0)
        assert np.all(sub.along_track_m < 20.0)
        with pytest.raises(ValueError):
            beam.slice_along_track(20.0, 10.0)

    def test_signal_only_filters_by_confidence(self):
        beam = _make_beam(10)
        beam.signal_conf[:5] = 0
        sub = beam.signal_only(min_confidence=3)
        assert sub.n_photons == 5

    def test_arrays_are_contiguous(self, beam):
        assert beam.height_m.flags["C_CONTIGUOUS"]
        assert beam.along_track_m.flags["C_CONTIGUOUS"]


class TestGranule:
    def test_construction_and_lookup(self):
        beams = {"gt1r": _make_beam(10, "gt1r"), "gt2r": _make_beam(5, "gt2r")}
        granule = Granule("G1", datetime(2019, 11, 4, tzinfo=timezone.utc), beams)
        assert granule.n_photons == 15
        assert granule.beam_names == ("gt1r", "gt2r")
        assert granule.beam("gt2r").n_photons == 5

    def test_missing_beam_raises_keyerror_with_available(self):
        granule = Granule("G1", datetime(2019, 11, 4, tzinfo=timezone.utc), {"gt1r": _make_beam(3)})
        with pytest.raises(KeyError, match="gt1r"):
            granule.beam("gt3r")

    def test_empty_granule_rejected(self):
        with pytest.raises(ValueError):
            Granule("G1", datetime(2019, 11, 4, tzinfo=timezone.utc), {})

    def test_beam_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Granule(
                "G1",
                datetime(2019, 11, 4, tzinfo=timezone.utc),
                {"gt2r": _make_beam(3, "gt1r")},
            )

    def test_naive_datetime_becomes_utc(self):
        granule = Granule("G1", datetime(2019, 11, 4), {"gt1r": _make_beam(3)})
        assert granule.acquisition_time.tzinfo is not None
