"""The traffic simulator: Zipf mix, determinism, the scaling report."""

import numpy as np
import pytest

from repro.config import ServeConfig
from repro.distributed.cluster import ClusterCostModel
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.serve.catalog import ProductCatalog
from repro.serve.query import ProductLoader, QueryEngine
from repro.serve.traffic import (
    TrafficConfig,
    TrafficSimulator,
    scaling_rows,
)

SERVE = ServeConfig(tile_size=8, tile_cache_size=128)


@pytest.fixture()
def engine(tmp_path):
    rng = np.random.default_rng(0)
    grid = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=48, ny=32)
    n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
    product = Level3Grid(
        grid=grid,
        variables={
            "n_segments": n_seg,
            "freeboard_mean": np.where(n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan),
            "thickness_mean": np.where(n_seg > 0, rng.normal(2.4, 0.8, grid.shape), np.nan),
        },
        metadata={"kind": "mosaic", "granule_ids": ["g000"], "fingerprint": "fp-m"},
    )
    write_level3(product, tmp_path / "mosaic")
    catalog = ProductCatalog()
    catalog.scan(tmp_path)
    return QueryEngine(catalog, loader=ProductLoader(SERVE), serve=SERVE)


class ConstantServiceEngine:
    """An engine stub whose every batch takes exactly ``service_s``.

    Duck-types the slice of :class:`QueryEngine` the simulator uses
    (``catalog``, ``stats``, ``query_batch``), so the queue-wait/service
    split can be asserted arithmetically instead of against wall time.
    """

    def __init__(self, catalog, service_s: float) -> None:
        from repro.serve.query import QueryStats, TileResponse

        self.catalog = catalog
        self.service_s = service_s
        self.stats = QueryStats()
        self._response_cls = TileResponse

    def query_batch(self, requests):
        self.stats.requests += len(requests)
        self.stats.batches += 1
        self.stats.seconds += self.service_s
        return [
            self._response_cls(
                request=request,
                product="stub",
                zoom=request.zoom,
                tiles={},
                n_cached=0,
                n_computed=1,
                seconds=self.service_s,
            )
            for request in requests
        ]


class TestLatencySplit:
    """Closed-loop queue wait must be separated from service time.

    Request k of batch b waited for batches ``0..b-1`` (queue) and then
    took its own batch's execution (service); reporting their sum alone
    would hide queueing collapse behind a flat number.
    """

    def test_split_on_a_constant_service_engine(self, engine):
        service_s = 0.25
        stub = ConstantServiceEngine(engine.catalog, service_s)
        config = TrafficConfig(n_requests=20, batch_size=5, n_regions=3, seed=21)
        result = TrafficSimulator(stub, config).run()

        batches = np.repeat(np.arange(4), 5)  # 20 requests in 4 batches
        np.testing.assert_allclose(result.queue_wait_s, batches * service_s)
        np.testing.assert_allclose(result.service_s, np.full(20, service_s))
        np.testing.assert_allclose(result.latencies_s, (batches + 1) * service_s)
        assert result.seconds == pytest.approx(4 * service_s)

        assert result.queue_wait_ms() == pytest.approx(1.5 * service_s * 1e3)
        assert result.service_ms() == pytest.approx(service_s * 1e3)
        assert result.latency_ms() == pytest.approx(2.5 * service_s * 1e3)
        # P95 of queue wait: the last batch waited 3 service times.
        assert result.queue_wait_ms(95.0) == pytest.approx(3 * service_s * 1e3)

        row = result.summary_row()
        assert row["Mean Queue Wait (ms)"] == pytest.approx(375.0)
        assert row["Mean Service (ms)"] == pytest.approx(250.0)
        assert row["Mean Latency (ms)"] == pytest.approx(625.0)

    def test_split_sums_to_latency_on_the_real_engine(self, engine):
        config = TrafficConfig(n_requests=30, batch_size=6, n_regions=3, seed=22)
        result = TrafficSimulator(engine, config).run()
        assert result.queue_wait_s.shape == (30,)
        assert result.service_s.shape == (30,)
        np.testing.assert_allclose(
            result.latencies_s, result.queue_wait_s + result.service_s
        )
        # Queue wait is monotone in batch order and zero for the first batch.
        assert result.queue_wait_s[0] == 0.0
        assert np.all(np.diff(result.queue_wait_s) >= 0)


class TestConstruction:
    def test_requires_an_engine_or_a_catalog(self):
        with pytest.raises(ValueError, match="engine or a catalog"):
            TrafficSimulator()

    def test_catalog_only_simulator_generates_streams(self, engine):
        simulator = TrafficSimulator(
            catalog=engine.catalog, config=TrafficConfig(n_requests=10, seed=3)
        )
        assert simulator.engine is None
        assert len(simulator.generate()) == 10

    def test_chunked_stream_covers_the_same_requests(self, engine):
        simulator = TrafficSimulator(
            engine, TrafficConfig(n_requests=64, n_regions=4, seed=14)
        )
        chunks = list(simulator._stream_chunks(64, 16))
        assert [len(chunk) for chunk in chunks] == [16, 16, 16, 16]
        assert sum(len(c) for c in simulator._stream_chunks(10, 4)) == 10


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_requests=0),
            dict(batch_size=0),
            dict(n_regions=0),
            dict(zipf_exponent=0.0),
            dict(region_fraction=0.0),
            dict(region_fraction=1.5),
            dict(variables=()),
            dict(variables=("a", "b"), variable_weights=(1.0,)),
            dict(variable_weights=(0.0,)),
            dict(zoom_levels=()),
            dict(zoom_levels=(-1,)),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TrafficConfig(**kwargs)


class TestGeneration:
    def test_stream_is_deterministic(self, engine):
        config = TrafficConfig(n_requests=50, n_regions=5, seed=11)
        a = TrafficSimulator(engine, config).generate()
        b = TrafficSimulator(engine, config).generate()
        assert a == b

    def test_zipf_head_dominates(self, engine):
        config = TrafficConfig(
            n_requests=300, n_regions=8, zipf_exponent=1.4, seed=2
        )
        simulator = TrafficSimulator(engine, config)
        boxes = simulator.regions()
        counts = {box: 0 for box in boxes}
        for request in simulator.generate():
            counts[request.bbox] += 1
        ranked = [counts[box] for box in boxes]
        assert ranked[0] == max(ranked)
        assert ranked[0] > 3 * min(ranked)

    def test_requests_respect_the_mix(self, engine):
        config = TrafficConfig(
            n_requests=100,
            variables=("freeboard_mean", "thickness_mean"),
            variable_weights=(1.0, 0.0),
            zoom_levels=(2,),
            seed=4,
        )
        for request in TrafficSimulator(engine, config).generate():
            assert request.variable == "freeboard_mean"
            assert request.zoom == 2

    def test_regions_fit_catalog_extent(self, engine):
        simulator = TrafficSimulator(engine, TrafficConfig(n_regions=16, seed=5))
        x0, y0, x1, y1 = engine.catalog.extent()
        for bx0, by0, bx1, by1 in simulator.regions():
            assert bx0 >= x0 and by0 >= y0
            assert bx1 <= x1 + 1e-9 and by1 <= y1 + 1e-9


class TestRunAndReport:
    def test_run_measures_and_caches(self, engine):
        config = TrafficConfig(
            n_requests=60, batch_size=10, n_regions=4, zoom_levels=(0, 1), seed=6
        )
        result = TrafficSimulator(engine, config).run()
        assert result.n_requests == 60
        assert result.latencies_s.shape == (60,)
        assert result.seconds > 0
        assert result.throughput_rps > 0
        # The Zipf head must be hitting the tile cache.
        assert result.stats.hit_rate > 0.3
        # One mosaic: however heavy the traffic, few decodes.
        assert result.stats.loads <= 4
        assert sum(result.region_counts.values()) == 60
        row = result.summary_row()
        assert row["Requests"] == 60
        assert row["Product Loads"] == result.stats.loads

    def test_stats_are_a_per_run_snapshot(self, engine):
        from repro.serve.query import TileRequest

        # Traffic served before the run must not leak into the run's report,
        # and a later run must not mutate an earlier result retroactively.
        engine.query(TileRequest(bbox=(0.0, 0.0, 900.0, 900.0)))
        loads_before_run = engine.stats.loads
        simulator = TrafficSimulator(
            engine, TrafficConfig(n_requests=20, batch_size=5, n_regions=2, seed=12)
        )
        first = simulator.run()
        assert first.stats.requests == 20  # not 21
        frozen = (first.stats.tile_hits, first.stats.loads)
        second = simulator.run()
        assert (first.stats.tile_hits, first.stats.loads) == frozen
        assert second.stats.requests == 20
        assert first.stats.loads + loads_before_run <= engine.stats.loads

    def test_scaling_rows_follow_cost_model(self, engine):
        config = TrafficConfig(n_requests=30, batch_size=6, n_regions=3, seed=7)
        result = TrafficSimulator(engine, config).run()
        model = ClusterCostModel(map_overhead_s=0.0)
        rows = scaling_rows(result, cost_model=model, executor_counts=(1, 2, 4))
        assert [row["Executors"] for row in rows] == [1, 2, 4]
        assert rows[0]["Speedup"] == 1.0
        # With zero overhead and no serial fraction the speedup is superlinear
        # in slots only through the bandwidth term; it must be monotone.
        speedups = [row["Speedup"] for row in rows]
        assert speedups == sorted(speedups)
        assert rows[-1]["Throughput (req/s)"] >= rows[0]["Throughput (req/s)"]

    def test_scaling_report_runs_if_needed(self, engine):
        simulator = TrafficSimulator(
            engine, TrafficConfig(n_requests=10, batch_size=5, n_regions=2, seed=8)
        )
        rows = simulator.scaling_report(executor_counts=(1, 2))
        assert len(rows) == 2

    def test_empty_executor_counts_rejected(self, engine):
        simulator = TrafficSimulator(
            engine, TrafficConfig(n_requests=5, batch_size=5, n_regions=2, seed=9)
        )
        result = simulator.run()
        with pytest.raises(ValueError, match="executor_counts"):
            scaling_rows(result, executor_counts=())

    def test_evaluation_tables_wrap_results(self, engine):
        from repro.evaluation import format_table, serve_latency_table, serve_scaling_table

        result = TrafficSimulator(
            engine, TrafficConfig(n_requests=12, batch_size=6, n_regions=2, seed=10)
        ).run()
        latency = serve_latency_table(result)
        scaling = serve_scaling_table(result, executor_counts=(1, 2))
        assert len(latency) == 1 and len(scaling) == 2
        text = format_table(latency, title="serving")
        assert "Throughput" in text
