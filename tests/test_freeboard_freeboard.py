"""Tests for the freeboard computation over classified segments."""

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER, SeaSurfaceConfig
from repro.freeboard.freeboard import compute_freeboard


class TestComputeFreeboard:
    @pytest.fixture(scope="class")
    def result(self, segments):
        return compute_freeboard(segments, segments.truth_class)

    def test_one_freeboard_per_segment(self, result, segments):
        assert result.n_segments == segments.n_segments
        assert result.freeboard_m.shape == (segments.n_segments,)

    def test_open_water_has_zero_freeboard(self, result):
        water = result.labels == CLASS_OPEN_WATER
        assert np.all(result.freeboard_m[water] == 0.0)

    def test_freeboards_non_negative_when_clipped(self, result):
        finite = np.isfinite(result.freeboard_m)
        assert np.all(result.freeboard_m[finite] >= 0.0)

    def test_unclipped_freeboards_can_be_negative(self, segments):
        result = compute_freeboard(segments, segments.truth_class, clip_negative=False)
        finite = np.isfinite(result.freeboard_m)
        # Noise makes at least a few ice segments dip below the reference.
        assert result.freeboard_m[finite].min() < 0.05

    def test_freeboard_close_to_truth(self, result, segments, scene):
        """The retrieved freeboard should track the scene's true freeboard."""
        truth = scene.freeboard(segments.x_m, segments.y_m)
        ice = result.ice_mask()
        error = result.freeboard_m[ice] - truth[ice]
        # Mean bias within ~25 cm and correlation with the truth.
        assert abs(np.nanmean(error)) < 0.3
        valid = np.isfinite(error)
        corr = np.corrcoef(result.freeboard_m[ice][valid], truth[ice][valid])[0, 1]
        assert corr > 0.5

    def test_sea_surface_close_to_truth(self, result, segments, scene):
        truth_sl = scene.sea_level(segments.x_m, segments.y_m)
        mae = np.nanmean(np.abs(result.sea_surface_m - truth_sl))
        assert mae < 0.3

    def test_mean_freeboard_in_physical_range(self, result):
        assert 0.0 < result.mean_freeboard_m() < 1.5

    def test_distribution_normalised(self, result):
        centres, density = result.distribution(bin_width_m=0.05)
        assert density.sum() == pytest.approx(1.0, abs=1e-6)
        assert centres.shape == density.shape

    def test_distribution_invalid_bins_rejected(self, result):
        with pytest.raises(ValueError):
            result.distribution(bin_width_m=0.0)

    def test_all_four_methods_supported(self, segments):
        for method in ("minimum", "average", "nearest_minimum", "nasa"):
            result = compute_freeboard(segments, segments.truth_class, method=method)
            assert np.isfinite(result.freeboard_m[result.ice_mask()]).all()

    def test_minimum_method_gives_higher_freeboard_than_average(self, segments):
        """The minimum-elevation sea surface sits lower, inflating freeboard —
        the behaviour the paper's Fig. 8 comparison illustrates."""
        fb_min = compute_freeboard(segments, segments.truth_class, method="minimum")
        fb_avg = compute_freeboard(segments, segments.truth_class, method="average")
        assert fb_min.mean_freeboard_m() >= fb_avg.mean_freeboard_m() - 1e-6

    def test_label_length_mismatch_rejected(self, segments):
        with pytest.raises(ValueError):
            compute_freeboard(segments, segments.truth_class[:-1])

    def test_custom_window_config(self, segments):
        config = SeaSurfaceConfig(window_length_m=4_000.0, window_overlap_m=2_000.0)
        result = compute_freeboard(segments, segments.truth_class, config=config)
        assert result.sea_surface.n_windows > 1
