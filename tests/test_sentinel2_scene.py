"""Tests for the Sentinel-2 scene renderer."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.sentinel2.cloud import CloudConfig
from repro.sentinel2.scene import BAND_NAMES, S2Image, S2SceneConfig, render_scene


class TestRenderScene:
    def test_band_stack_shape_and_range(self, s2_image, scene):
        assert s2_image.bands.shape == (4, scene.config.ny, scene.config.nx)
        assert s2_image.bands.min() >= 0.0
        assert s2_image.bands.max() <= 1.0

    def test_thick_ice_brighter_than_water(self, s2_image, scene):
        brightness = s2_image.bands[:3].mean(axis=0)
        thick = scene.class_map == CLASS_THICK_ICE
        water = scene.class_map == CLASS_OPEN_WATER
        assert brightness[thick].mean() > brightness[water].mean() + 0.3

    def test_thin_ice_intermediate(self, s2_image, scene):
        brightness = s2_image.bands[:3].mean(axis=0)
        thick = brightness[scene.class_map == CLASS_THICK_ICE].mean()
        thin = brightness[scene.class_map == CLASS_THIN_ICE].mean()
        water = brightness[scene.class_map == CLASS_OPEN_WATER].mean()
        assert water < thin < thick

    def test_deterministic_in_seed(self, scene):
        a = render_scene(scene, config=S2SceneConfig(seed=4), rng=4)
        b = render_scene(scene, config=S2SceneConfig(seed=4), rng=4)
        np.testing.assert_array_equal(a.bands, b.bands)

    def test_drift_offsets_georeferencing_only(self, scene):
        plain = render_scene(scene, drift_offset_m=(0.0, 0.0), rng=9)
        drifted = render_scene(scene, drift_offset_m=(200.0, -100.0), rng=9)
        np.testing.assert_array_equal(plain.bands, drifted.bands)
        assert drifted.origin_x_m - plain.origin_x_m == pytest.approx(200.0)
        assert drifted.origin_y_m - plain.origin_y_m == pytest.approx(-100.0)

    def test_cloud_free_configuration(self, scene):
        cfg = S2SceneConfig(cloud=CloudConfig(thin_cloud_fraction=0.0, shadow_fraction=0.0))
        image = render_scene(scene, config=cfg, rng=2)
        assert image.cloud_optical_depth.max() == 0.0
        assert not image.shadow_mask.any()


class TestS2Image:
    def test_band_lookup_by_name(self, s2_image):
        for i, name in enumerate(BAND_NAMES):
            np.testing.assert_array_equal(s2_image.band(name), s2_image.bands[i])

    def test_unknown_band_rejected(self, s2_image):
        with pytest.raises(KeyError):
            s2_image.band("B12")

    def test_pixel_index_round_trip(self, s2_image):
        # The centre of pixel (row=3, col=8) maps back to (3, 8).
        x = s2_image.origin_x_m + (8 + 0.5) * s2_image.pixel_size_m
        y = s2_image.origin_y_m + (3 + 0.5) * s2_image.pixel_size_m
        row, col = s2_image.pixel_index(np.array([x]), np.array([y]))
        assert row[0] == 3 and col[0] == 8

    def test_contains(self, s2_image):
        ny, nx = s2_image.shape
        x_inside = s2_image.origin_x_m + 0.5 * nx * s2_image.pixel_size_m
        y_inside = s2_image.origin_y_m + 0.5 * ny * s2_image.pixel_size_m
        assert bool(s2_image.contains(np.array([x_inside]), np.array([y_inside]))[0])
        assert not bool(s2_image.contains(np.array([s2_image.origin_x_m - 1.0]), np.array([y_inside]))[0])

    def test_shifted_preserves_pixels(self, s2_image):
        moved = s2_image.shifted(55.0, -20.0)
        assert moved.origin_x_m == pytest.approx(s2_image.origin_x_m + 55.0)
        assert moved.origin_y_m == pytest.approx(s2_image.origin_y_m - 20.0)
        np.testing.assert_array_equal(moved.bands, s2_image.bands)

    def test_invalid_band_stack_rejected(self):
        with pytest.raises(ValueError):
            S2Image(
                bands=np.zeros((3, 4, 4)),
                origin_x_m=0.0,
                origin_y_m=0.0,
                pixel_size_m=10.0,
                acquisition_time=datetime(2019, 11, 4, tzinfo=timezone.utc),
                cloud_optical_depth=np.zeros((4, 4)),
                shadow_mask=np.zeros((4, 4), dtype=bool),
                truth_class_map=np.zeros((4, 4), dtype=np.int8),
            )
