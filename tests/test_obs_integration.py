"""Cross-tier telemetry integration: the E2E trace, stats survival, spans.

The acceptance-critical scenario lives here: one request traced from
router admission through the shard engine down to the tile loader, with
*exact* durations under the virtual clock, exportable as a Chrome trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RouterConfig, ServeConfig
from repro.distributed.mapreduce import MapReduceEngine
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.l3.writer import write_level3
from repro.obs.core import Obs
from repro.obs.export import chrome_trace
from repro.pipeline.cache import StageCache
from repro.pipeline.runner import GraphRunner
from repro.serve.catalog import ProductCatalog
from repro.serve.clock import VirtualClock
from repro.serve.query import ProductLoader, QueryEngine, TileRequest
from repro.serve.router import RequestRouter
from repro.serve.shard import ShardedCatalog
from repro.utils.timing import TimingRecord, timed

SERVE = ServeConfig(tile_size=8, tile_cache_size=64)


def write_product(path, fingerprint="fp-m", nx=40, ny=24, seed=0):
    rng = np.random.default_rng(seed)
    grid = GridDefinition(x_min_m=0.0, y_min_m=0.0, cell_size_m=100.0, nx=nx, ny=ny)
    n_seg = rng.integers(0, 4, grid.shape).astype(np.int64)
    layers = {
        "n_segments": n_seg,
        "freeboard_mean": np.where(n_seg > 0, rng.normal(0.3, 0.1, grid.shape), np.nan),
    }
    write_level3(
        Level3Grid(
            grid=grid,
            variables=layers,
            metadata={"kind": "mosaic", "fingerprint": fingerprint, "granule_ids": ["g000"]},
        ),
        path,
        format="npz",
    )


class TickingLoader(ProductLoader):
    """A loader whose decode costs an exact amount of *virtual* time."""

    def __init__(self, serve, clock, decode_s):
        super().__init__(serve)
        self.clock = clock
        self.decode_s = decode_s

    def decode(self, entry):
        self.clock.tick(self.decode_s)
        return super().decode(entry)


def ancestors(span, by_id):
    chain = []
    while span.parent_id is not None:
        span = by_id[span.parent_id]
        chain.append(span)
    return chain


REQUEST = TileRequest(bbox=(0.0, 0.0, 1500.0, 1500.0), variable="freeboard_mean")


class TestEndToEndTrace:
    @pytest.fixture()
    def stack(self, tmp_path):
        write_product(tmp_path / "mosaic")
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        clock = VirtualClock()
        obs = Obs(clock=clock)
        router = RequestRouter(
            ShardedCatalog.from_catalog(catalog, 2),
            serve=SERVE,
            config=RouterConfig(n_shards=2),
            loader_factory=lambda index: TickingLoader(SERVE, clock, 0.004),
            clock=clock,
            obs=obs,
        )
        return clock, obs, router

    def test_request_traces_router_to_engine_to_loader(self, stack):
        clock, obs, router = stack
        response = router.serve([REQUEST])[0]
        assert response.n_computed > 0

        spans = obs.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        (root,) = obs.tracer.spans("router.request")
        (batch,) = obs.tracer.spans("engine.query_batch")
        (fetch,) = obs.tracer.spans("loader.fetch")

        # One trace, rooted at the router.
        assert root.parent_id is None
        assert {s.trace_id for s in (root, batch, fetch)} == {root.trace_id}
        assert batch.parent_id == root.span_id
        assert root in ancestors(fetch, by_id)
        assert batch in ancestors(fetch, by_id)

        # Exact virtual-clock durations: the only time that passes is the
        # loader's 4 ms decode tick.
        assert fetch.duration == 0.004
        assert batch.duration == 0.004
        assert root.duration == 0.004

        # Span attributes carry the routing outcome.
        assert root.attributes["outcome"] == "served"
        assert root.attributes["coalesced"] is False
        assert batch.attributes["n_computed"] == response.n_computed
        assert fetch.attributes["windowed"] is False

    def test_cached_repeat_skips_the_loader_span(self, stack):
        clock, obs, router = stack
        router.serve([REQUEST])
        obs.tracer.clear()
        response = router.serve([REQUEST])[0]
        assert response.from_cache
        assert obs.tracer.spans("loader.fetch") == ()
        (root,) = obs.tracer.spans("router.request")
        assert root.duration == 0.0  # no decode, no virtual time

    def test_trace_exports_to_chrome_format(self, stack):
        clock, obs, router = stack
        router.serve([REQUEST])
        (root,) = obs.tracer.spans("router.request")
        doc = chrome_trace(obs.tracer.spans())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"router.request", "engine.query_batch", "loader.fetch"} <= names
        by_name = {e["name"]: e for e in events}
        assert by_name["router.request"]["dur"] == pytest.approx(4000.0)
        # All three render on the same trace track.
        assert len({by_name[n]["tid"] for n in names}) == 1
        assert by_name["engine.query_batch"]["args"]["parent_id"] == root.span_id


class TestStatsSurvival:
    def test_engine_stats_survive_shard_rebuild(self, tmp_path):
        """The QueryStats-loss fix: a quarantine-style engine rebuild keeps
        the shard's cumulative counters (they live in the registry, keyed by
        {router, shard}, not on the engine instance)."""
        write_product(tmp_path / "mosaic")
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        clock = VirtualClock()
        obs = Obs(clock=clock)
        router = RequestRouter(
            ShardedCatalog.from_catalog(catalog, 2),
            serve=SERVE,
            config=RouterConfig(n_shards=2),
            clock=clock,
            obs=obs,
        )
        router.serve([REQUEST, REQUEST])
        shard_id = router.catalog.shard_of("fp-m")
        shard = router.shards[shard_id]
        shard.errors = 3
        shard.quarantined = True
        before = shard.engine.stats
        assert before.requests == 2
        old_engine = shard.engine

        rebuilt = router.rebuild_shard(shard_id)
        assert rebuilt.engine is not old_engine
        assert not rebuilt.quarantined and rebuilt.errors == 0
        # The new engine re-attached to the same counter series.
        assert rebuilt.engine.stats == before

        router.serve([REQUEST])
        after = rebuilt.engine.stats
        assert after.requests == 3
        assert after.batches == before.batches + 1
        # Router-level counters kept counting across the rebuild too.
        assert router.stats.requests == 3

    def test_independent_engines_do_not_share_counters(self, tmp_path):
        write_product(tmp_path / "mosaic")
        catalog = ProductCatalog()
        catalog.scan(tmp_path)
        obs = Obs()
        a = QueryEngine(catalog, serve=SERVE, obs=obs)
        b = QueryEngine(catalog, serve=SERVE, obs=obs)
        a.query(REQUEST)
        assert a.stats.requests == 1
        assert b.stats.requests == 0


class TestPipelineAndMapReduceSpans:
    def test_graph_runner_emits_stage_spans_and_counters(self, tmp_path):
        from repro.pipeline import ArtifactSpec, Stage, StageGraph

        graph = StageGraph(
            [Stage("make_x", lambda ctx, **inputs: {"x": 41}, (), ("x",))],
            [ArtifactSpec("x", int)],
        )
        obs = Obs()
        runner = GraphRunner(graph, cache=StageCache(str(tmp_path)), obs=obs)
        runner.run(None, targets=("x",))
        (span,) = obs.tracer.spans("pipeline.stage")
        assert span.attributes["stage"] == "make_x"
        assert obs.registry.value(
            "pipeline_stage_runs_total", stage="make_x", cache="miss"
        ) == 1
        # Warm run: cache hit, no new compute span.
        GraphRunner(graph, cache=StageCache(str(tmp_path)), obs=obs).run(
            None, targets=("x",)
        )
        assert len(obs.tracer.spans("pipeline.stage")) == 1
        assert obs.registry.value(
            "pipeline_stage_runs_total", stage="make_x", cache="hit"
        ) == 1

    def test_mapreduce_thread_tasks_merge_into_driver_trace(self):
        obs = Obs()
        engine = MapReduceEngine(n_partitions=3, executor="thread", max_workers=3, obs=obs)
        try:
            with obs.span("driver") as driver:
                result = engine.run(
                    lambda: list(range(30)),
                    lambda part: [v * 2 for v in part],
                    lambda parts: sorted(v for part in parts for v in part),
                )
        finally:
            engine.close()
        assert result.value == [v * 2 for v in range(30)]
        tasks = obs.tracer.spans("mapreduce.task")
        assert len(tasks) == 3
        assert {s.attributes["executor"] for s in tasks} == {"thread"}
        # Worker-measured spans merge under the driver's open span.
        (map_span,) = obs.tracer.spans("mapreduce.map")
        assert map_span.trace_id == driver.trace_id
        assert all(s.trace_id == driver.trace_id for s in tasks)
        assert obs.registry.value("mapreduce_jobs_total", executor="thread") == 1
        assert obs.registry.value("mapreduce_pool_spawns_total", executor="thread") == 1

    def test_disabled_obs_keeps_results_identical(self):
        enabled = MapReduceEngine(n_partitions=2, executor="serial", obs=Obs())
        disabled = MapReduceEngine(n_partitions=2, executor="serial", obs=Obs.disabled())

        def load():
            return list(range(10))

        def map_fn(part):
            return [v + 1 for v in part]

        def reduce_fn(parts):
            return [v for part in parts for v in part]

        assert (
            enabled.run(load, map_fn, reduce_fn).value
            == disabled.run(load, map_fn, reduce_fn).value
        )


class TestSloLifecycleAcceptance:
    """The PR's acceptance scenario: a scripted outage fires the fast-window
    alert at an exact virtual tick, the v2 dashboard carries the firing
    alert + remaining budget + correlated shed events (trace ids matching
    the router spans that shed), and recovery resolves it — no real sleeps.
    """

    def make_stack(self, tmp_path):
        import asyncio

        from repro.config import RouterConfig, SloConfig
        from repro.obs.export import HealthMonitor
        from repro.obs.slo import SloEvaluator, availability_slo
        from repro.serve.catalog import CatalogEntry
        from repro.serve.query import TileResponse

        clock = VirtualClock()
        obs = Obs(clock=clock)
        entry = CatalogEntry(
            base_path="/products/p0",
            kind="mosaic",
            fingerprint="fp-0",
            granule_ids=("g000",),
            variables=("freeboard_mean",),
            servable=("freeboard_mean",),
            x_min_m=0.0,
            y_min_m=0.0,
            x_max_m=4800.0,
            y_max_m=3200.0,
            cell_size_m=100.0,
            shape=(32, 48),
        )

        async def execute(shard, request):
            await clock.sleep(0.25)
            return TileResponse(
                request=request,
                product="synthetic",
                zoom=request.zoom,
                tiles={},
                n_cached=0,
                n_computed=1,
                seconds=0.25,
            )

        router = RequestRouter(
            ShardedCatalog(1, [entry]),
            serve=SERVE,
            config=RouterConfig(n_shards=1, max_queue_depth=2),
            clock=clock,
            execute=execute,
            obs=obs,
        )
        slo = SloEvaluator(
            obs.registry,
            clock=clock,
            config=SloConfig(fast_window_s=60.0, slow_window_s=600.0),
            log=obs.log,
        )
        slo.add(availability_slo(objective=0.999))
        monitor = HealthMonitor(tmp_path / "health.json", obs, slo=slo, router=router)
        return asyncio, clock, obs, router, slo, monitor

    def request(self, i):
        # One whole 800 m tile (tile_size 8 × cell 100 m) per index, so
        # every request owns a distinct flight key — nothing coalesces.
        col, row = i % 6, i // 6
        return TileRequest(
            bbox=(col * 800.0, row * 800.0, col * 800.0 + 800.0, row * 800.0 + 800.0),
            variable="freeboard_mean",
            zoom=0,
        )

    def test_outage_fires_dashboard_correlates_recovery_resolves(self, tmp_path):
        import json

        asyncio, clock, obs, router, slo, monitor = self.make_stack(tmp_path)
        monitor.tick()  # baseline sample at t=0, published
        fast = slo.alert("serve_availability", "fast")
        assert fast.state == "ok"

        # -- the outage: 2x-saturation open-loop burst ----------------------
        # 10 distinct requests hit a single shard with watermark 2: the
        # admitted flights run, the rest shed immediately.
        async def flood():
            tasks = [
                asyncio.ensure_future(router.query(self.request(i)))
                for i in range(10)
            ]
            while not all(t.done() for t in tasks):
                # Drain generously so every submission reaches admission
                # control before any virtual time passes (a true burst).
                for _ in range(30):
                    await asyncio.sleep(0)
                if not all(t.done() for t in tasks):
                    await clock.advance_to_next()
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(flood())
        n_shed = sum(1 for r in results if isinstance(r, Exception))
        assert n_shed == 8 and router.stats.shed == 8

        clock.tick(30.0)
        fired_tick = clock.now()
        doc = monitor.tick()

        # The fast-window alert fired at this exact virtual tick.
        assert fast.state == "firing"
        assert fast.fired_at == fired_tick
        assert fast.burn_rate == pytest.approx((8 / 10) / 0.001)

        # The published v2 document carries the whole story.
        on_disk = json.loads((tmp_path / "health.json").read_text())
        assert on_disk == json.loads(json.dumps(doc))
        alert_row = next(
            a
            for a in doc["slo"]["alerts"]
            if a["slo"] == "serve_availability" and a["window"] == "fast"
        )
        assert alert_row["state"] == "firing"
        budget_row = doc["slo"]["error_budgets"][0]
        assert budget_row["remaining_fraction"] < 0  # overspent: 8 bad vs 0.01
        assert doc["serve"]["health"]["shed"] == 8

        # Correlation: the dashboard's shed event carries the same trace id
        # as a router.request span that shed.
        shed_events = [e for e in doc["events"] if e["event"] == "router.shed"]
        assert shed_events
        shed_traces = {
            s.trace_id
            for s in obs.tracer.spans("router.request")
            if s.attributes.get("outcome") == "shed"
        }
        assert all(e["trace_id"] in shed_traces for e in shed_events)
        assert any(e["event"] == "slo.alert_firing" for e in doc["events"])

        # -- recovery: healthy sequential traffic after the burst ages out --
        clock.tick(120.0)

        async def healthy():
            for round_ in range(5):
                for i in range(8):
                    task = asyncio.ensure_future(router.query(self.request(i)))
                    while not task.done():
                        for _ in range(10):
                            await asyncio.sleep(0)
                        if not task.done():
                            await clock.advance_to_next()
                    await task  # sequential: never deeper than the watermark

        asyncio.run(healthy())
        assert router.stats.shed == 8  # no new sheds during recovery
        resolved_tick = clock.now()
        doc = monitor.tick(now=resolved_tick)

        assert fast.state == "resolved"
        assert fast.resolved_at == resolved_tick
        alert_row = next(
            a
            for a in doc["slo"]["alerts"]
            if a["slo"] == "serve_availability" and a["window"] == "fast"
        )
        assert alert_row["state"] == "resolved"
        assert any(e["event"] == "slo.alert_resolved" for e in doc["events"])


class TestTimingShim:
    def test_timing_record_rides_the_registry(self):
        record = TimingRecord()
        record.add("map", 0.5)
        record.add("map", 0.25)
        with timed(record, "reduce"):
            pass
        assert record.get("map") == pytest.approx(0.75)
        assert record.counts["map"] == 2
        assert record.registry.value("timing_seconds_total", stage="map") == pytest.approx(0.75)
        assert set(record.registry.as_dict()) == {
            'timing_seconds_total{stage="map"}',
            'timing_calls_total{stage="map"}',
            'timing_seconds_total{stage="reduce"}',
            'timing_calls_total{stage="reduce"}',
        }
