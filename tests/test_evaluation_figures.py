"""Tests for figure regeneration (confusion matrix, scaling curves, comparisons)."""

import numpy as np
import pytest

from repro.evaluation.figures import (
    figure4_confusion_matrix,
    figure5_training_scaling,
    figure6_7_classification_comparison,
    figure8_9_sea_surface_comparison,
    figure10_11_freeboard_comparison,
)
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig, run_end_to_end


@pytest.fixture(scope="module")
def outputs():
    config = ExperimentConfig(
        scene=SceneConfig(width_m=10_000.0, height_m=10_000.0, open_water_fraction=0.14,
                          thin_ice_fraction=0.16, thick_ice_fraction=0.70, n_leads=10),
        epochs=3,
        seed=17,
    )
    return run_end_to_end(config)


class TestFigure4:
    def test_confusion_matrix_structure(self, outputs):
        fig = figure4_confusion_matrix(outputs.classifier)
        cm = np.array(fig["confusion_counts"])
        assert cm.shape == (3, 3)
        norm = np.array(fig["confusion_normalized"])
        rows_with_support = cm.sum(axis=1) > 0
        np.testing.assert_allclose(norm[rows_with_support].sum(axis=1), 1.0)
        assert fig["overall_accuracy_percent"] > 50.0

    def test_per_class_accuracy_thick_ice_highest(self, outputs):
        """Thick ice dominates the training data, so (like the paper's
        Fig. 4: 98.4 % vs 73.8 % vs 60.3 %) it should be the best classified."""
        fig = figure4_confusion_matrix(outputs.classifier)
        per_class = fig["per_class_accuracy_percent"]
        assert per_class[0] >= max(per_class[1:]) - 15.0


class TestFigure5:
    def test_series_lengths_match(self):
        fig = figure5_training_scaling()
        n = len(fig["n_gpus"])
        for key in ("speedup", "total_time_s", "samples_per_second", "time_per_epoch_s", "ideal_speedup"):
            assert len(fig[key]) == n

    def test_speedup_below_ideal(self):
        fig = figure5_training_scaling()
        assert all(s <= i + 1e-9 for s, i in zip(fig["speedup"], fig["ideal_speedup"]))

    def test_total_time_decreases(self):
        fig = figure5_training_scaling()
        times = fig["total_time_s"]
        assert all(b < a for a, b in zip(times, times[1:]))


class TestFigures6And7:
    def test_density_ratio_far_above_one(self, outputs):
        comparison = figure6_7_classification_comparison(outputs)
        assert comparison.density_ratio > 5.0
        assert comparison.atl03_labels.shape == comparison.atl03_along_m.shape

    def test_class_fractions_present_for_both_products(self, outputs):
        fractions = figure6_7_classification_comparison(outputs).class_fractions()
        assert set(fractions) == {"atl03", "atl07"}
        assert sum(fractions["atl03"].values()) == pytest.approx(1.0)


class TestFigures8And9:
    def test_all_four_methods_present(self, outputs):
        fig = figure8_9_sea_surface_comparison(outputs)
        assert set(fig["methods"]) == {"minimum", "average", "nearest_minimum", "nasa"}
        for series in fig["methods"].values():
            assert len(series["centers_m"]) == len(series["heights_m"])

    def test_difference_vs_atl07_reported(self, outputs):
        fig = figure8_9_sea_surface_comparison(outputs)
        assert np.isfinite(fig["mean_abs_difference_vs_atl07_m"])
        assert fig["mean_abs_difference_vs_atl07_m"] < 0.6

    def test_smoothness_reported_per_method(self, outputs):
        fig = figure8_9_sea_surface_comparison(outputs)
        assert set(fig["smoothness_m"]) == {"minimum", "average", "nearest_minimum", "nasa"}


class TestFigures10And11:
    def test_distributions_normalised(self, outputs):
        fig = figure10_11_freeboard_comparison(outputs)
        assert np.isclose(sum(fig["atl03_distribution"]), 1.0, atol=1e-6)
        assert np.isclose(sum(fig["atl10_distribution"]), 1.0, atol=1e-6)

    def test_atl03_denser_than_atl10(self, outputs):
        fig = figure10_11_freeboard_comparison(outputs)
        assert fig["comparison"]["density_ratio"] > 5.0

    def test_atl07_segments_are_coarse(self, outputs):
        fig = figure10_11_freeboard_comparison(outputs)
        assert fig["atl07_mean_segment_length_m"] > 10.0
