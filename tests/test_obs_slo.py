"""SLO engine: burn-rate windows, alert state machines, error budgets.

Every test drives a VirtualClock — violations fire at exact ticks and the
budget ledger arithmetic is exact; no real sleeps anywhere.
"""

from __future__ import annotations

import pytest

from repro.config import SloConfig
from repro.obs.log import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BurnWindow,
    CounterRatioQuery,
    GaugeStalenessQuery,
    HistogramAboveQuery,
    SloEvaluator,
    SloSpec,
    availability_slo,
    freshness_slo,
    latency_slo,
)
from repro.serve.clock import VirtualClock

# Compact window geometry so tests script minutes, not hours: the fast
# window reacts within 60 s, the slow one needs 600 s of history.
CONFIG = SloConfig(
    fast_window_s=60.0,
    slow_window_s=600.0,
    fast_burn_threshold=14.4,
    slow_burn_threshold=6.0,
)


def make_availability(registry=None, clock=None, config=CONFIG, log=None):
    registry = registry if registry is not None else MetricsRegistry()
    clock = clock if clock is not None else VirtualClock()
    ev = SloEvaluator(registry, clock=clock, config=config, log=log)
    ev.add(availability_slo(objective=0.999))
    return registry, clock, ev


def serve_traffic(registry, total: int, shed: int = 0) -> None:
    registry.counter("router_requests_total").inc(total)
    if shed:
        registry.counter("router_shed_total").inc(shed)


class TestQueries:
    def test_counter_ratio_sums_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("router_shed_total", router="a").inc(2)
        reg.counter("router_shed_total", router="b").inc(3)
        reg.counter("router_requests_total", router="a").inc(10)
        q = CounterRatioQuery(bad="router_shed_total", total="router_requests_total")
        assert q.sample(reg, 0.0) == (5.0, 10.0)

    def test_histogram_above_splits_exactly_on_an_edge(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(0.1, 0.25, 1.0))
        for v in (0.05, 0.2, 0.25, 0.5, 2.0):
            h.observe(v)
        q = HistogramAboveQuery(histogram="lat", threshold_s=0.25)
        # 0.05, 0.2, 0.25 land at or below the 0.25 edge; 0.5 and 2.0 above.
        assert q.sample(reg, 0.0) == (2.0, 5.0)

    def test_histogram_threshold_below_first_edge_counts_all_bad(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", edges=(0.1, 1.0))
        h.observe(0.05)
        q = HistogramAboveQuery(histogram="lat", threshold_s=0.01)
        assert q.sample(reg, 0.0) == (1.0, 1.0)

    def test_gauge_staleness_good_fresh_bad_stale_silent_unset(self):
        reg = MetricsRegistry()
        q = GaugeStalenessQuery(gauge="ingest_last_ingest_ts", max_lag_s=10.0)
        # Never set: no observation at all.
        assert q.sample(reg, 100.0) == (0.0, 0.0)
        reg.gauge("ingest_last_ingest_ts").set(95.0)
        assert q.sample(reg, 100.0) == (0.0, 1.0)  # 5 s lag: good
        assert q.sample(reg, 120.0) == (1.0, 1.0)  # 25 s lag: bad


class TestSpecValidation:
    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_leave_a_budget(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SloSpec(
                name="x",
                objective=objective,
                query=CounterRatioQuery(bad="b", total="t"),
            )

    def test_window_geometry_validated(self):
        with pytest.raises(ValueError, match="duration_s"):
            BurnWindow("w", duration_s=0.0, burn_threshold=1.0)
        with pytest.raises(ValueError, match="burn_threshold"):
            BurnWindow("w", duration_s=60.0, burn_threshold=0.0)

    def test_duplicate_registration_rejected(self):
        _, _, ev = make_availability()
        with pytest.raises(ValueError, match="already registered"):
            ev.add(availability_slo(objective=0.99))


class TestBurnRateMath:
    def test_burn_rate_is_bad_fraction_over_budget_fraction(self):
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=1000)
        ev.evaluate()
        clock.tick(30.0)
        # 1% shed against a 0.1% budget: burn = 0.01 / 0.001 = 10.
        serve_traffic(reg, total=1000, shed=10)
        ev.evaluate()
        assert ev.alert("serve_availability", "fast").burn_rate == pytest.approx(10.0)

    def test_fast_window_fires_before_slow(self):
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=1000)
        ev.evaluate()
        # A hard outage: 50% of requests shed, burn = 0.5/0.001 = 500.
        clock.tick(30.0)
        serve_traffic(reg, total=100, shed=50)
        ev.evaluate()
        fast = ev.alert("serve_availability", "fast")
        slow = ev.alert("serve_availability", "slow")
        assert fast.firing and fast.fired_at == pytest.approx(30.0)
        # Both windows currently see the same 30 s of history, so the slow
        # alert also trips — the *ordering* claim needs a violation that
        # clears the fast threshold but not a longer horizon, below.
        assert slow.firing

    def test_sustained_low_grade_burn_caught_only_by_slow_window(self):
        # Shed 1% steadily: burn 10 clears the slow threshold (6) but never
        # the fast one (14.4) — the pattern the slow window exists for.
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=1000)
        ev.evaluate()
        for _ in range(20):
            clock.tick(30.0)
            serve_traffic(reg, total=1000, shed=10)
            ev.evaluate()
        assert not ev.alert("serve_availability", "fast").firing
        assert ev.alert("serve_availability", "slow").firing

    def test_no_traffic_means_no_burn(self):
        reg, clock, ev = make_availability()
        ev.evaluate()
        clock.tick(60.0)
        ev.evaluate()
        for alert in ev.alerts():
            assert alert.state == "ok"
            assert alert.burn_rate == 0.0

    def test_for_s_debounces_transient_violation(self):
        reg, clock, ev = make_availability(
            config=SloConfig(
                fast_window_s=60.0,
                slow_window_s=600.0,
                for_s=45.0,
            )
        )
        serve_traffic(reg, total=1000)
        ev.evaluate()
        clock.tick(10.0)
        serve_traffic(reg, total=100, shed=50)
        ev.evaluate()
        fast = ev.alert("serve_availability", "fast")
        assert fast.state == "pending" and fast.pending_since == pytest.approx(10.0)
        # Violation clears before for_s elapses: back to ok, never fired.
        clock.tick(70.0)
        serve_traffic(reg, total=10000)
        ev.evaluate()
        assert fast.state == "ok" and fast.fired_at is None


class TestAlertLifecycle:
    def test_fires_resolves_with_hysteresis_and_rearms(self):
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=1000)
        ev.evaluate()

        clock.tick(30.0)
        serve_traffic(reg, total=100, shed=50)
        ev.evaluate()
        fast = ev.alert("serve_availability", "fast")
        assert fast.state == "firing" and fast.fired_at == pytest.approx(30.0)

        # Burn drops below threshold but above threshold/2: still firing
        # (hysteresis — resolve_fraction defaults to 0.5).
        clock.tick(60.0)
        serve_traffic(reg, total=10000, shed=100)  # window burn = 0.01/0.001 = 10
        ev.evaluate()
        assert fast.state == "firing"
        assert fast.burn_rate == pytest.approx(10.0)

        # Full recovery: burn under 7.2 resolves at this exact tick.
        clock.tick(70.0)
        serve_traffic(reg, total=100000)
        ev.evaluate()
        assert fast.state == "resolved"
        assert fast.resolved_at == pytest.approx(160.0)

        # A fresh outage — after the recovery sample ages out of the fast
        # window — re-arms the same alert.
        clock.tick(100.0)
        serve_traffic(reg, total=100, shed=60)
        ev.evaluate()
        assert fast.state == "firing"

    def test_transitions_are_logged_with_slo_name(self):
        clock = VirtualClock()
        log = EventLog(clock=clock)
        reg, clock, ev = make_availability(clock=clock, log=log)
        serve_traffic(reg, total=1000)
        ev.evaluate()
        clock.tick(30.0)
        serve_traffic(reg, total=100, shed=50)
        ev.evaluate()
        fired = log.events(event="slo.alert_firing", level="warning")
        assert fired and fired[0].fields["slo"] == "serve_availability"
        clock.tick(120.0)
        serve_traffic(reg, total=100000)
        ev.evaluate()
        assert log.events(event="slo.alert_resolved", level="info")


class TestErrorBudget:
    def test_ledger_is_exact_from_event_counts(self):
        reg, clock, ev = make_availability()
        ev.evaluate()  # baseline: nothing served yet
        clock.tick(30.0)
        serve_traffic(reg, total=10000, shed=5)
        ev.evaluate()
        budget = ev.error_budget("serve_availability")
        # 10000 total events accrued since the baseline sample, objective
        # 0.999: the budget is exactly 10 bad events, 5 were spent.
        assert budget.total_events == 10000.0
        assert budget.bad_events == 5.0
        assert budget.budget_events == pytest.approx(10.0)
        assert budget.consumed_fraction == pytest.approx(0.5)
        assert budget.remaining_fraction == pytest.approx(0.5)

    def test_overspent_budget_goes_negative(self):
        reg, clock, ev = make_availability()
        ev.evaluate()
        serve_traffic(reg, total=1000, shed=20)  # budget is 1, spent 20
        clock.tick(30.0)
        ev.evaluate()
        budget = ev.error_budget("serve_availability")
        assert budget.consumed_fraction == pytest.approx(20.0)
        assert budget.remaining_fraction == pytest.approx(-19.0)

    def test_baseline_excludes_traffic_before_first_evaluation(self):
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=5000, shed=100)  # pre-history
        ev.evaluate()
        clock.tick(30.0)
        serve_traffic(reg, total=1000)
        ev.evaluate()
        budget = ev.error_budget("serve_availability")
        assert budget.total_events == 1000.0
        assert budget.bad_events == 0.0

    def test_unknown_slo_raises(self):
        _, _, ev = make_availability()
        with pytest.raises(KeyError, match="no SLO named"):
            ev.error_budget("nope")


class TestReadyMadeSpecs:
    def test_latency_slo_reads_router_histogram(self):
        reg = MetricsRegistry()
        clock = VirtualClock()
        ev = SloEvaluator(reg, clock=clock, config=CONFIG)
        ev.add(latency_slo(objective=0.9, threshold_s=0.25))
        h = reg.histogram(
            "router_request_latency_seconds", edges=(0.025, 0.25, 1.0)
        )
        ev.evaluate()
        clock.tick(30.0)
        for v in [0.01] * 2 + [2.0] * 8:  # 80% above the bound, burn = 8
            h.observe(v)
        ev.evaluate()
        assert ev.alert("serve_latency", "fast").burn_rate == pytest.approx(8.0)

    def test_freshness_slo_accumulates_per_tick_observations(self):
        reg = MetricsRegistry()
        clock = VirtualClock()
        ev = SloEvaluator(reg, clock=clock, config=CONFIG)
        ev.add(freshness_slo(objective=0.95, max_lag_s=10.0))
        reg.gauge("ingest_last_ingest_ts").set(0.0)
        ev.evaluate()
        for _ in range(4):  # lag grows: 30, 60, 90, 120 s — all stale
            clock.tick(30.0)
            ev.evaluate()
        budget = ev.error_budget("ingest_freshness")
        assert budget.total_events == 4.0
        assert budget.bad_events == 4.0
        assert ev.alert("ingest_freshness", "fast").firing

    def test_as_dict_is_dashboard_shaped(self):
        reg, clock, ev = make_availability()
        serve_traffic(reg, total=10)
        ev.evaluate()
        doc = ev.as_dict()
        assert {a["window"] for a in doc["alerts"]} == {"fast", "slow"}
        assert doc["error_budgets"][0]["slo"] == "serve_availability"
