"""Tests for the input-validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    ensure_1d,
    ensure_2d,
    ensure_finite,
    ensure_in_range,
    ensure_labels,
    ensure_monotonic,
    ensure_positive,
    ensure_same_length,
)


class TestShapeChecks:
    def test_ensure_1d_accepts_vector(self):
        arr = ensure_1d(np.arange(5))
        assert arr.shape == (5,)

    def test_ensure_1d_rejects_matrix(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ensure_1d(np.zeros((2, 2)), "heights")

    def test_ensure_2d_accepts_matrix(self):
        assert ensure_2d(np.zeros((3, 4))).shape == (3, 4)

    def test_ensure_2d_rejects_vector(self):
        with pytest.raises(ValueError, match="two-dimensional"):
            ensure_2d(np.zeros(3))

    def test_ensure_same_length_ok(self):
        ensure_same_length(np.zeros(3), np.ones(3))

    def test_ensure_same_length_mismatch_names_in_message(self):
        with pytest.raises(ValueError, match="lat=2"):
            ensure_same_length(np.zeros(3), np.zeros(2), names=("lon", "lat"))


class TestValueChecks:
    def test_ensure_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            ensure_finite(np.array([1.0, np.nan]))

    def test_ensure_finite_rejects_inf(self):
        with pytest.raises(ValueError):
            ensure_finite(np.array([np.inf]))

    def test_ensure_positive(self):
        assert ensure_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            ensure_positive(0.0)
        with pytest.raises(ValueError):
            ensure_positive(-1.0)

    def test_ensure_in_range(self):
        assert ensure_in_range(5.0, 0.0, 10.0) == 5.0
        with pytest.raises(ValueError):
            ensure_in_range(11.0, 0.0, 10.0)

    def test_ensure_monotonic_non_decreasing(self):
        ensure_monotonic(np.array([1.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            ensure_monotonic(np.array([2.0, 1.0]))

    def test_ensure_monotonic_strict(self):
        with pytest.raises(ValueError):
            ensure_monotonic(np.array([1.0, 1.0]), strict=True)
        ensure_monotonic(np.array([1.0, 2.0]), strict=True)


class TestLabelChecks:
    def test_valid_labels_pass(self):
        labels = ensure_labels(np.array([0, 1, 2, -1], dtype=np.int8), 3)
        assert labels.shape == (4,)

    def test_out_of_range_labels_rejected(self):
        with pytest.raises(ValueError):
            ensure_labels(np.array([0, 3], dtype=np.int64), 3)
        with pytest.raises(ValueError):
            ensure_labels(np.array([-2], dtype=np.int64), 3)

    def test_float_labels_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            ensure_labels(np.array([0.0, 1.0]), 3)

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            ensure_labels(np.zeros((2, 2), dtype=int), 3)
