"""Tests for the decision-tree baseline classifier."""

import numpy as np
import pytest

from repro.classification.decision_tree import DecisionTreeClassifier, DecisionTreeConfig
from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.resampling.features import FEATURE_NAMES, extract_features


def _raw_feature_matrix(segments):
    features = extract_features(segments)
    return np.column_stack([features[name] for name in FEATURE_NAMES])


class TestDecisionTreeConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            DecisionTreeConfig(water_height_max_m=0.3, thin_ice_height_max_m=0.2)

    def test_positive_spreads_required(self):
        with pytest.raises(ValueError):
            DecisionTreeConfig(water_std_max_m=0.0)


class TestDecisionTreeClassifier:
    def test_synthetic_three_surface_problem(self, rng):
        """Hand-built segments with the expected height/rate signatures."""
        n = 300
        X = np.zeros((n, 6))
        labels = np.zeros(n, dtype=np.int8)
        # Thick ice: high, rough, bright.
        X[:100, 0] = rng.normal(0.5, 0.05, 100)
        X[:100, 1] = 0.1
        X[:100, 2] = 12
        labels[:100] = CLASS_THICK_ICE
        # Thin ice: slightly above water, moderate rate.
        X[100:200, 0] = rng.normal(0.12, 0.02, 100)
        X[100:200, 1] = 0.06
        X[100:200, 2] = 7
        labels[100:200] = CLASS_THIN_ICE
        # Open water: at reference level, very smooth, few photons.
        X[200:, 0] = rng.normal(0.0, 0.01, 100)
        X[200:, 1] = 0.02
        X[200:, 2] = 1
        labels[200:] = CLASS_OPEN_WATER

        tree = DecisionTreeClassifier()
        predictions = tree.fit_predict(X, labels)
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.9

    def test_reasonable_accuracy_on_simulated_beam(self, segments):
        valid = segments.valid_mask() & (segments.truth_class >= 0)
        X = _raw_feature_matrix(segments)[valid]
        truth = segments.truth_class[valid]
        tree = DecisionTreeClassifier()
        predictions = tree.fit_predict(X, truth)
        assert (predictions == truth).mean() > 0.7

    def test_unsupervised_fit_also_works(self, segments):
        valid = segments.valid_mask()
        X = _raw_feature_matrix(segments)[valid]
        predictions = DecisionTreeClassifier().fit_predict(X)
        assert set(np.unique(predictions)).issubset({0, 1, 2})

    def test_predict_without_fit_self_fits(self, segments):
        X = _raw_feature_matrix(segments)[segments.valid_mask()]
        predictions = DecisionTreeClassifier().predict(X)
        assert predictions.shape == (X.shape[0],)

    def test_wrong_feature_count_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().predict(np.zeros((5, 4)))

    def test_all_nan_heights_rejected(self):
        X = np.full((5, 6), np.nan)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X)

    def test_label_length_mismatch_rejected(self, segments):
        X = _raw_feature_matrix(segments)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, np.zeros(3, dtype=np.int8))
