"""Tests for sea-ice thickness estimation from freeboard (paper's future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.freeboard.freeboard import compute_freeboard
from repro.freeboard.thickness import (
    DENSITY_ICE,
    DENSITY_WATER,
    one_layer_method,
    thickness_from_freeboard,
)


class TestThicknessFromFreeboard:
    def test_zero_freeboard_gives_zero_thickness(self):
        result = thickness_from_freeboard(np.zeros(5))
        np.testing.assert_allclose(result.thickness_m, 0.0)

    def test_snow_free_scaling_factor(self):
        # With no snow, hi = rho_w / (rho_w - rho_i) * hf  (factor ~9.4).
        result = thickness_from_freeboard(np.array([0.3]), snow_depth_m=0.0)
        factor = DENSITY_WATER / (DENSITY_WATER - DENSITY_ICE)
        assert result.thickness_m[0] == pytest.approx(0.3 * factor)
        assert 8.0 < factor < 11.0

    def test_snow_reduces_thickness(self):
        bare = thickness_from_freeboard(np.array([0.4]), snow_depth_m=0.0)
        snowy = thickness_from_freeboard(np.array([0.4]), snow_depth_m=0.1)
        assert snowy.thickness_m[0] < bare.thickness_m[0]

    def test_snow_clipped_to_freeboard(self):
        result = thickness_from_freeboard(np.array([0.1]), snow_depth_m=0.5)
        assert result.snow_depth_m[0] == pytest.approx(0.1)
        assert result.thickness_m[0] >= 0.0

    def test_nan_freeboard_propagates(self):
        result = thickness_from_freeboard(np.array([np.nan, 0.2]))
        assert np.isnan(result.thickness_m[0])
        assert np.isfinite(result.thickness_m[1])

    def test_uncertainty_positive_and_grows_with_freeboard_error(self):
        tight = thickness_from_freeboard(np.array([0.3]), freeboard_error_m=0.01)
        loose = thickness_from_freeboard(np.array([0.3]), freeboard_error_m=0.1)
        assert loose.uncertainty_m[0] > tight.uncertainty_m[0] > 0.0

    def test_invalid_densities_rejected(self):
        with pytest.raises(ValueError):
            thickness_from_freeboard(np.array([0.2]), rho_ice=1100.0)
        with pytest.raises(ValueError):
            thickness_from_freeboard(np.array([0.2]), rho_snow=2000.0)

    def test_negative_snow_rejected(self):
        with pytest.raises(ValueError):
            thickness_from_freeboard(np.array([0.2]), snow_depth_m=-0.1)

    @given(
        hf=st.floats(min_value=0.0, max_value=1.0),
        snow=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_thickness_non_negative_and_monotone(self, hf, snow):
        result = thickness_from_freeboard(np.array([hf]), snow_depth_m=snow)
        assert result.thickness_m[0] >= 0.0
        thicker = thickness_from_freeboard(np.array([hf + 0.1]), snow_depth_m=snow)
        assert thicker.thickness_m[0] >= result.thickness_m[0]


class TestOneLayerMethod:
    def test_reduces_to_snow_free_case_at_zero_fraction(self):
        hf = np.array([0.25])
        olm = one_layer_method(hf, snow_fraction=0.0)
        standard = thickness_from_freeboard(hf, snow_depth_m=0.0)
        np.testing.assert_allclose(olm.thickness_m, standard.thickness_m)

    def test_more_snow_means_thinner_ice(self):
        hf = np.array([0.4])
        low = one_layer_method(hf, snow_fraction=0.2)
        high = one_layer_method(hf, snow_fraction=0.8)
        assert high.thickness_m[0] < low.thickness_m[0]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            one_layer_method(np.array([0.2]), snow_fraction=1.5)

    def test_snow_depth_reported(self):
        result = one_layer_method(np.array([0.4]), snow_fraction=0.5)
        assert result.snow_depth_m[0] == pytest.approx(0.2)

    def test_uncertainty_scales_with_freeboard_error(self):
        result = one_layer_method(np.array([0.4]), freeboard_error_m=0.05)
        # The one-layer coefficient is ~4.7 with the default snow fraction,
        # so a 5 cm freeboard error maps to >20 cm of thickness uncertainty.
        assert result.uncertainty_m[0] > 0.2


class TestOnPipelineOutput:
    def test_thickness_from_classified_track(self, segments):
        freeboard = compute_freeboard(segments, segments.truth_class)
        result = one_layer_method(freeboard.freeboard_m, snow_fraction=0.6)
        ice = freeboard.ice_mask()
        assert np.all(result.thickness_m[ice] >= 0.0)
        # Antarctic first-year ice: mean thickness of order a metre or two.
        assert 0.2 < result.mean_thickness_m() < 8.0
