"""Cache-resilience tests for the campaign engine.

Covers the failure modes a long campaign actually meets:

* a corrupt/truncated ``.pkl`` entry mid-campaign is treated as a miss and
  recomputed to identical products;
* a campaign interrupted between stages (curation done, training/retrieval
  not) resumes from the curated artifacts;
* stage-granular invalidation: changing only ``sea_surface.method`` must
  not invalidate curated or classifier artifacts — only the stages
  downstream of sea surface re-run.
"""

import numpy as np
import pytest

from dataclasses import replace

from repro.campaign import CampaignConfig, CampaignRunner
from repro.config import SeaSurfaceConfig
from repro.surface.scene import SceneConfig
from repro.workflow.end_to_end import ExperimentConfig

BASE = ExperimentConfig(
    scene=SceneConfig(
        width_m=6_000.0,
        height_m=6_000.0,
        open_water_fraction=0.12,
        thin_ice_fraction=0.18,
        thick_ice_fraction=0.70,
        n_leads=8,
    ),
    epochs=2,
    model_kind="mlp",
    drift_m=(120.0, 180.0),
)

GRID = {"cloud_fraction": (0.1, 0.35)}

#: Stage-cache key prefixes that must never miss after a sea-surface change.
UPSTREAM_STAGES = (
    "scene-",
    "atl03-",
    "s2-",
    "segmentation-",
    "resample-",
    "drift-",
    "autolabel-",
    "curate-",
    "training_set-",
    "train-pooled-",
    "infer-",
)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("resilience-cache"))


@pytest.fixture(scope="module")
def config(cache_dir):
    return CampaignConfig(base=BASE, grid=GRID, seed=21, cache_dir=cache_dir)


@pytest.fixture(scope="module")
def first_run(config):
    return CampaignRunner(config).run()


class TestCorruptEntryMidCampaign:
    def test_truncated_curated_artifact_is_recomputed_identically(self, config, first_run):
        runner = CampaignRunner(config)
        target = first_run.granules[0].granule_id
        # Truncate the curated artifact and delete its result, as if the
        # machine died while the result tier was being rewritten.
        path = runner.cache.path(f"{target}.curated")
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 7])
        runner.cache.path(f"{target}.result").unlink()

        second = runner.run()
        assert f"{target}.curated" in second.cache_misses
        assert f"{target}.result" in second.cache_misses
        original = first_run.granule(target)
        recomputed = second.granule(target)
        for beam in original.products.freeboard:
            np.testing.assert_array_equal(
                original.products.freeboard[beam].freeboard_m,
                recomputed.products.freeboard[beam].freeboard_m,
            )
        # The re-curation itself was served from the intact stage tier.
        assert second.stage_misses == ()

    def test_corrupt_stage_tier_entry_is_recomputed(self, config, first_run):
        runner = CampaignRunner(config)
        target = first_run.granules[1].granule_id
        runner.cache.path(f"{target}.curated").write_bytes(b"not a pickle")
        runner.cache.path(f"{target}.result").unlink()
        # Corrupt one stage-tier entry this granule's re-curation needs.
        from repro.pipeline import GraphRunner, StageCache, default_graph

        spec = next(s for s in config.expand() if s.granule_id == target)
        fps = GraphRunner(default_graph()).fingerprints(spec.config)
        stage_cache = StageCache(config.cache_dir)
        stage_cache.store.path(f"autolabel-{fps['labels']}").write_bytes(b"garbage")

        third = runner.run()
        assert any(key.startswith("autolabel-") for key in third.stage_misses)
        original = first_run.granule(target)
        recomputed = third.granule(target)
        for beam in original.products.freeboard:
            np.testing.assert_array_equal(
                original.products.freeboard[beam].freeboard_m,
                recomputed.products.freeboard[beam].freeboard_m,
            )


class TestInterruptedResume:
    def test_resume_after_interruption_between_stages(self, config, first_run):
        """Curation cached, classifier/results wiped: resume trains + retrieves."""
        runner = CampaignRunner(config)
        runner.cache.path("classifier").unlink()
        for granule in first_run.granules:
            runner.cache.path(f"{granule.granule_id}.result").unlink()
        # Also drop the stage tier's pooled classifier so training re-runs.
        from repro.pipeline import StageCache

        stage_cache = StageCache(config.cache_dir)
        for key in stage_cache.store.keys():
            if key.startswith(("train-pooled-", "infer-")):
                stage_cache.store.path(key).unlink()

        resumed = runner.run()
        curated_keys = {f"{g.granule_id}.curated" for g in first_run.granules}
        assert curated_keys <= set(resumed.cache_hits)
        assert "classifier" in resumed.cache_misses
        # Retraining on identical curated data reproduces the classifier and
        # products bit-for-bit.
        for a, b in zip(
            first_run.classifier.model.get_weights(),
            resumed.classifier.model.get_weights(),
        ):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            first_run.metrics.confusion, resumed.metrics.confusion
        )


class TestStageGranularInvalidation:
    def test_sea_surface_change_keeps_curation_and_classifier(self, config, first_run):
        """The acceptance criterion: only downstream-of-sea-surface re-runs."""
        changed = CampaignConfig(
            base=replace(BASE, sea_surface=SeaSurfaceConfig(method="average")),
            grid=GRID,
            seed=21,
            cache_dir=config.cache_dir,
        )
        runner = CampaignRunner(changed)
        assert runner.fingerprint != first_run.fingerprint  # new result tier
        result = runner.run()

        # Nothing upstream of sea surface was recomputed...
        assert not any(
            key.startswith(UPSTREAM_STAGES) for key in result.stage_misses
        ), result.stage_misses
        # ...curation, pooled training and classification all hit...
        for prefix in ("resample-", "autolabel-", "train-pooled-", "infer-"):
            assert any(key.startswith(prefix) for key in result.stage_hits), prefix
        # ...and exactly the sea-surface-downstream stages missed.
        missed_kinds = {key.rsplit("-", 1)[0] for key in result.stage_misses}
        assert missed_kinds == {"sea_surface", "freeboard", "atl07", "atl10", "metrics"}

        # The classifier is the cached one, bit-for-bit.
        for a, b in zip(
            first_run.classifier.model.get_weights(),
            result.classifier.model.get_weights(),
        ):
            np.testing.assert_array_equal(a, b)
        # Classification is unchanged; freeboard legitimately differs.
        for first_granule, changed_granule in zip(first_run.granules, result.granules):
            for beam in first_granule.products.classified:
                np.testing.assert_array_equal(
                    first_granule.products.classified[beam].labels,
                    changed_granule.products.classified[beam].labels,
                )

    def test_changed_campaign_matches_cold_run(self, config, first_run, tmp_path):
        """Warm partial recompute equals a cold run of the changed config."""
        changed_base = replace(BASE, sea_surface=SeaSurfaceConfig(method="average"))
        warm = CampaignRunner(
            CampaignConfig(base=changed_base, grid=GRID, seed=21, cache_dir=config.cache_dir)
        ).run()
        cold = CampaignRunner(
            CampaignConfig(base=changed_base, grid=GRID, seed=21, cache_dir=str(tmp_path))
        ).run()
        for warm_granule, cold_granule in zip(warm.granules, cold.granules):
            for beam in warm_granule.products.freeboard:
                np.testing.assert_array_equal(
                    warm_granule.products.freeboard[beam].freeboard_m,
                    cold_granule.products.freeboard[beam].freeboard_m,
                )


class TestClassifierProvenance:
    def test_mislabelled_classifier_bundle_is_retrained(self, tmp_path):
        """A result-tier classifier bundle whose recorded pooled fingerprint
        does not match the current config (e.g. written under a different
        kernel backend) must be rejected and retrained, not reused."""
        config = CampaignConfig(base=BASE, seed=3, cache_dir=str(tmp_path))
        first = CampaignRunner(config).run()
        assert "classifier" in first.cache_misses

        runner = CampaignRunner(config)
        bundle = runner.cache.load("classifier")
        bundle["fingerprint"] = "another-backend"
        runner.cache.store("classifier", bundle)
        # Also clear the stage tier so the classifier cannot be recovered
        # from its content-addressed entry.
        from repro.pipeline import StageCache

        stage_cache = StageCache(config.cache_dir)
        for key in stage_cache.store.keys():
            if key.startswith("train-pooled-"):
                stage_cache.store.path(key).unlink()

        second = CampaignRunner(config).run()
        assert "classifier" in second.cache_misses  # rejected, not a hit
        # Deterministic retraining on identical curated data reproduces the
        # classifier bit-for-bit.
        for a, b in zip(
            first.classifier.model.get_weights(), second.classifier.model.get_weights()
        ):
            np.testing.assert_array_equal(a, b)

    def test_result_entry_with_stale_fingerprint_is_recomputed(self, tmp_path):
        """Result-tier entries are fingerprint-validated, not just
        type-checked: an artifact recorded under a different content
        fingerprint (other kernel backend, older stage version) must read
        as a miss even though the campaign fingerprint matches."""
        import dataclasses

        config = CampaignConfig(base=BASE, seed=4, cache_dir=str(tmp_path))
        first = CampaignRunner(config).run()
        gid = first.granules[0].granule_id

        runner = CampaignRunner(config)
        stale = dataclasses.replace(
            runner.cache.load(f"{gid}.result"), fingerprint="other-backend"
        )
        runner.cache.store(f"{gid}.result", stale)

        second = runner.run()
        assert f"{gid}.result" in second.cache_misses
        for beam in first.granule(gid).products.freeboard:
            np.testing.assert_array_equal(
                first.granule(gid).products.freeboard[beam].freeboard_m,
                second.granule(gid).products.freeboard[beam].freeboard_m,
            )
