"""Tests for the emulated ATL07 / ATL10 baseline products."""

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER
from repro.products.atl07 import generate_atl07
from repro.products.atl10 import generate_atl10


@pytest.fixture(scope="module")
def atl07(beam):
    return generate_atl07(beam)


@pytest.fixture(scope="module")
def atl10(atl07):
    return generate_atl10(atl07)


class TestATL07:
    def test_segment_geometry(self, atl07):
        assert atl07.n_segments > 10
        # 150-photon segments over mostly bright ice: tens of metres each.
        assert 10.0 < atl07.mean_segment_length_m() < 500.0
        assert np.all(np.diff(atl07.along_track_m) > 0)

    def test_classification_agrees_with_truth(self, atl07):
        accuracy = (atl07.surface_class == atl07.truth_class).mean()
        assert accuracy > 0.6

    def test_sea_surface_is_low_relative_to_heights(self, atl07):
        # The sea surface must sit at or below the bulk of the segment heights.
        assert np.median(atl07.sea_surface_m) < np.median(atl07.height_m)

    def test_points_per_km_far_below_2m_product(self, atl07):
        # 2 m segments give 500 points/km; the ATL07 baseline gives a few tens.
        assert atl07.points_per_km() < 120.0

    def test_custom_aggregation_count(self, beam):
        coarse = generate_atl07(beam, photons_per_segment=300)
        fine = generate_atl07(beam, photons_per_segment=75)
        assert fine.n_segments > coarse.n_segments

    def test_too_few_photons_rejected(self, beam):
        tiny = beam.select(np.arange(beam.n_photons) < 50)
        with pytest.raises(ValueError):
            generate_atl07(tiny)


class TestATL10:
    def test_only_ice_segments_present(self, atl10):
        assert np.all(atl10.surface_class != CLASS_OPEN_WATER)

    def test_freeboards_non_negative_and_physical(self, atl10):
        assert np.all(atl10.freeboard_m >= 0.0)
        assert atl10.mean_freeboard_m() < 2.0

    def test_freeboard_is_height_minus_sea_surface(self, atl07, atl10):
        ice = atl07.surface_class != CLASS_OPEN_WATER
        expected = np.clip(atl07.height_m[ice] - atl07.sea_surface_m[ice], 0.0, None)
        np.testing.assert_allclose(atl10.freeboard_m, expected)

    def test_distribution_normalised(self, atl10):
        centres, density = atl10.distribution()
        assert density.sum() == pytest.approx(1.0, abs=1e-6)
        with pytest.raises(ValueError):
            atl10.distribution(bin_width_m=-1.0)

    def test_unclipped_option(self, atl07):
        atl10_raw = generate_atl10(atl07, clip_negative=False)
        # Without clipping some segments may dip below zero; either way the
        # values must be finite.
        assert np.isfinite(atl10_raw.freeboard_m).all()
