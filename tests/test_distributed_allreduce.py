"""Tests for the ring and tree all-reduce collectives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.allreduce import ring_allreduce, ring_allreduce_average, tree_allreduce


class TestRingAllreduce:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 4, 7, 8])
    def test_matches_direct_sum(self, rng, n_ranks):
        buffers = [rng.normal(size=37) for _ in range(n_ranks)]
        expected = np.sum(buffers, axis=0)
        results = ring_allreduce(buffers)
        assert len(results) == n_ranks
        for out in results:
            np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_multidimensional_buffers(self, rng):
        buffers = [rng.normal(size=(4, 5)) for _ in range(3)]
        expected = np.sum(buffers, axis=0)
        for out in ring_allreduce(buffers):
            np.testing.assert_allclose(out, expected)
            assert out.shape == (4, 5)

    def test_buffer_smaller_than_rank_count(self, rng):
        # 8 ranks but only 3 elements: some chunks are empty.
        buffers = [rng.normal(size=3) for _ in range(8)]
        expected = np.sum(buffers, axis=0)
        for out in ring_allreduce(buffers):
            np.testing.assert_allclose(out, expected)

    def test_inputs_not_mutated(self, rng):
        buffers = [rng.normal(size=10) for _ in range(4)]
        copies = [b.copy() for b in buffers]
        ring_allreduce(buffers)
        for original, copy in zip(buffers, copies):
            np.testing.assert_array_equal(original, copy)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    def test_empty_rank_list_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce([])

    @given(
        n_ranks=st.integers(min_value=1, max_value=6),
        size=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equals_sum(self, n_ranks, size, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.normal(size=size) for _ in range(n_ranks)]
        expected = np.sum(buffers, axis=0)
        for out in ring_allreduce(buffers):
            np.testing.assert_allclose(out, expected, atol=1e-10)


class TestRingAllreduceAverage:
    def test_averages_gradient_lists(self, rng):
        n_ranks, shapes = 4, [(3, 2), (5,)]
        rank_grads = [[rng.normal(size=s) for s in shapes] for _ in range(n_ranks)]
        averaged = ring_allreduce_average(rank_grads)
        for k, shape in enumerate(shapes):
            expected = np.mean([rank_grads[r][k] for r in range(n_ranks)], axis=0)
            for r in range(n_ranks):
                np.testing.assert_allclose(averaged[r][k], expected, atol=1e-12)

    def test_single_rank_is_identity(self, rng):
        grads = [[rng.normal(size=4)]]
        averaged = ring_allreduce_average(grads)
        np.testing.assert_allclose(averaged[0][0], grads[0][0])

    def test_inconsistent_parameter_counts_rejected(self, rng):
        with pytest.raises(ValueError):
            ring_allreduce_average([[np.zeros(2)], [np.zeros(2), np.zeros(2)]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ring_allreduce_average([])


class TestTreeAllreduce:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5, 8])
    def test_matches_ring(self, rng, n_ranks):
        buffers = [rng.normal(size=11) for _ in range(n_ranks)]
        ring = ring_allreduce(buffers)
        tree = tree_allreduce(buffers)
        for r_out, t_out in zip(ring, tree):
            np.testing.assert_allclose(r_out, t_out, atol=1e-12)
