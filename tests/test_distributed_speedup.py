"""Tests for speedup bookkeeping and scaling laws."""

import numpy as np
import pytest

from repro.distributed.speedup import (
    SpeedupTable,
    amdahl_speedup,
    gustafson_speedup,
    parallel_efficiency,
)


class TestScalingLaws:
    def test_amdahl_limits(self):
        assert amdahl_speedup(1, 0.1) == pytest.approx(1.0)
        assert amdahl_speedup(10**6, 0.1) == pytest.approx(10.0, rel=1e-3)

    def test_amdahl_fully_parallel(self):
        np.testing.assert_allclose(amdahl_speedup(np.array([1, 2, 8]), 0.0), [1, 2, 8])

    def test_gustafson_linear_when_fully_parallel(self):
        np.testing.assert_allclose(gustafson_speedup(np.array([1, 4, 16]), 0.0), [1, 4, 16])

    def test_gustafson_above_amdahl(self):
        n = np.array([2, 4, 8, 16])
        assert np.all(gustafson_speedup(n, 0.2) >= amdahl_speedup(n, 0.2))

    def test_parallel_efficiency(self):
        assert parallel_efficiency(4.0, 8) == pytest.approx(0.5)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.5)
        with pytest.raises(ValueError):
            gustafson_speedup(-1, 0.2)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0)


class TestSpeedupTable:
    def test_rows_and_speedups(self):
        table = SpeedupTable("demo")
        table.add("1x1", 1, 100.0)
        table.add("2x2", 4, 30.0)
        table.add("4x4", 16, 10.0)
        speedups = table.speedups()
        np.testing.assert_allclose(speedups, [1.0, 100 / 30, 10.0])
        rows = table.rows()
        assert rows[2]["speedup"] == 10.0
        assert rows[1]["workers"] == 4

    def test_efficiency_column(self):
        table = SpeedupTable("demo")
        table.add("serial", 1, 50.0)
        table.add("parallel", 10, 10.0)
        np.testing.assert_allclose(table.efficiencies(), [1.0, 0.5])

    def test_invalid_measurements_rejected(self):
        table = SpeedupTable("demo")
        with pytest.raises(ValueError):
            table.add("bad", 0, 1.0)
        with pytest.raises(ValueError):
            table.add("bad", 1, 0.0)
        with pytest.raises(ValueError):
            table.speedups()
