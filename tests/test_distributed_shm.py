"""Tests for the shared-memory array transport (:mod:`repro.distributed.shm`).

The invariants under test, in rough order of importance:

* **byte identity** — results through the shm process path equal the serial
  reference bit for bit (Hypothesis-driven across executors);
* **no leaks** — no ``/dev/shm/repro_shm_*`` segment survives a job, a
  worker exception, or an engine close;
* **read-only views** — workers (and in-process attachers) can never mutate
  the driver's pages through an attached view;
* **safe eviction** — the worker attachment cache never closes a segment
  that still has live views on it (the silent-corruption regression).
"""

import os
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import shm
from repro.distributed.mapreduce import MapReduceEngine
from repro.distributed.shm import (
    SHM_PREFIX,
    ArrayDescriptor,
    SharedArrayStore,
    attach_view,
    dumps_shared,
)

_DEV_SHM = Path("/dev/shm")

needs_dev_shm = pytest.mark.skipif(
    not _DEV_SHM.is_dir(), reason="requires a /dev/shm filesystem to audit"
)


def _live_segments() -> set[str]:
    """Names of every repro-owned shared-memory segment currently linked."""
    if not _DEV_SHM.is_dir():
        return set()
    return {p.name for p in _DEV_SHM.glob(f"{SHM_PREFIX}*")}


# -- module-level map/reduce functions (process executor needs picklables) --


def _sum_chunk(chunk):
    return {name: float(np.sum(np.asarray(a, dtype=np.float64))) for name, a in chunk.items()}


def _merge_sums(parts):
    out: dict = {}
    for part in parts:
        for name, value in part.items():
            out[name] = out.get(name, 0.0) + value
    return out


def _identity_chunk(chunk):
    return {name: np.array(a, copy=True) for name, a in chunk.items()}


def _concat_chunks(parts):
    return {
        name: np.concatenate([p[name] for p in parts])
        for name in (parts[0] if parts else {})
    }


def _raise_chunk(chunk):
    raise ValueError("intentional worker failure")


def _attempt_write(chunk):
    flags = {}
    for name, a in chunk.items():
        flags[name] = bool(a.flags.writeable)
        try:
            a[...] = 0
        except (ValueError, TypeError):
            pass
    return flags


def _die_abruptly(chunk):
    os._exit(17)


class TestSharedArrayStore:
    def test_put_round_trip_bytes_identical(self):
        rng = np.random.default_rng(7)
        arr = rng.standard_normal((64, 33))
        with SharedArrayStore() as store:
            desc = store.put(arr)
            view = attach_view(desc)
            assert view.dtype == arr.dtype
            assert view.shape == arr.shape
            assert view.tobytes() == arr.tobytes()
            del view

    def test_put_copies_input(self):
        arr = np.arange(100.0)
        with SharedArrayStore() as store:
            desc = store.put(arr)
            arr[...] = -1.0  # mutate the original after publishing
            view = attach_view(desc)
            np.testing.assert_array_equal(view, np.arange(100.0))
            del view

    def test_put_rejects_object_and_empty_arrays(self):
        with SharedArrayStore() as store:
            with pytest.raises(ValueError):
                store.put(np.array([{"a": 1}], dtype=object))
            with pytest.raises(ValueError):
                store.put(np.empty((0, 3)))

    def test_publish_single_segment_with_aligned_offsets(self):
        rng = np.random.default_rng(11)
        arrays = {
            "a": rng.standard_normal(1000),
            "b": rng.integers(0, 2**31, size=777, dtype=np.int64),
            "c": rng.standard_normal((13, 17)).astype(np.float32),
            "empty": np.empty(0, dtype=np.float64),
        }
        with SharedArrayStore() as store:
            descriptors = store.publish(arrays)
            segments = {d.segment for d in descriptors.values()}
            assert len(segments) == 1  # one arena, however many arrays
            assert len(store.segment_names) == 1
            for name, desc in descriptors.items():
                assert desc.offset % 64 == 0
                if desc.nbytes:
                    view = attach_view(desc)
                    assert view.tobytes() == arrays[name].tobytes()
                    del view

    def test_publish_all_empty_raises(self):
        with SharedArrayStore() as store:
            with pytest.raises(ValueError):
                store.publish({"a": np.empty(0), "b": np.empty((0, 4))})

    @needs_dev_shm
    def test_close_unlinks_and_is_idempotent(self):
        store = SharedArrayStore()
        store.put(np.ones(2048))
        names = set(store.segment_names)
        assert names <= _live_segments()
        store.close()
        assert not (names & _live_segments())
        store.close()  # idempotent

    @needs_dev_shm
    def test_finalizer_unlinks_on_garbage_collection(self):
        store = SharedArrayStore()
        store.put(np.ones(2048))
        names = set(store.segment_names)
        assert names <= _live_segments()
        del store
        assert not (names & _live_segments())

    @needs_dev_shm
    def test_close_with_live_driver_view_still_unlinks(self):
        store = SharedArrayStore()
        view = attach_view(store.put(np.arange(4096.0)))
        names = set(store.segment_names)
        store.close()
        # The file is unlinked even though this process still maps it; the
        # mapping stays valid until the view dies.
        assert not (names & _live_segments())
        np.testing.assert_array_equal(view, np.arange(4096.0))
        del view


class TestAttachView:
    def test_views_are_read_only(self):
        with SharedArrayStore() as store:
            view = attach_view(store.put(np.ones(512)))
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 2.0
            del view

    def test_eviction_never_closes_segments_with_live_views(self):
        """Regression: evicting an attached segment under live views silently
        remapped their pages to the *next* attached segment's data."""
        n = shm._ATTACH_CAPACITY * 2
        with SharedArrayStore() as store:
            descriptors = [store.put(np.full(1024, float(i))) for i in range(n)]
            views = [attach_view(d) for d in descriptors]
            # Every view must still read its own segment's data, even though
            # attachments exceeded the cache capacity while all were live.
            for i, view in enumerate(views):
                np.testing.assert_array_equal(view, np.full(1024, float(i)))
            assert len(shm._ATTACHED) >= n  # nothing evictable was evicted
            del views
            # With the views dead, a fresh attach shrinks the cache back.
            extra = attach_view(store.put(np.zeros(1024)))
            assert len(shm._ATTACHED) <= shm._ATTACH_CAPACITY
            del extra

    def test_attach_same_segment_twice_reuses_mapping(self):
        with SharedArrayStore() as store:
            desc = store.put(np.arange(256.0))
            before = len(shm._ATTACHED)
            v1 = attach_view(desc)
            v2 = attach_view(desc)
            assert len(shm._ATTACHED) <= before + 1
            np.testing.assert_array_equal(v1, v2)
            del v1, v2

    def test_descriptor_nbytes(self):
        desc = ArrayDescriptor(segment="x", dtype="<f8", shape=(10, 3), offset=0)
        assert desc.nbytes == 240
        empty = ArrayDescriptor(segment="x", dtype="<f8", shape=(0, 3), offset=0)
        assert empty.nbytes == 0


class TestDumpsShared:
    def test_round_trip_nested_payload(self):
        rng = np.random.default_rng(3)
        payload = {
            "big": rng.standard_normal(4096),
            "small": np.arange(4.0),
            "meta": ("granule", 17, {"nested": rng.standard_normal((64, 64))}),
        }
        with SharedArrayStore() as store:
            blob = dumps_shared(payload, store, min_bytes=1024)
            out = pickle.loads(blob)
            np.testing.assert_array_equal(out["big"], payload["big"])
            np.testing.assert_array_equal(out["small"], payload["small"])
            np.testing.assert_array_equal(
                out["meta"][2]["nested"], payload["meta"][2]["nested"]
            )
            # Large leaves travelled as descriptors → reattached read-only;
            # small ones were pickled by value and stay writable.
            assert not out["big"].flags.writeable
            assert out["small"].flags.writeable
            del out

    def test_min_bytes_threshold_controls_routing(self):
        arr = np.ones(100)  # 800 bytes
        with SharedArrayStore() as store:
            dumps_shared({"a": arr}, store, min_bytes=10_000)
            assert store.segment_names == ()
            dumps_shared({"a": arr}, store, min_bytes=1)
            assert len(store.segment_names) == 1


@needs_dev_shm
class TestNoLeaks:
    def test_map_arrays_process_leaves_no_segments(self):
        before = _live_segments()
        with MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            rng = np.random.default_rng(5)
            arrays = {"x": rng.standard_normal(10_000), "y": rng.standard_normal(10_000)}
            result = engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            assert result.value["x"] == pytest.approx(float(arrays["x"].sum()))
        assert _live_segments() <= before

    def test_worker_exception_leaves_no_segments(self):
        before = _live_segments()
        with MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            arrays = {"x": np.ones(10_000)}
            with pytest.raises(ValueError, match="intentional worker failure"):
                engine.map_arrays(arrays, _raise_chunk, _merge_sums)
            # The engine survives the failure and still computes correctly.
            result = engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            assert result.value["x"] == pytest.approx(10_000.0)
        assert _live_segments() <= before

    def test_run_with_array_items_leaves_no_segments(self):
        before = _live_segments()
        items = [np.full(5_000, float(i)) for i in range(6)]
        with MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            result = engine.run(
                lambda: items,
                _sum_items,
                sum,
            )
            assert result.value == pytest.approx(sum(float(a.sum()) for a in items))
        assert _live_segments() <= before

    def test_broken_pool_recovers_and_leaves_no_segments(self):
        before = _live_segments()
        from concurrent.futures.process import BrokenProcessPool

        with MapReduceEngine(
            n_partitions=2, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            arrays = {"x": np.ones(10_000)}
            with pytest.raises(BrokenProcessPool):
                engine.map_arrays(arrays, _die_abruptly, _merge_sums)
            # The broken pool was discarded; the next job respawns and works.
            result = engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            assert result.value["x"] == pytest.approx(10_000.0)
        assert _live_segments() <= before


def _sum_items(partition):
    return sum(float(np.sum(a)) for a in partition)


class TestEngineIntegration:
    def test_workers_see_read_only_views(self):
        with MapReduceEngine(
            n_partitions=2, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            arrays = {"x": np.ones(10_000)}
            result = engine.map_arrays(arrays, _attempt_write, _keep_parts)
            assert all(not flags["x"] for flags in result.value)
            # The driver's copy was never corrupted through the view.
            np.testing.assert_array_equal(arrays["x"], np.ones(10_000))

    def test_pool_reused_across_jobs(self):
        with MapReduceEngine(
            n_partitions=2, executor="process", max_workers=2, shm_min_bytes=1
        ) as engine:
            arrays = {"x": np.ones(10_000)}
            engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            pool_first = engine._pool_box[0]
            engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            assert engine._pool_box[0] is pool_first

    def test_closed_engine_respawns(self):
        engine = MapReduceEngine(
            n_partitions=2, executor="process", max_workers=2, shm_min_bytes=1
        )
        try:
            arrays = {"x": np.ones(10_000)}
            first = engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            engine.close()
            assert engine._pool_box == []
            second = engine.map_arrays(arrays, _sum_chunk, _merge_sums)
            assert second.value == first.value
        finally:
            engine.close()

    def test_shm_off_matches_shm_on(self):
        rng = np.random.default_rng(23)
        arrays = {
            "x": rng.standard_normal(9_999),
            "y": rng.integers(0, 100, size=9_999).astype(np.float32),
        }
        with MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, shm_min_bytes=1
        ) as shm_engine, MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, use_shm=False
        ) as plain_engine:
            a = shm_engine.map_arrays(arrays, _identity_chunk, _concat_chunks)
            b = plain_engine.map_arrays(arrays, _identity_chunk, _concat_chunks)
            for name in arrays:
                assert a.value[name].tobytes() == b.value[name].tobytes()


def _keep_parts(parts):
    return list(parts)


# -- Hypothesis: executor equivalence through the shm path -------------------

_ENGINES: dict[str, MapReduceEngine] = {}


@pytest.fixture(scope="module")
def engines():
    """Persistent engines shared across Hypothesis examples (pool reuse)."""
    if not _ENGINES:
        _ENGINES["serial"] = MapReduceEngine(n_partitions=3, executor="serial")
        _ENGINES["thread"] = MapReduceEngine(n_partitions=3, executor="thread", max_workers=2)
        _ENGINES["process"] = MapReduceEngine(
            n_partitions=3, executor="process", max_workers=2, shm_min_bytes=1
        )
    yield _ENGINES
    for engine in _ENGINES.values():
        engine.close()
    _ENGINES.clear()


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=0,
        max_size=400,
    ),
    dtype=st.sampled_from(["float64", "float32", "int32"]),
    n_partitions=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=25, deadline=None)
def test_property_executors_byte_identical(engines, values, dtype, n_partitions):
    """serial == thread == process(+shm) on the exact output bytes."""
    data = np.asarray(values, dtype=np.float64).astype(dtype)
    arrays = {"v": data, "w": np.arange(data.shape[0], dtype=np.float64)}
    outputs = {}
    for name, engine in engines.items():
        result = engine.map_arrays(
            arrays, _identity_chunk, _concat_chunks, n_partitions=n_partitions
        )
        outputs[name] = result.value
    reference = outputs["serial"]
    for name in ("thread", "process"):
        for key in arrays:
            assert outputs[name][key].dtype == reference[key].dtype
            assert outputs[name][key].tobytes() == reference[key].tobytes()


@needs_dev_shm
def test_property_runs_leaked_nothing():
    """Companion to the property test above: the module leaves /dev/shm clean.

    Runs after the Hypothesis test in file order; any segment named with our
    prefix still linked at this point escaped a store's lifetime.
    """
    assert not _live_segments()
