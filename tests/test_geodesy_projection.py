"""Tests for the Antarctic polar stereographic projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy.projection import PolarStereographic, antarctic_polar_stereographic


@pytest.fixture(scope="module")
def proj():
    return antarctic_polar_stereographic()


class TestForward:
    def test_south_pole_maps_to_origin(self, proj):
        x, y = proj.forward(-90.0, 0.0)
        assert abs(x) < 1e-6
        assert abs(y) < 1e-6

    def test_central_meridian_maps_to_positive_y_axis(self, proj):
        # In the south polar aspect, a point on the central meridian north of
        # the pole projects onto the +y axis (grid north).
        x, y = proj.forward(-75.0, 0.0)
        assert abs(x) < 1e-6
        assert y > 0

    def test_ross_sea_point_magnitude(self, proj):
        # A point at -75 latitude should project to a radius of roughly
        # 15 degrees of latitude from the pole (~1670 km), scaled by k.
        x, y = proj.forward(-75.0, -170.0)
        radius = np.hypot(x, y)
        assert 1_500_000 < radius < 1_800_000

    def test_latitude_out_of_range_rejected(self, proj):
        with pytest.raises(ValueError):
            proj.forward(95.0, 0.0)

    def test_standard_parallel_cannot_be_zero(self):
        with pytest.raises(ValueError):
            PolarStereographic(standard_parallel_deg=0.0)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "lat,lon",
        [(-70.0, -180.0), (-78.0, -140.0), (-75.0, -160.0), (-71.5, -155.3), (-89.9, 10.0)],
    )
    def test_inverse_recovers_geodetic(self, proj, lat, lon):
        x, y = proj.forward(lat, lon)
        lat2, lon2 = proj.inverse(x, y)
        assert lat2 == pytest.approx(lat, abs=1e-9)
        assert abs(((lon2 - lon) + 180.0) % 360.0 - 180.0) < 1e-8

    def test_vectorised_round_trip(self, proj, rng):
        lat = rng.uniform(-78.0, -70.0, 200)
        lon = rng.uniform(-180.0, -140.0, 200)
        x, y = proj.forward(lat, lon)
        lat2, lon2 = proj.inverse(x, y)
        np.testing.assert_allclose(lat2, lat, atol=1e-9)
        np.testing.assert_allclose(lon2, lon, atol=1e-8)

    @given(
        lat=st.floats(min_value=-85.0, max_value=-60.0),
        lon=st.floats(min_value=-180.0, max_value=180.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, lat, lon):
        proj = antarctic_polar_stereographic()
        x, y = proj.forward(lat, lon)
        lat2, lon2 = proj.inverse(x, y)
        assert lat2 == pytest.approx(lat, abs=1e-8)
        assert abs(((lon2 - lon) + 180.0) % 360.0 - 180.0) < 1e-7


class TestScale:
    def test_true_scale_at_standard_parallel(self, proj):
        k = proj.scale_factor(np.array([-70.0]))
        assert k[0] == pytest.approx(1.0, abs=1e-9)

    def test_scale_below_one_toward_pole(self, proj):
        k = proj.scale_factor(np.array([-80.0]))
        assert k[0] < 1.0

    def test_local_distance_preserved_near_standard_parallel(self, proj):
        # Two points 1 km apart on the ground near -70 latitude should map to
        # nearly 1 km apart in the projection (k ~= 1).
        lat = -70.0
        dlat = 1_000.0 / 111_000.0
        x1, y1 = proj.forward(lat, -170.0)
        x2, y2 = proj.forward(lat + dlat, -170.0)
        d = np.hypot(x2 - x1, y2 - y1)
        assert d == pytest.approx(1_000.0, rel=0.01)


class TestGridCornerRoundTrip:
    """Round trips at the points the Level-3 grid actually relies on.

    The grid's cell-centre lat/lon layer inverts the projection at every
    cell centre; these tests pin the forward/inverse agreement at grid-cell
    corners across a campaign-scale Ross Sea extent and at the latitudes
    where the formulas are numerically touchiest (the standard parallel,
    where t/t_c cancellation is exact, and the immediate vicinity of the
    pole, where rho -> 0).
    """

    def test_round_trip_at_grid_cell_corners(self, proj):
        from repro.geodesy.grid import GridDefinition

        grid = GridDefinition(
            x_min_m=-350_000.0, y_min_m=-1_250_000.0, cell_size_m=25_000.0, nx=8, ny=8
        )
        x_edges, y_edges = grid.cell_edges()
        x = np.repeat(x_edges, y_edges.size)
        y = np.tile(y_edges, x_edges.size)
        lat, lon = proj.inverse(x, y)
        x2, y2 = proj.forward(lat, lon)
        np.testing.assert_allclose(x2, x, atol=1e-6)
        np.testing.assert_allclose(y2, y, atol=1e-6)

    @pytest.mark.parametrize("lon", [-180.0, -90.0, 0.0, 45.0, 179.9])
    def test_round_trip_on_the_standard_parallel(self, proj, lon):
        # Scale is exactly 1 here; forward/inverse must agree tightly.
        x, y = proj.forward(-70.0, lon)
        lat2, lon2 = proj.inverse(x, y)
        assert lat2 == pytest.approx(-70.0, abs=1e-9)
        assert abs(((lon2 - lon) + 180.0) % 360.0 - 180.0) < 1e-8

    @pytest.mark.parametrize("lat", [-89.0, -89.9, -89.999, -89.99999])
    def test_round_trip_near_the_pole(self, proj, lat):
        # rho shrinks toward 0 near the pole; the conformal-latitude
        # iteration must still recover the latitude to sub-metre precision
        # (1e-8 deg is ~1 mm on the ground).
        for lon in (-135.0, 0.0, 60.0):
            x, y = proj.forward(lat, lon)
            lat2, lon2 = proj.inverse(x, y)
            assert lat2 == pytest.approx(lat, abs=1e-8)
            assert abs(((lon2 - lon) + 180.0) % 360.0 - 180.0) < 1e-6

    def test_exact_pole_round_trip(self, proj):
        x, y = proj.forward(-90.0, 123.0)
        lat2, lon2 = proj.inverse(x, y)
        assert lat2 == pytest.approx(-90.0, abs=1e-9)

    def test_cell_center_latlon_consistency_with_scalar_inverse(self, proj):
        # The vectorised grid lookup must match per-point scalar inversion.
        from repro.geodesy.grid import GridDefinition

        grid = GridDefinition(
            x_min_m=-350_000.0, y_min_m=-1_250_000.0, cell_size_m=10_000.0, nx=3, ny=3
        )
        lat, lon = grid.cell_center_latlon()
        x, y = grid.cell_centers()
        for i in range(3):
            for j in range(3):
                lat_ij, lon_ij = proj.inverse(x[i, j], y[i, j])
                assert lat[i, j] == pytest.approx(float(lat_ij), abs=1e-12)
                assert lon[i, j] == pytest.approx(float(lon_ij), abs=1e-12)
