"""Tests for the signal-confidence classification."""

import numpy as np
import pytest

from repro.atl03.confidence import (
    SIGNAL_CONF_HIGH,
    SIGNAL_CONF_LOW,
    SIGNAL_CONF_NOISE,
    classify_confidence,
)


def _synthetic_cloud(rng, n_signal=2000, n_noise=400, surface=1.0):
    """Signal photons at a surface plus uniform background noise."""
    along_signal = rng.uniform(0, 1000, n_signal)
    height_signal = rng.normal(surface, 0.1, n_signal)
    along_noise = rng.uniform(0, 1000, n_noise)
    height_noise = rng.uniform(surface - 15, surface + 15, n_noise)
    along = np.concatenate([along_signal, along_noise])
    height = np.concatenate([height_signal, height_noise])
    is_signal = np.concatenate([np.ones(n_signal, bool), np.zeros(n_noise, bool)])
    return along, height, is_signal


class TestClassifyConfidence:
    def test_signal_photons_get_high_confidence(self, rng):
        along, height, is_signal = _synthetic_cloud(rng)
        conf = classify_confidence(along, height)
        assert np.mean(conf[is_signal] >= 3) > 0.95

    def test_far_noise_gets_low_confidence(self, rng):
        along, height, is_signal = _synthetic_cloud(rng)
        conf = classify_confidence(along, height)
        far_noise = ~is_signal & (np.abs(height - 1.0) > 5.0)
        assert np.mean(conf[far_noise] <= SIGNAL_CONF_LOW) > 0.95

    def test_tracks_surface_slope(self, rng):
        # A sloping surface: the modal height moves bin to bin and confident
        # photons must follow it.
        along = np.sort(rng.uniform(0, 2000, 4000))
        surface = 0.002 * along  # 4 m rise over the track
        height = surface + rng.normal(0, 0.05, along.size)
        conf = classify_confidence(along, height, bin_length_m=50.0)
        assert np.mean(conf >= 3) > 0.9

    def test_empty_input(self):
        conf = classify_confidence(np.empty(0), np.empty(0))
        assert conf.shape == (0,)
        assert conf.dtype == np.int8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            classify_confidence(np.zeros(3), np.zeros(4))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            classify_confidence(np.zeros(3), np.zeros(3), surface_window_m=0.0)
        with pytest.raises(ValueError):
            classify_confidence(np.zeros(3), np.zeros(3), bin_length_m=-1.0)

    def test_confidence_values_are_valid_grades(self, beam):
        valid = {SIGNAL_CONF_NOISE, SIGNAL_CONF_LOW, 3, SIGNAL_CONF_HIGH}
        assert set(np.unique(beam.signal_conf)).issubset(valid)

    def test_single_photon(self):
        conf = classify_confidence(np.array([5.0]), np.array([0.3]))
        assert conf[0] == SIGNAL_CONF_HIGH  # it is its own mode
