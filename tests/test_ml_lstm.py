"""Tests for the LSTM layer, including full BPTT gradient checks."""

import numpy as np
import pytest

from repro.ml.lstm import LSTM


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestLSTMForward:
    def test_output_shape_last_state(self, rng):
        layer = LSTM(n_inputs=6, n_units=8, rng=0)
        x = rng.normal(size=(4, 5, 6))
        out = layer.forward(x)
        assert out.shape == (4, 8)

    def test_output_shape_sequences(self, rng):
        layer = LSTM(n_inputs=3, n_units=4, return_sequences=True, rng=0)
        x = rng.normal(size=(2, 7, 3))
        out = layer.forward(x)
        assert out.shape == (2, 7, 4)

    def test_wrong_input_shape_rejected(self, rng):
        layer = LSTM(n_inputs=6, n_units=4, rng=0)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 6)))
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 5, 7)))

    def test_deterministic_given_weights(self, rng):
        a = LSTM(6, 4, rng=3)
        b = LSTM(6, 4, rng=3)
        x = rng.normal(size=(2, 5, 6))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_longer_history_changes_output(self, rng):
        """The final state must depend on early time steps (memory works)."""
        layer = LSTM(2, 3, rng=1)
        x = rng.normal(size=(1, 6, 2))
        out1 = layer.forward(x)
        x_modified = x.copy()
        x_modified[0, 0, :] += 2.0  # change only the first time step
        out2 = layer.forward(x_modified)
        assert not np.allclose(out1, out2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LSTM(0, 4)
        with pytest.raises(ValueError):
            LSTM(4, 4, activation="sigmoid")


class TestLSTMBackward:
    @pytest.mark.parametrize("activation", ["elu", "tanh"])
    def test_input_gradient_matches_numerical(self, rng, activation):
        layer = LSTM(n_inputs=3, n_units=4, activation=activation, rng=2)
        x = rng.normal(size=(2, 4, 3))
        upstream = rng.normal(size=(2, 4))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        grad = layer.backward(upstream)
        np.testing.assert_allclose(grad, numerical_gradient(loss, x), atol=1e-5)

    def test_parameter_gradients_match_numerical(self, rng):
        layer = LSTM(n_inputs=2, n_units=3, rng=4)
        x = rng.normal(size=(3, 3, 2))
        upstream = rng.normal(size=(3, 3))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        layer.backward(upstream)
        for param, grad, name in zip(layer.params, layer.grads, ("W", "U", "b")):
            numeric = numerical_gradient(loss, param)
            np.testing.assert_allclose(grad, numeric, atol=2e-5, err_msg=name)

    def test_sequence_gradient_matches_numerical(self, rng):
        layer = LSTM(n_inputs=2, n_units=2, return_sequences=True, rng=5)
        x = rng.normal(size=(2, 3, 2))
        upstream = rng.normal(size=(2, 3, 2))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        grad = layer.backward(upstream)
        np.testing.assert_allclose(grad, numerical_gradient(loss, x), atol=1e-5)

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            LSTM(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_gradient_shape_mismatch_rejected(self, rng):
        layer = LSTM(2, 3, rng=0)
        layer.forward(rng.normal(size=(2, 4, 2)))
        with pytest.raises(ValueError):
            layer.backward(np.zeros((2, 4)))


class TestLSTMParameters:
    def test_parameter_count(self):
        layer = LSTM(n_inputs=6, n_units=16)
        # 4 gates: W (6x64) + U (16x64) + b (64)
        assert layer.n_parameters == 6 * 64 + 16 * 64 + 64

    def test_forget_gate_bias_initialised_to_one(self):
        layer = LSTM(3, 5)
        np.testing.assert_allclose(layer.b[:5], 1.0)
        np.testing.assert_allclose(layer.b[5:], 0.0)
