"""Tests for the timing utilities used by the map-reduce engine."""

import time

import pytest

from repro.utils.timing import Stopwatch, TimingRecord, time_call, timed


class TestTimingRecord:
    def test_add_and_get(self):
        rec = TimingRecord()
        rec.add("load", 1.5)
        rec.add("load", 0.5)
        rec.add("map", 0.25)
        assert rec.get("load") == pytest.approx(2.0)
        assert rec.get("map") == pytest.approx(0.25)
        assert rec.get("missing") == 0.0
        assert rec.counts["load"] == 2

    def test_total(self):
        rec = TimingRecord()
        rec.add("a", 1.0)
        rec.add("b", 2.0)
        assert rec.total() == pytest.approx(3.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord().add("a", -0.1)

    def test_merge_does_not_mutate_inputs(self):
        a = TimingRecord({"x": 1.0}, {"x": 1})
        b = TimingRecord({"x": 2.0, "y": 3.0}, {"x": 1, "y": 1})
        merged = a.merge(b)
        assert merged.get("x") == pytest.approx(3.0)
        assert merged.get("y") == pytest.approx(3.0)
        assert a.get("x") == pytest.approx(1.0)

    def test_as_dict_is_copy(self):
        rec = TimingRecord({"a": 1.0}, {"a": 1})
        d = rec.as_dict()
        d["a"] = 99.0
        assert rec.get("a") == pytest.approx(1.0)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        elapsed = sw.stop()
        assert elapsed >= 0.009

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_accumulates_across_starts(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        first = sw.elapsed
        sw.start()
        total = sw.stop()
        assert total >= first

    def test_reset(self):
        sw = Stopwatch()
        sw.start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0
        assert not sw.running

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestTimedContext:
    def test_adds_elapsed_to_record(self):
        rec = TimingRecord()
        with timed(rec, "stage"):
            time.sleep(0.005)
        assert rec.get("stage") >= 0.004

    def test_records_even_when_body_raises(self):
        rec = TimingRecord()
        with pytest.raises(RuntimeError):
            with timed(rec, "stage"):
                raise RuntimeError("boom")
        assert rec.get("stage") >= 0.0
        assert rec.counts["stage"] == 1


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0
