"""Tests for the shared :class:`GridDefinition` indexing helper.

Covers the point -> cell arithmetic every raster consumer shares (the S2
overlay, the parallel auto-labeling job, Level-3 binning), the geodetic
cell-centre lookup, the serialisation round trip, and the equivalence of
the refactored ``S2Image.pixel_index``/``contains`` delegation with the
historical ad-hoc arithmetic.
"""

import numpy as np
import pytest

from repro.geodesy.grid import GridDefinition
from repro.geodesy.projection import antarctic_polar_stereographic


@pytest.fixture()
def grid():
    return GridDefinition(x_min_m=-1000.0, y_min_m=2000.0, cell_size_m=250.0, nx=8, ny=4)


class TestDefinition:
    def test_shape_and_extent(self, grid):
        assert grid.shape == (4, 8)
        assert grid.n_cells == 32
        assert grid.x_max_m == 1000.0
        assert grid.y_max_m == 3000.0

    def test_from_extent_rounds_cell_count_up(self):
        g = GridDefinition.from_extent(0.0, 1001.0, 0.0, 400.0, 250.0)
        assert (g.nx, g.ny) == (5, 2)
        assert g.x_max_m >= 1001.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GridDefinition(0.0, 0.0, 0.0, 4, 4)
        with pytest.raises(ValueError):
            GridDefinition(0.0, 0.0, 10.0, 0, 4)
        with pytest.raises(ValueError):
            GridDefinition.from_extent(0.0, 0.0, 0.0, 100.0, 10.0)


class TestDegenerateGrids:
    """Degenerate grids fail at construction with a clear ValueError,
    never later inside binning."""

    def test_zero_extent_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            GridDefinition.from_extent(5.0, 5.0, 0.0, 100.0, 10.0)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            GridDefinition.from_extent(0.0, 100.0, 50.0, -50.0, 10.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_extent_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            GridDefinition.from_extent(0.0, bad, 0.0, 100.0, 10.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -10.0])
    def test_bad_cell_size_rejected_in_from_extent(self, bad):
        # NaN is the historical trap: `nan <= 0` is False, so it used to
        # slip through and produce rows/cols of 0 deep inside binning.
        with pytest.raises(ValueError):
            GridDefinition.from_extent(0.0, 100.0, 0.0, 100.0, bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -10.0])
    def test_bad_cell_size_rejected_in_constructor(self, bad):
        with pytest.raises(ValueError):
            GridDefinition(0.0, 0.0, bad, 4, 4)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_origin_rejected(self, bad):
        with pytest.raises(ValueError, match="finite"):
            GridDefinition(bad, 0.0, 10.0, 4, 4)
        with pytest.raises(ValueError, match="finite"):
            GridDefinition(0.0, bad, 10.0, 4, 4)

    @pytest.mark.parametrize("nx,ny", [(0, 4), (4, 0), (-1, 4), (4, -1)])
    def test_zero_rows_or_cols_rejected(self, nx, ny):
        with pytest.raises(ValueError, match="at least one column and one row"):
            GridDefinition(0.0, 0.0, 10.0, nx, ny)

    def test_boundary_extent_exactly_one_cell(self):
        g = GridDefinition.from_extent(0.0, 10.0, 0.0, 10.0, 10.0)
        assert (g.nx, g.ny) == (1, 1)

    def test_boundary_extent_just_past_one_cell(self):
        g = GridDefinition.from_extent(0.0, 10.0 + 1e-6, 0.0, 10.0, 10.0)
        assert (g.nx, g.ny) == (2, 1)

    def test_cell_size_larger_than_extent_is_one_cell(self):
        g = GridDefinition.from_extent(0.0, 10.0, 0.0, 10.0, 1e6)
        assert (g.nx, g.ny) == (1, 1)
        assert g.contains(np.array([5.0]), np.array([5.0])).all()

    def test_tiny_positive_extent_is_valid(self):
        g = GridDefinition.from_extent(0.0, 1e-9, 0.0, 1e-9, 10.0)
        assert (g.nx, g.ny) == (1, 1)


class TestIndexing:
    def test_contains_half_open_edges(self, grid):
        x = np.array([-1000.0, 999.9999, 1000.0, -1000.1])
        y = np.array([2000.0, 2999.9999, 2500.0, 2500.0])
        np.testing.assert_array_equal(grid.contains(x, y), [True, True, False, False])

    def test_nan_points_are_outside(self, grid):
        assert not grid.contains(np.array([np.nan]), np.array([2500.0]))[0]

    def test_cell_index_matches_manual_arithmetic(self, grid):
        rng = np.random.default_rng(5)
        x = rng.uniform(-1000.0, 1000.0, 500)
        y = rng.uniform(2000.0, 3000.0, 500)
        row, col = grid.cell_index(x, y)
        np.testing.assert_array_equal(col, np.floor((x + 1000.0) / 250.0).astype(np.intp))
        np.testing.assert_array_equal(row, np.floor((y - 2000.0) / 250.0).astype(np.intp))

    def test_clip_snaps_outside_points_to_edge_cells(self, grid):
        row, col = grid.cell_index(np.array([-5000.0, 5000.0]), np.array([0.0, 9000.0]), clip=True)
        np.testing.assert_array_equal(row, [0, 3])
        np.testing.assert_array_equal(col, [0, 7])

    def test_flat_index_marks_outside_with_minus_one(self, grid):
        x = np.array([-999.0, 1500.0, np.nan])
        y = np.array([2001.0, 2500.0, 2500.0])
        flat = grid.flat_index(x, y)
        assert flat[0] == 0
        assert flat[1] == -1 and flat[2] == -1

    def test_flat_index_consistent_with_row_col(self, grid):
        rng = np.random.default_rng(7)
        x = rng.uniform(-1000.0, 1000.0, 300)
        y = rng.uniform(2000.0, 3000.0, 300)
        row, col = grid.cell_index(x, y)
        np.testing.assert_array_equal(grid.flat_index(x, y), row * grid.nx + col)


class TestCellCoordinates:
    def test_edges_and_centers(self, grid):
        x_edges, y_edges = grid.cell_edges()
        assert x_edges.shape == (9,) and y_edges.shape == (5,)
        x, y = grid.cell_centers()
        assert x.shape == grid.shape
        assert x[0, 0] == -875.0 and y[0, 0] == 2125.0
        # Centres sit strictly inside their own cells.
        row, col = grid.cell_index(x.ravel(), y.ravel())
        np.testing.assert_array_equal(
            row.reshape(grid.shape), np.arange(grid.ny)[:, None] * np.ones(grid.nx, dtype=int)
        )

    def test_cell_center_latlon_round_trips(self):
        # A Ross Sea grid: cell centres projected back to lat/lon and forward
        # again must land on the same projected coordinates.
        grid = GridDefinition(
            x_min_m=-350_000.0, y_min_m=-1_250_000.0, cell_size_m=5_000.0, nx=10, ny=10
        )
        lat, lon = grid.cell_center_latlon()
        assert lat.shape == grid.shape
        assert (lat < -60.0).all()
        x, y = grid.cell_centers()
        x2, y2 = grid.projection.forward(lat, lon)
        np.testing.assert_allclose(x2, x, atol=1e-6)
        np.testing.assert_allclose(y2, y, atol=1e-6)


class TestSerialisation:
    def test_dict_round_trip(self, grid):
        restored = GridDefinition.from_dict(grid.as_dict())
        assert restored == grid

    def test_dict_round_trip_preserves_projection(self):
        grid = GridDefinition(
            0.0,
            0.0,
            100.0,
            2,
            2,
            projection=antarctic_polar_stereographic(),
        )
        payload = grid.as_dict()
        assert payload["projection"]["standard_parallel_deg"] == -70.0
        assert GridDefinition.from_dict(payload).projection == grid.projection


class TestS2ImageDelegation:
    """The S2 overlay now routes through the shared helper; semantics must
    match the historical ad-hoc arithmetic exactly."""

    def test_pixel_index_matches_legacy_formula(self, s2_image):
        rng = np.random.default_rng(13)
        ny, nx = s2_image.shape
        x = s2_image.origin_x_m + rng.uniform(-500.0, nx * s2_image.pixel_size_m + 500.0, 800)
        y = s2_image.origin_y_m + rng.uniform(-500.0, ny * s2_image.pixel_size_m + 500.0, 800)
        row, col = s2_image.pixel_index(x, y)
        legacy_col = np.clip(
            np.floor((x - s2_image.origin_x_m) / s2_image.pixel_size_m), 0, nx - 1
        ).astype(np.intp)
        legacy_row = np.clip(
            np.floor((y - s2_image.origin_y_m) / s2_image.pixel_size_m), 0, ny - 1
        ).astype(np.intp)
        np.testing.assert_array_equal(row, legacy_row)
        np.testing.assert_array_equal(col, legacy_col)

    def test_contains_matches_legacy_formula(self, s2_image):
        rng = np.random.default_rng(17)
        ny, nx = s2_image.shape
        x = s2_image.origin_x_m + rng.uniform(-500.0, nx * s2_image.pixel_size_m + 500.0, 800)
        y = s2_image.origin_y_m + rng.uniform(-500.0, ny * s2_image.pixel_size_m + 500.0, 800)
        legacy = (
            (x >= s2_image.origin_x_m)
            & (x < s2_image.origin_x_m + nx * s2_image.pixel_size_m)
            & (y >= s2_image.origin_y_m)
            & (y < s2_image.origin_y_m + ny * s2_image.pixel_size_m)
        )
        np.testing.assert_array_equal(s2_image.contains(x, y), legacy)

    def test_grid_property_mirrors_georeferencing(self, s2_image):
        grid = s2_image.grid
        assert grid.x_min_m == s2_image.origin_x_m
        assert grid.y_min_m == s2_image.origin_y_m
        assert grid.cell_size_m == s2_image.pixel_size_m
        assert grid.shape == s2_image.shape
