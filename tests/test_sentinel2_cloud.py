"""Tests for the thin-cloud and shadow synthesis."""

import numpy as np
import pytest

from repro.sentinel2.cloud import CloudConfig, apply_clouds_and_shadows, synthesize_cloud_fields


class TestCloudConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"thin_cloud_fraction": 1.5},
            {"shadow_fraction": -0.1},
            {"max_optical_depth": -1.0},
            {"shadow_darkening": 2.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CloudConfig(**kwargs)


class TestSynthesizeCloudFields:
    def test_fraction_of_cloudy_pixels(self):
        cfg = CloudConfig(thin_cloud_fraction=0.3)
        tau, shadow = synthesize_cloud_fields((200, 200), cfg, rng=0)
        assert (tau > 0).mean() == pytest.approx(0.3, abs=0.05)
        assert shadow.mean() == pytest.approx(cfg.shadow_fraction, abs=0.02)

    def test_optical_depth_bounded(self):
        cfg = CloudConfig(max_optical_depth=0.6)
        tau, _ = synthesize_cloud_fields((100, 100), cfg, rng=1)
        assert tau.max() <= 0.6 + 1e-12
        assert tau.min() >= 0.0

    def test_zero_cloud_fraction(self):
        cfg = CloudConfig(thin_cloud_fraction=0.0)
        tau, shadow = synthesize_cloud_fields((50, 50), cfg, rng=2)
        assert tau.max() == 0.0
        assert not shadow.any()

    def test_deterministic_in_seed(self):
        cfg = CloudConfig()
        a = synthesize_cloud_fields((64, 64), cfg, rng=5)
        b = synthesize_cloud_fields((64, 64), cfg, rng=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            synthesize_cloud_fields((0, 10), CloudConfig())


class TestApplyCloudsAndShadows:
    def test_clouds_brighten_dark_surfaces(self):
        cfg = CloudConfig(cloud_reflectance=0.85)
        reflect = np.full((4, 10, 10), 0.05)
        tau = np.full((10, 10), 0.8)
        out = apply_clouds_and_shadows(reflect, tau, np.zeros((10, 10), dtype=bool), cfg)
        assert np.all(out > reflect)

    def test_shadows_darken(self):
        cfg = CloudConfig(shadow_darkening=0.5)
        reflect = np.full((4, 10, 10), 0.6)
        shadow = np.zeros((10, 10), dtype=bool)
        shadow[2:5, 2:5] = True
        out = apply_clouds_and_shadows(reflect, np.zeros((10, 10)), shadow, cfg)
        assert np.allclose(out[:, 2:5, 2:5], 0.3)
        assert np.allclose(out[:, 0, 0], 0.6)

    def test_zero_optical_depth_is_identity(self):
        reflect = np.random.default_rng(0).uniform(0, 1, (4, 8, 8))
        out = apply_clouds_and_shadows(
            reflect, np.zeros((8, 8)), np.zeros((8, 8), dtype=bool), CloudConfig()
        )
        np.testing.assert_allclose(out, reflect)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            apply_clouds_and_shadows(np.zeros((4, 8, 8)), np.zeros((6, 6)), np.zeros((8, 8), dtype=bool))
        with pytest.raises(ValueError):
            apply_clouds_and_shadows(np.zeros((8, 8)), np.zeros((8, 8)), np.zeros((8, 8), dtype=bool))
