"""Tests for drift estimation and image re-alignment."""

import numpy as np
import pytest

from repro.labeling.alignment import DriftEstimate, apply_shift, estimate_drift
from repro.sentinel2.scene import render_scene
from repro.sentinel2.segmentation import segment_image


class TestDriftEstimate:
    def test_distance_and_direction(self):
        est = DriftEstimate(dx_m=-300.0, dy_m=300.0, score=0.5, n_candidates=10)
        assert est.distance_m == pytest.approx(np.hypot(300, 300))
        assert est.direction == "NW"

    def test_zero_shift_has_empty_direction(self):
        est = DriftEstimate(0.0, 0.0, 0.1, 5)
        assert est.direction == ""
        assert est.distance_m == 0.0

    @pytest.mark.parametrize(
        "dx,dy,expected",
        [(0, 100, "N"), (100, 0, "E"), (0, -100, "S"), (-100, 0, "W"), (100, 100, "NE")],
    )
    def test_compass_directions(self, dx, dy, expected):
        assert DriftEstimate(dx, dy, 0.0, 1).direction == expected


class TestEstimateDrift:
    def test_recovers_injected_drift(self, scene, segments):
        true_drift = (200.0, -150.0)
        drifted = render_scene(scene, drift_offset_m=true_drift, rng=31)
        seg_result = segment_image(drifted)
        est = estimate_drift(
            drifted,
            seg_result.class_map,
            segments.x_m,
            segments.y_m,
            segments.height_mean_m,
            max_shift_m=400.0,
            coarse_step_m=100.0,
            fine_step_m=25.0,
        )
        # The correcting shift should be close to the negative of the drift.
        assert est.dx_m == pytest.approx(-true_drift[0], abs=100.0)
        assert est.dy_m == pytest.approx(-true_drift[1], abs=100.0)

    def test_no_drift_gives_small_shift(self, s2_image, s2_segmentation, segments):
        est = estimate_drift(
            s2_image,
            s2_segmentation.class_map,
            segments.x_m,
            segments.y_m,
            segments.height_mean_m,
            max_shift_m=300.0,
        )
        assert est.distance_m <= 150.0

    def test_alignment_improves_label_accuracy(self, scene, segments):
        from repro.labeling.autolabel import auto_label_segments

        true_drift = (250.0, 200.0)
        drifted = render_scene(scene, drift_offset_m=true_drift, rng=33)
        seg_result = segment_image(drifted)
        before = auto_label_segments(segments, drifted, seg_result)
        est = estimate_drift(
            drifted, seg_result.class_map, segments.x_m, segments.y_m, segments.height_mean_m
        )
        after = auto_label_segments(segments, apply_shift(drifted, est), seg_result)
        truth = segments.truth_class
        valid_b = before.labels >= 0
        valid_a = after.labels >= 0
        acc_before = (before.labels[valid_b] == truth[valid_b]).mean()
        acc_after = (after.labels[valid_a] == truth[valid_a]).mean()
        assert acc_after >= acc_before - 0.02

    def test_invalid_arguments_rejected(self, s2_image, s2_segmentation, segments):
        with pytest.raises(ValueError):
            estimate_drift(
                s2_image, s2_segmentation.class_map,
                segments.x_m, segments.y_m, segments.height_mean_m,
                coarse_step_m=0.0,
            )
        with pytest.raises(ValueError):
            estimate_drift(
                s2_image, s2_segmentation.class_map,
                segments.x_m[:-1], segments.y_m, segments.height_mean_m,
            )

    def test_all_nan_heights_rejected(self, s2_image, s2_segmentation, segments):
        nan_heights = np.full(segments.n_segments, np.nan)
        with pytest.raises(ValueError):
            estimate_drift(
                s2_image, s2_segmentation.class_map, segments.x_m, segments.y_m, nan_heights
            )


class TestApplyShift:
    def test_shift_moves_origin(self, s2_image):
        est = DriftEstimate(dx_m=120.0, dy_m=-60.0, score=1.0, n_candidates=1)
        shifted = apply_shift(s2_image, est)
        assert shifted.origin_x_m == pytest.approx(s2_image.origin_x_m + 120.0)
        assert shifted.origin_y_m == pytest.approx(s2_image.origin_y_m - 60.0)
