"""Tile pyramids: geometry helpers, level semantics, the build_pyramid stage."""

import numpy as np
import pytest

from repro.config import ServeConfig
from repro.geodesy.grid import GridDefinition
from repro.l3.product import Level3Grid
from repro.serve.pyramid import (
    TilePyramid,
    build_pyramid,
    cut_tile,
    default_pyramid_variables,
    level_shape,
    n_levels_for,
    tile_grid,
    tiles_for_bbox,
)


def make_product(ny=40, nx=60, cell=100.0, seed=0, with_freeboard_weights=True):
    rng = np.random.default_rng(seed)
    grid = GridDefinition(x_min_m=1000.0, y_min_m=-2000.0, cell_size_m=cell, nx=nx, ny=ny)
    n_seg = np.where(rng.random(grid.shape) < 0.6, rng.integers(1, 9, grid.shape), 0)
    n_fb = np.minimum(n_seg, rng.integers(0, 5, grid.shape))
    fb = np.where(n_fb > 0, rng.normal(0.3, 0.1, grid.shape), np.nan)
    variables = {
        "n_segments": n_seg.astype(np.int64),
        "freeboard_mean": fb,
        "thickness_mean": np.where(np.isfinite(fb), fb * 8.0, np.nan),
    }
    if with_freeboard_weights:
        variables["n_freeboard_segments"] = n_fb.astype(np.int64)
    return Level3Grid(
        grid=grid,
        variables=variables,
        metadata={"kind": "mosaic", "granule_ids": ["g000"], "fingerprint": "fp-test"},
    )


class TestGeometryHelpers:
    def test_level_shape_ceil_halves(self):
        assert level_shape((40, 60), 0) == (40, 60)
        assert level_shape((40, 60), 1) == (20, 30)
        assert level_shape((41, 1), 1) == (21, 1)
        with pytest.raises(ValueError):
            level_shape((4, 4), -1)

    def test_n_levels_reduces_until_one_tile(self):
        assert n_levels_for((40, 60), tile_size=64) == 1
        assert n_levels_for((40, 60), tile_size=16) == 3  # 40x60 -> 20x30 -> 10x15
        assert n_levels_for((1, 1), tile_size=1) == 1

    def test_n_levels_respects_cap(self):
        assert n_levels_for((512, 512), tile_size=8, max_levels=2) == 3

    def test_tile_grid_rounds_up(self):
        assert tile_grid((40, 60), 16) == (3, 4)
        assert tile_grid((16, 16), 16) == (1, 1)

    def test_tiles_for_bbox_clamps_to_grid(self):
        tiles = tiles_for_bbox(
            bbox=(900.0, -2100.0, 1900.0, -1100.0),  # overhangs the lower-left
            origin=(1000.0, -2000.0),
            base_cell_size_m=100.0,
            base_shape=(40, 60),
            zoom=0,
            tile_size=16,
        )
        assert tiles == [(0, 0)]

    def test_tiles_for_bbox_misses_grid(self):
        tiles = tiles_for_bbox(
            bbox=(1e6, 1e6, 2e6, 2e6),
            origin=(1000.0, -2000.0),
            base_cell_size_m=100.0,
            base_shape=(40, 60),
            zoom=0,
            tile_size=16,
        )
        assert tiles == []

    def test_degenerate_bbox_rejected(self):
        with pytest.raises(ValueError, match="positive width"):
            tiles_for_bbox((0, 0, 0, 10), (0, 0), 100.0, (4, 4), 0, 2)


class TestBuildPyramid:
    def test_levels_and_grids(self):
        product = make_product()
        pyramid = build_pyramid(product, serve=ServeConfig(tile_size=16))
        assert pyramid.n_levels == 3
        assert pyramid.levels[0].shape == (40, 60)
        assert pyramid.levels[1].shape == (20, 30)
        assert pyramid.levels[2].grid.cell_size_m == 400.0
        assert pyramid.base_grid == product.grid
        assert pyramid.metadata["fingerprint"] == "fp-test"

    def test_default_variables_are_float_layers(self):
        product = make_product()
        names = default_pyramid_variables(product)
        assert "freeboard_mean" in names and "thickness_mean" in names
        assert "n_segments" not in names

    def test_freeboard_layers_weight_by_freeboard_counts(self):
        product = make_product()
        pyramid = build_pyramid(product, serve=ServeConfig(tile_size=16))
        level0 = pyramid.levels[0]
        fb = product.variables["freeboard_mean"]
        n_fb = product.variables["n_freeboard_segments"].astype(float)
        expected = np.where(np.isfinite(fb), n_fb, 0.0)
        np.testing.assert_array_equal(level0.weights["freeboard_mean"], expected)

    def test_overview_conserves_weighted_sum(self):
        # Count-weighted means must conserve sum(w * v) level to level.
        product = make_product()
        pyramid = build_pyramid(product, serve=ServeConfig(tile_size=8))
        for name in ("freeboard_mean", "thickness_mean"):
            prev = None
            for level in pyramid.levels:
                v, w = level.variables[name], level.weights[name]
                total = np.where(w > 0, v * w, 0.0).sum()
                if prev is not None:
                    assert total == pytest.approx(prev, rel=1e-12)
                prev = total

    def test_coverage_is_base_fraction(self):
        product = make_product()
        pyramid = build_pyramid(product, serve=ServeConfig(tile_size=8))
        base_covered = (product.variables["n_segments"] > 0).mean()
        for level in pyramid.levels[1:]:
            ny, nx = level.shape
            # Phantom padding dilutes the area mean, so compare the totals:
            # covered base cells are conserved exactly by the area reduction.
            total_base_cells = level.coverage.sum() * 4 ** level.zoom
            assert total_base_cells == pytest.approx(
                base_covered * product.grid.n_cells, rel=1e-9
            )

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError, match="not in the product"):
            build_pyramid(make_product(), variables=("nope",))

    def test_missing_weight_variable_rejected(self):
        product = make_product()
        with pytest.raises(ValueError, match="weight variable"):
            build_pyramid(product, serve=ServeConfig(weight_variable="n_missing"))


class TestTileAddressing:
    def test_tiles_are_fixed_size_nan_padded(self):
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        interior = pyramid.tile("freeboard_mean", 0, 0, 0)
        edge = pyramid.tile("freeboard_mean", 0, 2, 3)  # 40x60 -> ragged edge
        assert interior.shape == (16, 16) and edge.shape == (16, 16)
        assert np.isnan(edge[8:, :]).all()  # rows past the grid
        assert np.isnan(edge[:, 12:]).all()  # cols past the grid

    def test_tile_matches_layer_window(self):
        product = make_product()
        pyramid = build_pyramid(product, serve=ServeConfig(tile_size=16))
        tile = pyramid.tile("freeboard_mean", 0, 1, 2)
        window = product.variables["freeboard_mean"][16:32, 32:48]
        np.testing.assert_array_equal(tile, window)

    def test_tiles_are_immutable_views(self):
        # Full-size tiles are zero-copy windows of the level arrays; serving
        # them read-only is what makes skipping the per-query copy safe.
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        interior = pyramid.tile("freeboard_mean", 0, 0, 0)
        edge = pyramid.tile("freeboard_mean", 0, 2, 3)
        for tile in (interior, edge):
            assert not tile.flags.writeable
            with pytest.raises(ValueError):
                tile[0, 0] = 123.0
        # The failed writes never reached the backing level array.
        assert not np.any(pyramid.levels[0].variables["freeboard_mean"] == 123.0)

    def test_cut_tile_window_semantics(self):
        window = np.arange(12.0).reshape(3, 4)
        full = cut_tile(np.arange(16.0).reshape(4, 4), 4)
        assert full.shape == (4, 4) and not full.flags.writeable
        np.testing.assert_array_equal(full, np.arange(16.0).reshape(4, 4))
        padded = cut_tile(window, 4)
        assert padded.shape == (4, 4) and not padded.flags.writeable
        np.testing.assert_array_equal(padded[:3, :4], window)
        assert np.isnan(padded[3, :]).all()

    def test_tile_out_of_range(self):
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        with pytest.raises(IndexError, match="out of range"):
            pyramid.tile("freeboard_mean", 0, 99, 0)
        with pytest.raises(KeyError, match="no variable"):
            pyramid.tile("nope", 0, 0, 0)
        with pytest.raises(IndexError, match="zoom"):
            pyramid.level(99)

    def test_tile_bbox_and_lookup_roundtrip(self):
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        bbox = pyramid.tile_bbox(1, 0, 1)
        hits = pyramid.tiles_for_bbox(bbox, 1)
        assert (0, 1) in hits

    def test_tiles_for_bbox_rejects_out_of_range_zoom(self):
        # Same contract as tile()/tile_bbox(): silently clamping would
        # return addresses that are only valid at a different level.
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        bbox = pyramid.tile_bbox(0, 0, 0)
        with pytest.raises(IndexError, match="zoom"):
            pyramid.tiles_for_bbox(bbox, pyramid.n_levels)

    def test_figure_tile_map_pads_edge_coverage(self):
        from repro.evaluation import figure_tile_map

        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        series = figure_tile_map(pyramid, "freeboard_mean", zoom=0, row=2, col=3)
        assert series["tile"].shape == (16, 16)
        assert series["coverage"].shape == (16, 16)  # padded like the tile
        assert (series["coverage"][8:, :] == 0).all()  # past the grid: uncovered
        assert series["bbox_m"] == pyramid.tile_bbox(0, 2, 3)
        assert 0.0 <= series["finite_fraction"] <= 1.0

    def test_clamp_zoom(self):
        pyramid = build_pyramid(make_product(), serve=ServeConfig(tile_size=16))
        assert pyramid.clamp_zoom(99) == pyramid.n_levels - 1
        assert pyramid.clamp_zoom(-3) == 0

    def test_empty_levels_rejected(self):
        with pytest.raises(ValueError, match="base level"):
            TilePyramid(tile_size=8, levels=())


class TestPyramidStage:
    def test_registered_and_content_addressed(self, tmp_path):
        # The stage consumes l3_mosaic, declares the serve slice, and a
        # serve-only config change re-executes exactly build_pyramid.
        from dataclasses import replace

        from repro.pipeline.cache import StageCache
        from repro.pipeline.runner import GraphRunner
        from repro.pipeline.stages import default_graph
        from repro.surface.scene import SceneConfig
        from repro.workflow.experiment import ExperimentConfig

        config = ExperimentConfig(
            scene=SceneConfig(width_m=5_000.0, height_m=5_000.0),
            epochs=1,
            model_kind="mlp",
            seed=3,
            serve=ServeConfig(tile_size=4),
        )
        cache = StageCache(tmp_path)
        first = GraphRunner(default_graph(), cache=cache).run(
            config, targets=("l3_pyramid",)
        )
        pyramid = first.value("l3_pyramid")
        assert isinstance(pyramid, TilePyramid)
        assert pyramid.tile_size == 4
        assert any(key.startswith("build_pyramid-") for key in first.cache_misses)

        warm = GraphRunner(default_graph(), cache=cache).run(
            config, targets=("l3_pyramid",)
        )
        assert warm.cache_misses == ()

        changed = replace(config, serve=ServeConfig(tile_size=8))
        partial = GraphRunner(default_graph(), cache=cache).run(
            changed, targets=("l3_pyramid",)
        )
        missed = sorted({key.rsplit("-", 1)[0] for key in partial.cache_misses})
        assert missed == ["build_pyramid"]
        assert partial.value("l3_pyramid").tile_size == 8

        # A cache-size-only change is a query-engine runtime knob: it must
        # not invalidate the content-addressed pyramid.
        cache_only = replace(
            config, serve=ServeConfig(tile_size=4, tile_cache_size=9999)
        )
        warm_again = GraphRunner(default_graph(), cache=cache).run(
            cache_only, targets=("l3_pyramid",)
        )
        assert warm_again.cache_misses == ()
