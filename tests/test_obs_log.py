"""Structured logging: ring, dedup, sink, severity, trace correlation."""

from __future__ import annotations

import json

import pytest

from repro.config import LogConfig, ObsConfig
from repro.obs.core import Obs
from repro.obs.log import EventLog, NullEventLog
from repro.obs.trace import Tracer
from repro.serve.clock import VirtualClock


def make_log(config=None, tracer=None):
    clock = VirtualClock()
    log = EventLog(
        config if config is not None else LogConfig(),
        clock=clock,
        tracer=tracer,
    )
    return log, clock


class TestEmission:
    def test_record_carries_clock_time_level_and_fields(self):
        log, clock = make_log()
        clock.tick(12.5)
        record = log.info("router.shed", depth=7)
        assert record.ts == 12.5
        assert record.level == "info"
        assert record.event == "router.shed"
        assert record.fields == {"depth": 7}

    def test_level_helpers_map_to_levels(self):
        log, _ = make_log()
        for helper, level in [
            (log.debug, "debug"),
            (log.info, "info"),
            (log.warning, "warning"),
            (log.error, "error"),
        ]:
            assert helper("e").level == level

    def test_unknown_level_raises(self):
        log, _ = make_log()
        with pytest.raises(ValueError, match="level must be one of"):
            log.emit("fatal", "boom")

    def test_min_level_filters_quietly(self):
        log, _ = make_log(config=LogConfig(min_level="warning"))
        assert log.info("chatty") is None
        assert log.warning("real") is not None
        assert [r.event for r in log.events()] == ["real"]

    def test_ring_is_bounded_oldest_dropped(self):
        log, clock = make_log(config=LogConfig(ring_size=3, dedup_window_s=0.0))
        for i in range(5):
            clock.tick(1.0)
            log.info(f"e{i}")
        assert [r.event for r in log.events()] == ["e2", "e3", "e4"]
        assert log.n_records == 5  # lifetime count keeps the true total
        assert len(log) == 3


class TestDedup:
    def test_twins_within_window_suppressed_and_summarised(self):
        log, clock = make_log(config=LogConfig(dedup_window_s=5.0))
        assert log.warning("router.shed", depth=1) is not None
        for depth in (2, 3, 4):
            clock.tick(1.0)
            assert log.warning("router.shed", depth=depth) is None
        assert log.n_suppressed == 3
        # Outside the window the next twin lands, carrying the count.
        clock.tick(5.0)
        record = log.warning("router.shed", depth=5)
        assert record.fields == {"depth": 5, "suppressed": 3}
        assert len(log.events(event="router.shed")) == 2

    def test_dedup_keys_on_level_and_event(self):
        log, _ = make_log(config=LogConfig(dedup_window_s=5.0))
        assert log.warning("shed") is not None
        assert log.error("shed") is not None  # different level: not a twin
        assert log.warning("other") is not None  # different event: not a twin

    def test_zero_window_disables_dedup(self):
        log, _ = make_log(config=LogConfig(dedup_window_s=0.0))
        assert log.info("e") is not None
        assert log.info("e") is not None
        assert log.n_suppressed == 0


class TestSink:
    def test_sink_receives_one_json_line_per_record(self, tmp_path):
        log, clock = make_log(config=LogConfig(dedup_window_s=0.0))
        path = log.attach_sink(tmp_path / "logs" / "events.jsonl")
        log.info("a", n=1)
        clock.tick(1.0)
        log.warning("b")
        log.close()
        lines = path.read_text().strip().splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["event"] for row in rows] == ["a", "b"]
        assert rows[0] == {
            "ts": 0.0,
            "level": "info",
            "event": "a",
            "trace_id": None,
            "span_id": None,
            "n": 1,
        }

    def test_sink_appends_across_attachments(self, tmp_path):
        log, _ = make_log(config=LogConfig(dedup_window_s=0.0))
        path = tmp_path / "events.jsonl"
        log.attach_sink(path)
        log.info("first")
        log.close()
        log.attach_sink(path)
        log.info("second")
        log.close()
        assert len(path.read_text().strip().splitlines()) == 2

    def test_suppressed_records_never_reach_the_sink(self, tmp_path):
        log, _ = make_log(config=LogConfig(dedup_window_s=60.0))
        path = log.attach_sink(tmp_path / "events.jsonl")
        log.info("e")
        log.info("e")
        log.close()
        assert len(path.read_text().strip().splitlines()) == 1


class TestTraceCorrelation:
    def test_records_carry_current_span_ids(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        log = EventLog(LogConfig(dedup_window_s=0.0), clock=clock, tracer=tracer)
        log.info("outside")
        with tracer.span("request") as span:
            record = log.warning("inside")
        assert log.events()[0].trace_id is None
        assert record.trace_id == span.trace_id
        assert record.span_id == span.span_id

    def test_events_filter_by_trace_id(self):
        clock = VirtualClock()
        tracer = Tracer(clock=clock)
        log = EventLog(LogConfig(dedup_window_s=0.0), clock=clock, tracer=tracer)
        with tracer.span("a") as a:
            log.info("ev")
        with tracer.span("b"):
            log.info("ev")
        assert len(log.events(event="ev")) == 2
        assert len(log.events(trace_id=a.trace_id)) == 1

    def test_obs_wires_log_to_its_tracer_and_clock(self):
        obs = Obs(clock=VirtualClock())
        with obs.span("op") as span:
            record = obs.log.info("hello")
        assert record.trace_id == span.trace_id
        assert obs.log.clock is obs.clock


class TestInspection:
    def test_tail_returns_newest_dicts(self):
        log, clock = make_log(config=LogConfig(dedup_window_s=0.0))
        for i in range(4):
            clock.tick(1.0)
            log.info(f"e{i}")
        tail = log.tail(2)
        assert [row["event"] for row in tail] == ["e2", "e3"]
        assert all(isinstance(row, dict) for row in tail)

    def test_clear_resets_ring_and_dedup_state(self):
        log, _ = make_log(config=LogConfig(dedup_window_s=60.0))
        log.info("e")
        log.info("e")
        log.clear()
        assert len(log) == 0 and log.n_records == 0 and log.n_suppressed == 0
        assert log.info("e") is not None  # dedup window forgotten


class TestNullEventLog:
    def test_disabled_obs_gets_the_null_log(self):
        obs = Obs(ObsConfig(enabled=False))
        assert isinstance(obs.log, NullEventLog)

    def test_null_log_is_inert(self, tmp_path):
        log = NullEventLog()
        log.attach_sink(tmp_path / "never.jsonl")
        assert log.error("boom") is None
        assert log.events() == ()
        assert log.tail() == []
        assert len(log) == 0
        log.close()
        assert not (tmp_path / "never.jsonl").exists()
