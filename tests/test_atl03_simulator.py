"""Tests for the ATL03 photon simulator."""

import numpy as np
import pytest

from repro.atl03.simulator import ATL03SimulatorConfig, simulate_beam, simulate_granule
from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_THIN_ICE
from repro.surface.scene import SceneConfig, generate_scene
from repro.surface.track import TrackSpec


class TestSimulatorConfig:
    def test_rates_follow_surface_brightness(self):
        cfg = ATL03SimulatorConfig()
        assert cfg.signal_rate_thick_ice > cfg.signal_rate_thin_ice > cfg.signal_rate_open_water

    def test_rate_lookup_vectorised(self):
        cfg = ATL03SimulatorConfig()
        classes = np.array([CLASS_THICK_ICE, CLASS_THIN_ICE, CLASS_OPEN_WATER])
        rates = cfg.signal_rate_for_class(classes)
        assert rates[0] == cfg.signal_rate_thick_ice
        assert rates[2] == cfg.signal_rate_open_water

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shot_spacing_m": 0.0},
            {"telemetry_window_m": -1.0},
            {"ranging_noise_m": -0.1},
            {"signal_rate_thick_ice": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ATL03SimulatorConfig(**kwargs)


class TestSimulateBeam:
    def test_photons_sorted_and_georeferenced(self, beam):
        assert np.all(np.diff(beam.along_track_m) >= 0)
        assert np.all(beam.lat_deg < -60.0)
        assert beam.n_photons > 1000

    def test_deterministic_in_seed(self, scene, track):
        a = simulate_beam(scene, track, rng=5)
        b = simulate_beam(scene, track, rng=5)
        np.testing.assert_array_equal(a.height_m, b.height_m)

    def test_signal_photons_near_surface(self, scene, track, beam):
        signal = beam.select(beam.is_signal)
        x, y = signal.x_m, signal.y_m
        truth = scene.surface_height(x, y)
        residual = signal.height_m - truth
        # Ranging noise 0.1 m plus roughness: well within half a metre RMS.
        assert np.sqrt(np.mean(residual**2)) < 0.5

    def test_background_photons_spread_over_window(self, beam):
        background = beam.select(~beam.is_signal)
        assert background.n_photons > 0
        spread = background.height_m.max() - background.height_m.min()
        assert spread > 5.0

    def test_ice_brighter_than_water(self, beam):
        signal = beam.select(beam.is_signal)
        thick = signal.truth_class == CLASS_THICK_ICE
        water = signal.truth_class == CLASS_OPEN_WATER
        if thick.any() and water.any():
            # Per-photon density along-track is proportional to the return rate.
            thick_count = thick.sum() / max((beam.truth_class == CLASS_THICK_ICE).sum(), 1)
            water_count = water.sum() / max((beam.truth_class == CLASS_OPEN_WATER).sum(), 1)
            assert thick_count >= water_count

    def test_high_confidence_photons_are_mostly_signal(self, beam):
        high = beam.signal_conf >= 4
        assert beam.is_signal[high].mean() > 0.8

    def test_very_short_track_still_valid(self, scene):
        # A sub-metre track has a single laser shot; the beam must still be
        # well formed (sorted, consistent arrays), just tiny.
        tiny = TrackSpec(
            scene.config.origin_x_m + 100, scene.config.origin_y_m + 100, 0.0, 0.5
        )
        beam = simulate_beam(scene, tiny, config=ATL03SimulatorConfig(), rng=0)
        assert beam.n_photons >= 0
        assert beam.along_track_m.shape == beam.height_m.shape


class TestSimulateGranule:
    def test_beam_count_and_names(self, granule):
        assert len(granule.beams) == 1
        assert "gt1r" in granule.beams

    def test_multiple_beams_are_distinct(self):
        scene = generate_scene(SceneConfig(width_m=9_000.0, height_m=9_000.0, seed=5))
        granule = simulate_granule(scene, n_beams=2, track_length_m=4_000.0, rng=3)
        assert granule.beam_names == ("gt1r", "gt2r")
        a, b = granule.beam("gt1r"), granule.beam("gt2r")
        assert a.n_photons != b.n_photons or not np.array_equal(a.height_m[:50], b.height_m[:50])

    def test_invalid_beam_count_rejected(self, scene):
        with pytest.raises(ValueError):
            simulate_granule(scene, n_beams=0)

    def test_granule_id_and_time_preserved(self, granule):
        assert granule.granule_id.startswith("ATL03_")
        assert granule.acquisition_time.year == 2019
