"""Tests for the feed-forward layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.ml.layers import Dense, Dropout, ELU, Flatten, ReLU, Softmax


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar function ``f`` w.r.t. array ``x``."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f()
        x[idx] = orig - eps
        f_minus = f()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape_and_value(self):
        layer = Dense(3, 2, rng=0)
        layer.W[...] = np.arange(6).reshape(3, 2)
        layer.b[...] = np.array([1.0, -1.0])
        x = np.array([[1.0, 2.0, 3.0]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, x @ layer.W + layer.b)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Dense(4, 3, rng=1)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        grad_analytic = None
        layer.forward(x)
        grad_analytic = layer.backward(upstream)
        grad_numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(grad_analytic, grad_numeric, atol=1e-5)

    def test_parameter_gradients_match_numerical(self, rng):
        layer = Dense(3, 2, rng=2)
        x = rng.normal(size=(4, 3))
        upstream = rng.normal(size=(4, 2))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        layer.backward(upstream)
        dW_numeric = numerical_gradient(loss, layer.W)
        db_numeric = numerical_gradient(loss, layer.b)
        np.testing.assert_allclose(layer.grads[0], dW_numeric, atol=1e-5)
        np.testing.assert_allclose(layer.grads[1], db_numeric, atol=1e-5)

    def test_wrong_input_shape_rejected(self):
        layer = Dense(3, 2, rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_weight_get_set_round_trip(self):
        layer = Dense(3, 2, rng=0)
        weights = layer.get_weights()
        weights[0][...] = 7.0
        layer.set_weights(weights)
        assert np.all(layer.W == 7.0)
        with pytest.raises(ValueError):
            layer.set_weights([np.zeros((2, 2)), np.zeros(2)])
        with pytest.raises(ValueError):
            layer.set_weights([np.zeros((3, 2))])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 2)


class TestActivations:
    def test_elu_values(self):
        layer = ELU(alpha=1.0)
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[np.exp(-1) - 1, 0.0, 2.0]])

    def test_elu_gradient_matches_numerical(self, rng):
        layer = ELU()
        x = rng.normal(size=(4, 5))
        upstream = rng.normal(size=(4, 5))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        grad = layer.backward(upstream)
        np.testing.assert_allclose(grad, numerical_gradient(loss, x), atol=1e-6)

    def test_elu_invalid_alpha(self):
        with pytest.raises(ValueError):
            ELU(alpha=0.0)

    def test_relu_values_and_gradient(self, rng):
        layer = ReLU()
        x = np.array([[-2.0, 0.5]])
        out = layer.forward(x)
        np.testing.assert_allclose(out, [[0.0, 0.5]])
        grad = layer.backward(np.array([[3.0, 3.0]]))
        np.testing.assert_allclose(grad, [[0.0, 3.0]])

    def test_softmax_rows_sum_to_one(self, rng):
        layer = Softmax()
        out = layer.forward(rng.normal(size=(6, 4)) * 10)
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        assert np.all(out > 0)

    def test_softmax_numerical_stability(self):
        out = Softmax().forward(np.array([[1000.0, 1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[1 / 3, 1 / 3, 1 / 3]])

    def test_softmax_full_jacobian_gradient(self, rng):
        layer = Softmax(fused_with_loss=False)
        x = rng.normal(size=(3, 4))
        upstream = rng.normal(size=(3, 4))

        def loss():
            return float(np.sum(layer.forward(x) * upstream))

        layer.forward(x)
        grad = layer.backward(upstream)
        np.testing.assert_allclose(grad, numerical_gradient(loss, x), atol=1e-6)


class TestDropout:
    def test_inference_is_identity(self, rng):
        layer = Dropout(0.5, rng=0)
        x = rng.normal(size=(10, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        layer = Dropout(0.3, rng=0)
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=1)
        x = np.ones((50, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_zero_rate_is_identity_even_in_training(self, rng):
        layer = Dropout(0.0)
        x = rng.normal(size=(5, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.2)


class TestFlatten:
    def test_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(4, 5, 6))
        out = layer.forward(x)
        assert out.shape == (4, 30)
        back = layer.backward(out)
        np.testing.assert_array_equal(back, x)
