"""Tests for the configuration constants and parameter containers."""

import pytest

from repro import config
from repro.config import (
    ClusterConfig,
    LSTMConfig,
    LogConfig,
    MLPConfig,
    ObsConfig,
    SeaSurfaceConfig,
    SloConfig,
    TrainingConfig,
)


class TestConstants:
    def test_ross_sea_extent_matches_paper(self):
        assert config.ROSS_SEA_LON_MIN == -180.0
        assert config.ROSS_SEA_LON_MAX == -140.0
        assert config.ROSS_SEA_LAT_MIN == -78.0
        assert config.ROSS_SEA_LAT_MAX == -70.0

    def test_projection_epsg(self):
        assert config.EPSG_ANTARCTIC_POLAR_STEREO == 3976

    def test_resample_window_is_two_metres(self):
        assert config.RESAMPLE_WINDOW_M == 2.0

    def test_atl07_aggregation_is_150_photons(self):
        assert config.ATL07_PHOTON_AGGREGATION == 150

    def test_class_labels_are_distinct(self):
        labels = {config.CLASS_THICK_ICE, config.CLASS_THIN_ICE, config.CLASS_OPEN_WATER}
        assert len(labels) == 3
        assert config.CLASS_UNLABELED not in labels

    def test_class_names_cover_all_classes(self):
        assert len(config.CLASS_NAMES) == config.N_CLASSES

    def test_sea_surface_window_geometry(self):
        assert config.SEA_SURFACE_WINDOW_LENGTH_M == 10_000.0
        assert config.SEA_SURFACE_WINDOW_OVERLAP_M == 5_000.0
        assert config.SEA_SURFACE_WINDOW_RADIUS_M * 2 == config.SEA_SURFACE_WINDOW_LENGTH_M


class TestTrainingConfig:
    def test_paper_defaults(self):
        cfg = TrainingConfig()
        assert cfg.learning_rate == pytest.approx(0.003)
        assert cfg.batch_size == 32
        assert cfg.epochs == 20
        assert cfg.dropout == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": -1.0},
            {"batch_size": 0},
            {"epochs": 0},
            {"dropout": 1.0},
            {"dropout": -0.1},
            {"validation_fraction": 0.0},
            {"validation_fraction": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestLSTMConfig:
    def test_paper_architecture(self):
        cfg = LSTMConfig()
        assert cfg.lstm_units == 16
        assert cfg.sequence_length == 5
        assert cfg.n_features == 6
        assert cfg.dense_units == (32, 96, 32, 16, 112, 48, 64)
        assert cfg.n_classes == 3

    def test_even_sequence_length_rejected(self):
        with pytest.raises(ValueError):
            LSTMConfig(sequence_length=4)

    def test_nonpositive_units_rejected(self):
        with pytest.raises(ValueError):
            LSTMConfig(lstm_units=0)


class TestMLPConfig:
    def test_paper_architecture(self):
        cfg = MLPConfig()
        assert cfg.hidden_units == (32,)
        assert cfg.n_features == 6


class TestClusterConfigs:
    def test_cluster_grid_matches_table(self):
        cfg = ClusterConfig()
        assert cfg.executor_grid == (1, 2, 4)
        assert cfg.cores_grid == (1, 2, 4)

    def test_sea_surface_overlap_must_be_smaller_than_length(self):
        with pytest.raises(ValueError):
            SeaSurfaceConfig(window_length_m=1000.0, window_overlap_m=1000.0)

    def test_sea_surface_min_segments_positive(self):
        with pytest.raises(ValueError):
            SeaSurfaceConfig(min_open_water_segments=0)


class TestObsConfig:
    def test_defaults_are_valid_and_buckets_sorted(self):
        cfg = ObsConfig()
        assert cfg.enabled is True
        assert cfg.trace_buffer_size == 4096
        assert list(cfg.latency_buckets_s) == sorted(cfg.latency_buckets_s)

    def test_empty_buckets_rejected_with_actionable_message(self):
        with pytest.raises(ValueError, match="at least one bucket edge"):
            ObsConfig(latency_buckets_s=())

    @pytest.mark.parametrize(
        "edges",
        [(0.1, 0.1, 0.5), (0.5, 0.1), (1.0, 1.0)],
    )
    def test_unsorted_or_duplicate_buckets_rejected(self, edges):
        with pytest.raises(ValueError, match="strictly increasing"):
            ObsConfig(latency_buckets_s=edges)

    @pytest.mark.parametrize(
        "edges",
        [
            (0.1, float("inf")),
            (float("nan"), 0.1),
            (0.1, 0.5, float("-inf")),
        ],
    )
    def test_non_finite_buckets_rejected_mentioning_overflow_bucket(self, edges):
        with pytest.raises(ValueError, match="must be finite.*overflow bucket"):
            ObsConfig(latency_buckets_s=edges)

    def test_single_finite_edge_is_the_minimum_valid_histogram(self):
        assert ObsConfig(latency_buckets_s=(0.1,)).latency_buckets_s == (0.1,)

    @pytest.mark.parametrize("size", [0, -1])
    def test_non_positive_trace_buffer_rejected(self, size):
        with pytest.raises(ValueError, match="trace_buffer_size must be >= 1"):
            ObsConfig(trace_buffer_size=size)

    def test_buffer_of_one_is_the_boundary(self):
        assert ObsConfig(trace_buffer_size=1).trace_buffer_size == 1

    def test_nested_slices_have_defaults(self):
        cfg = ObsConfig()
        assert cfg.slo == SloConfig()
        assert cfg.log == LogConfig()


class TestSloConfig:
    def test_google_sre_defaults(self):
        cfg = SloConfig()
        assert (cfg.fast_window_s, cfg.slow_window_s) == (300.0, 3600.0)
        assert (cfg.fast_burn_threshold, cfg.slow_burn_threshold) == (14.4, 6.0)

    def test_windows_must_be_positive(self):
        with pytest.raises(ValueError, match="positive seconds"):
            SloConfig(fast_window_s=0.0)

    def test_fast_window_must_be_shorter_than_slow(self):
        with pytest.raises(ValueError, match="shorter than slow_window_s"):
            SloConfig(fast_window_s=600.0, slow_window_s=600.0)

    def test_thresholds_must_be_positive(self):
        with pytest.raises(ValueError, match="thresholds must be positive"):
            SloConfig(fast_burn_threshold=-1.0)

    def test_for_s_must_be_non_negative(self):
        with pytest.raises(ValueError, match="for_s"):
            SloConfig(for_s=-1.0)

    @pytest.mark.parametrize("fraction", [0.0, 1.5])
    def test_resolve_fraction_bounds(self, fraction):
        with pytest.raises(ValueError, match="resolve_fraction"):
            SloConfig(resolve_fraction=fraction)

    def test_max_samples_needs_a_window_delta(self):
        with pytest.raises(ValueError, match="max_samples"):
            SloConfig(max_samples=1)


class TestLogConfig:
    def test_defaults(self):
        cfg = LogConfig()
        assert cfg.ring_size == 1024
        assert cfg.dedup_window_s == 5.0
        assert cfg.min_level == "debug"

    def test_ring_size_must_hold_a_record(self):
        with pytest.raises(ValueError, match="ring_size"):
            LogConfig(ring_size=0)

    def test_dedup_window_must_be_non_negative(self):
        with pytest.raises(ValueError, match="dedup_window_s"):
            LogConfig(dedup_window_s=-0.1)

    def test_min_level_must_be_known(self):
        with pytest.raises(ValueError, match="min_level"):
            LogConfig(min_level="trace")
