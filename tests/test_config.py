"""Tests for the configuration constants and parameter containers."""

import pytest

from repro import config
from repro.config import (
    ClusterConfig,
    LSTMConfig,
    MLPConfig,
    SeaSurfaceConfig,
    TrainingConfig,
)


class TestConstants:
    def test_ross_sea_extent_matches_paper(self):
        assert config.ROSS_SEA_LON_MIN == -180.0
        assert config.ROSS_SEA_LON_MAX == -140.0
        assert config.ROSS_SEA_LAT_MIN == -78.0
        assert config.ROSS_SEA_LAT_MAX == -70.0

    def test_projection_epsg(self):
        assert config.EPSG_ANTARCTIC_POLAR_STEREO == 3976

    def test_resample_window_is_two_metres(self):
        assert config.RESAMPLE_WINDOW_M == 2.0

    def test_atl07_aggregation_is_150_photons(self):
        assert config.ATL07_PHOTON_AGGREGATION == 150

    def test_class_labels_are_distinct(self):
        labels = {config.CLASS_THICK_ICE, config.CLASS_THIN_ICE, config.CLASS_OPEN_WATER}
        assert len(labels) == 3
        assert config.CLASS_UNLABELED not in labels

    def test_class_names_cover_all_classes(self):
        assert len(config.CLASS_NAMES) == config.N_CLASSES

    def test_sea_surface_window_geometry(self):
        assert config.SEA_SURFACE_WINDOW_LENGTH_M == 10_000.0
        assert config.SEA_SURFACE_WINDOW_OVERLAP_M == 5_000.0
        assert config.SEA_SURFACE_WINDOW_RADIUS_M * 2 == config.SEA_SURFACE_WINDOW_LENGTH_M


class TestTrainingConfig:
    def test_paper_defaults(self):
        cfg = TrainingConfig()
        assert cfg.learning_rate == pytest.approx(0.003)
        assert cfg.batch_size == 32
        assert cfg.epochs == 20
        assert cfg.dropout == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"learning_rate": -1.0},
            {"batch_size": 0},
            {"epochs": 0},
            {"dropout": 1.0},
            {"dropout": -0.1},
            {"validation_fraction": 0.0},
            {"validation_fraction": 1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)


class TestLSTMConfig:
    def test_paper_architecture(self):
        cfg = LSTMConfig()
        assert cfg.lstm_units == 16
        assert cfg.sequence_length == 5
        assert cfg.n_features == 6
        assert cfg.dense_units == (32, 96, 32, 16, 112, 48, 64)
        assert cfg.n_classes == 3

    def test_even_sequence_length_rejected(self):
        with pytest.raises(ValueError):
            LSTMConfig(sequence_length=4)

    def test_nonpositive_units_rejected(self):
        with pytest.raises(ValueError):
            LSTMConfig(lstm_units=0)


class TestMLPConfig:
    def test_paper_architecture(self):
        cfg = MLPConfig()
        assert cfg.hidden_units == (32,)
        assert cfg.n_features == 6


class TestClusterConfigs:
    def test_cluster_grid_matches_table(self):
        cfg = ClusterConfig()
        assert cfg.executor_grid == (1, 2, 4)
        assert cfg.cores_grid == (1, 2, 4)

    def test_sea_surface_overlap_must_be_smaller_than_length(self):
        with pytest.raises(ValueError):
            SeaSurfaceConfig(window_length_m=1000.0, window_overlap_m=1000.0)

    def test_sea_surface_min_segments_positive(self):
        with pytest.raises(ValueError):
            SeaSurfaceConfig(min_open_water_segments=0)
