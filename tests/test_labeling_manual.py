"""Tests for the transition/cloud label-correction stage."""

import numpy as np
import pytest

from repro.config import CLASS_OPEN_WATER, CLASS_THICK_ICE, CLASS_UNLABELED
from repro.labeling.autolabel import AutoLabelResult, auto_label_segments
from repro.labeling.manual import correct_labels, transition_mask


class TestTransitionMask:
    def test_flags_neighbourhood_of_changes(self):
        labels = np.array([0, 0, 0, 1, 1, 1, 1, 1, 1, 1], dtype=np.int8)
        mask = transition_mask(labels, halo=2)
        assert mask[1:5].all()
        assert not mask[8:].any()

    def test_no_transitions_no_flags(self):
        labels = np.zeros(10, dtype=np.int8)
        assert not transition_mask(labels, halo=3).any()

    def test_unlabeled_does_not_create_transition(self):
        labels = np.array([0, -1, 0, 0, 0], dtype=np.int8)
        assert not transition_mask(labels, halo=1).any()

    def test_halo_zero_flags_nothing_before_change(self):
        labels = np.array([0, 1], dtype=np.int8)
        mask = transition_mask(labels, halo=0)
        assert not mask.any()

    def test_short_and_invalid_inputs(self):
        assert transition_mask(np.array([0], dtype=np.int8)).shape == (1,)
        with pytest.raises(ValueError):
            transition_mask(np.zeros((2, 2), dtype=np.int8))
        with pytest.raises(ValueError):
            transition_mask(np.zeros(3, dtype=np.int8), halo=-1)


class TestCorrectLabels:
    def test_improves_or_preserves_accuracy(self, segments, s2_image, s2_segmentation):
        auto = auto_label_segments(segments, s2_image, s2_segmentation)
        corrected, report = correct_labels(segments, auto)
        truth = segments.truth_class
        valid_auto = (auto.labels >= 0) & (truth >= 0)
        valid_corr = (corrected >= 0) & (truth >= 0)
        acc_auto = (auto.labels[valid_auto] == truth[valid_auto]).mean()
        acc_corr = (corrected[valid_corr] == truth[valid_corr]).mean()
        assert acc_corr >= acc_auto - 0.01
        assert report.n_flagged_transition >= 0

    def test_cloudy_segments_are_touched(self, segments, s2_image, s2_segmentation):
        auto = auto_label_segments(segments, s2_image, s2_segmentation)
        if not (auto.cloudy | auto.shadowed).any():
            pytest.skip("no cloud/shadow flags in this scene")
        corrected, report = correct_labels(segments, auto)
        assert report.n_flagged_cloud > 0

    def test_relabelling_uses_elevation(self, segments):
        # Construct an auto-label result where a genuinely low, smooth segment
        # is wrongly labelled thick ice inside a flagged (cloudy) region.
        n = segments.n_segments
        labels = np.full(n, CLASS_THICK_ICE, dtype=np.int8)
        cloudy = np.zeros(n, dtype=bool)
        heights = segments.height_mean_m
        finite = np.isfinite(heights)
        low = np.argmin(np.where(finite, heights, np.inf))
        cloudy[low] = True
        auto = AutoLabelResult(
            labels=labels, in_image=np.ones(n, dtype=bool), cloudy=cloudy,
            shadowed=np.zeros(n, dtype=bool),
        )
        corrected, report = correct_labels(segments, auto)
        if segments.n_photons[low] >= 2 and segments.height_std_m[low] <= 0.12:
            assert corrected[low] == CLASS_OPEN_WATER
            assert report.n_relabelled >= 1

    def test_unjudgeable_flagged_segments_dropped(self, segments, s2_image, s2_segmentation):
        auto = auto_label_segments(segments, s2_image, s2_segmentation)
        empty = segments.n_photons == 0
        if not empty.any():
            pytest.skip("no empty segments in this beam")
        # Force-flag an empty segment: it cannot be judged and must be dropped.
        auto.cloudy[np.flatnonzero(empty)[0]] = True
        corrected, report = correct_labels(segments, auto)
        assert corrected[np.flatnonzero(empty)[0]] == CLASS_UNLABELED

    def test_length_mismatch_rejected(self, segments, s2_image, s2_segmentation):
        auto = auto_label_segments(segments, s2_image, s2_segmentation)
        short = AutoLabelResult(
            labels=auto.labels[:-1], in_image=auto.in_image[:-1],
            cloudy=auto.cloudy[:-1], shadowed=auto.shadowed[:-1],
        )
        with pytest.raises(ValueError):
            correct_labels(segments, short)

    def test_invalid_quantiles_rejected(self, segments, s2_image, s2_segmentation):
        auto = auto_label_segments(segments, s2_image, s2_segmentation)
        with pytest.raises(ValueError):
            correct_labels(segments, auto, water_height_quantile=0.8, thick_height_quantile=0.5)
