"""Tests for the S2 -> IS2 label transfer."""

import numpy as np
import pytest

from repro.config import CLASS_UNLABELED
from repro.labeling.autolabel import auto_label_segments, overlay_labels


class TestOverlayLabels:
    def test_labels_match_class_map(self, s2_image, s2_segmentation):
        # Query pixel centres directly: labels must equal the class map.
        rows = np.array([5, 50, 200])
        cols = np.array([7, 80, 300])
        x = s2_image.origin_x_m + (cols + 0.5) * s2_image.pixel_size_m
        y = s2_image.origin_y_m + (rows + 0.5) * s2_image.pixel_size_m
        result = overlay_labels(s2_image, s2_segmentation, x, y)
        np.testing.assert_array_equal(result.labels, s2_segmentation.class_map[rows, cols])
        assert result.in_image.all()

    def test_points_outside_image_are_unlabeled(self, s2_image, s2_segmentation):
        x = np.array([s2_image.origin_x_m - 1_000.0])
        y = np.array([s2_image.origin_y_m - 1_000.0])
        result = overlay_labels(s2_image, s2_segmentation, x, y)
        assert result.labels[0] == CLASS_UNLABELED
        assert not result.in_image[0]
        assert result.n_labeled == 0

    def test_nan_coordinates_are_unlabeled(self, s2_image, s2_segmentation):
        result = overlay_labels(
            s2_image, s2_segmentation, np.array([np.nan]), np.array([np.nan])
        )
        assert result.labels[0] == CLASS_UNLABELED

    def test_cloud_flags_propagated(self, s2_image, s2_segmentation):
        if not s2_segmentation.cloud_mask.any():
            pytest.skip("no clouds detected in this scene")
        rows, cols = np.nonzero(s2_segmentation.cloud_mask)
        x = s2_image.origin_x_m + (cols[:5] + 0.5) * s2_image.pixel_size_m
        y = s2_image.origin_y_m + (rows[:5] + 0.5) * s2_image.pixel_size_m
        result = overlay_labels(s2_image, s2_segmentation, x, y)
        assert result.cloudy.all()

    def test_mismatched_shapes_rejected(self, s2_image, s2_segmentation):
        with pytest.raises(ValueError):
            overlay_labels(s2_image, s2_segmentation, np.zeros(3), np.zeros(4))


class TestAutoLabelSegments:
    def test_labels_one_per_segment(self, segments, s2_image, s2_segmentation):
        result = auto_label_segments(segments, s2_image, s2_segmentation)
        assert result.n_segments == segments.n_segments

    def test_accuracy_against_truth_without_drift(self, segments, s2_image, s2_segmentation):
        result = auto_label_segments(segments, s2_image, s2_segmentation)
        valid = (result.labels != CLASS_UNLABELED) & (segments.truth_class >= 0)
        acc = (result.labels[valid] == segments.truth_class[valid]).mean()
        # Perfectly aligned overlay: most labels should match the simulator truth.
        assert acc > 0.75

    def test_label_fractions_sum_to_one(self, segments, s2_image, s2_segmentation):
        result = auto_label_segments(segments, s2_image, s2_segmentation)
        fractions = result.label_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_label_fractions_empty_when_all_outside(self, s2_image, s2_segmentation, segments):
        shifted = s2_image.shifted(1e7, 1e7)  # move the image far away
        result = auto_label_segments(segments, shifted, s2_segmentation)
        assert result.label_fractions() == {}
