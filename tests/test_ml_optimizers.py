"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.ml.optimizers import SGD, Adam


def _quadratic_problem(start):
    """Minimise f(x) = 0.5 * ||x||^2 whose gradient is x itself."""
    params = [np.array(start, dtype=float)]

    def grads():
        return [params[0].copy()]

    return params, grads


class TestSGD:
    def test_step_moves_against_gradient(self):
        params, grads = _quadratic_problem([4.0, -2.0])
        SGD(learning_rate=0.1).step(params, grads())
        np.testing.assert_allclose(params[0], [3.6, -1.8])

    def test_converges_on_quadratic(self):
        params, grads = _quadratic_problem([5.0, 5.0])
        opt = SGD(learning_rate=0.2)
        for _ in range(100):
            opt.step(params, grads())
        assert np.linalg.norm(params[0]) < 1e-4

    def test_momentum_accelerates(self):
        params_plain, grads_plain = _quadratic_problem([5.0])
        params_mom, grads_mom = _quadratic_problem([5.0])
        plain = SGD(learning_rate=0.05)
        mom = SGD(learning_rate=0.05, momentum=0.9)
        for _ in range(20):
            plain.step(params_plain, grads_plain())
            mom.step(params_mom, grads_mom())
        assert abs(params_mom[0][0]) < abs(params_plain[0][0])

    def test_reset_clears_velocity(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params, grads = _quadratic_problem([1.0])
        opt.step(params, grads())
        opt.reset()
        assert opt._velocity is None

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [np.zeros(2), np.zeros(2)])


class TestAdam:
    def test_converges_on_quadratic(self):
        params, grads = _quadratic_problem([3.0, -4.0])
        opt = Adam(learning_rate=0.05)
        for _ in range(500):
            opt.step(params, grads())
        assert np.linalg.norm(params[0]) < 1e-3

    def test_first_step_size_close_to_learning_rate(self):
        # With bias correction, the first Adam step has magnitude ~lr.
        params = [np.array([1.0])]
        opt = Adam(learning_rate=0.01)
        opt.step(params, [np.array([123.0])])
        assert abs(params[0][0] - 1.0) == pytest.approx(0.01, rel=1e-3)

    def test_updates_in_place(self):
        params = [np.zeros(3)]
        ref = params[0]
        Adam().step(params, [np.ones(3)])
        assert params[0] is ref

    def test_reset(self):
        opt = Adam()
        params, grads = _quadratic_problem([1.0])
        opt.step(params, grads())
        opt.reset()
        assert opt._m is None and opt._t == 0

    def test_state_rebuilt_when_param_count_changes(self):
        opt = Adam()
        opt.step([np.zeros(2)], [np.ones(2)])
        # A different parameter list (e.g. a new model) must not crash.
        opt.step([np.zeros(3), np.zeros(1)], [np.ones(3), np.ones(1)])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=-0.1)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(epsilon=0.0)
        with pytest.raises(ValueError):
            Adam().step([np.zeros(2)], [])
